//! Workspace root crate for the APF reproduction.
//!
//! This crate exists to host the runnable [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and the cross-crate integration tests; it simply re-exports the member
//! crates under short names.
//!
//! * [`core`] (`apf`) — Adaptive Parameter Freezing itself;
//! * [`nn`] — the neural-network substrate;
//! * [`data`] — synthetic datasets and non-IID partitioners;
//! * [`quant`] — quantization codecs;
//! * [`fedsim`] — the federated-learning simulator;
//! * [`tensor`] — the dense tensor substrate.

pub use apf as core;
pub use apf_data as data;
pub use apf_fedsim as fedsim;
pub use apf_nn as nn;
pub use apf_quant as quant;
pub use apf_tensor as tensor;
