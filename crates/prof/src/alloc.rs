//! Allocation-site profiling: a global allocator that attributes every
//! allocation to the innermost open span on the allocating thread.
//!
//! This generalizes the workspace's counting-allocator *test* pattern
//! (`crates/net/tests/alloc.rs`) into an opt-in production facility:
//! instead of asserting "this path allocates zero bytes", a profiled run
//! reports *which span* allocated, how often, and how many bytes — so a
//! scratch-pool miss or a hot-path regression shows up as data.
//!
//! Binaries opt in by installing [`ProfAlloc`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: apf_prof::alloc::ProfAlloc = apf_prof::alloc::ProfAlloc;
//! ```
//!
//! Attribution is off by default and costs one relaxed atomic load per
//! allocator call. When on (`APF_PROF=alloc` or [`set_enabled`]), each
//! alloc/realloc adds to a fixed table of atomics indexed by the current
//! span's interned name id ([`apf_trace::stack::current_name_id`]) — no
//! allocation, no locks, no TLS with destructors, so the hook is safe to
//! run inside the allocator itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Attribution table size. Slot 0 = allocations outside any span; interned
/// name ids at or past the last slot share it (reported as `"(other)"`).
pub const SLOTS: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTS: [AtomicU64; SLOTS] = [ZERO; SLOTS];
static BYTES: [AtomicU64; SLOTS] = [ZERO; SLOTS];

/// Turns allocation attribution on or off (no-op table writes when off).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether attribution is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the attribution table.
pub fn reset() {
    for slot in 0..SLOTS {
        COUNTS[slot].store(0, Ordering::Relaxed);
        BYTES[slot].store(0, Ordering::Relaxed);
    }
}

/// Non-empty attribution slots as `(name_id, count, bytes)` (name id 0 =
/// outside any span). The caller resolves ids to names.
pub fn sites() -> Vec<(u32, u64, u64)> {
    (0..SLOTS)
        .filter_map(|slot| {
            let count = COUNTS[slot].load(Ordering::Relaxed);
            let bytes = BYTES[slot].load(Ordering::Relaxed);
            (count > 0).then_some((slot as u32, count, bytes))
        })
        .collect()
}

#[inline]
fn attribute(bytes: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let id = apf_trace::stack::current_name_id() as usize;
    let slot = id.min(SLOTS - 1);
    COUNTS[slot].fetch_add(1, Ordering::Relaxed);
    BYTES[slot].fetch_add(bytes as u64, Ordering::Relaxed);
}

/// The attributing global allocator: forwards everything to [`System`],
/// adding one relaxed load (plus two relaxed adds when attribution is on)
/// per alloc/realloc.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProfAlloc;

unsafe impl GlobalAlloc for ProfAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        attribute(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        attribute(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_table_round_trips() {
        reset();
        assert!(sites().is_empty());
        set_enabled(true);
        // Drive the hook directly (this test binary does not install the
        // allocator, so table writes come only from here).
        attribute(128);
        attribute(64);
        set_enabled(false);
        attribute(9999); // ignored while off
        let sites = sites();
        assert_eq!(sites.len(), 1);
        let (id, count, bytes) = sites[0];
        assert_eq!(id, 0, "no span open in this test");
        assert_eq!(count, 2);
        assert_eq!(bytes, 192);
        reset();
        assert!(super::sites().is_empty());
    }

    #[test]
    fn overflow_ids_share_the_last_slot() {
        reset();
        set_enabled(true);
        // Simulate a deep interned id via the public hook path: the slot
        // clamp is internal, so exercise it through attribute() with a
        // synthetic current id is not possible — assert the clamp logic
        // via slot arithmetic instead.
        assert_eq!((SLOTS + 50).min(SLOTS - 1), SLOTS - 1);
        set_enabled(false);
        reset();
    }
}
