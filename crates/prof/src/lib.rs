//! **`apf-prof`** — a zero-dependency sampling profiler for the APF
//! workspace.
//!
//! `trace-report` can already attribute time to spans — but only when
//! tracing is on, and only to the spans themselves. This crate answers the
//! cheaper, always-available question "where is this process spending its
//! time *right now*?" by sampling: a background thread periodically
//! snapshots every registered thread's live span-name stack (maintained by
//! `apf-trace` when stack tracking is on; see
//! [`apf_trace::set_stack_tracking`]) and aggregates the snapshots into
//! folded-stack form — the `frame1;frame2;leaf COUNT` lines that
//! `flamegraph.pl` and every flamegraph viewer consume directly. Samples
//! land on the innermost open span per thread, so the profile is useful
//! even where explicit spans are sparse.
//!
//! The [`alloc`] module adds allocation-*site* profiling: an opt-in global
//! allocator that attributes allocation count and bytes to the innermost
//! open span, turning "the hot path should not allocate" from a pass/fail
//! assert into attributable data.
//!
//! # Cost model
//!
//! * **Disabled** (no profiler running): every `span!` site pays one
//!   relaxed atomic load and allocates nothing — enforced by the
//!   counting-allocator test in `tests/disabled_alloc.rs`.
//! * **Enabled**: span entry/exit additionally pushes/pops one interned
//!   name id on a fixed per-thread array; the sampler wakes every
//!   `interval` and walks the thread registry.
//!
//! # Wiring
//!
//! * `APF_PROF=1` (or `cpu`) starts the sampler via [`init_from_env`];
//!   `APF_PROF=alloc` also enables allocation attribution.
//!   `APF_PROF_FILE=path` is where [`finish`] writes the folded output.
//! * `FlRunnerBuilder::profile()` (apf-fedsim), `--prof-file` on
//!   `apf-server`/`apf-client`/`bench-kernels`, and `/profile?seconds=N`
//!   on `apf-obs` all route here.
//! * `trace-report flame` merges per-process profiles by the run id
//!   stamped in the output header.
//!
//! # Output format
//!
//! ```text
//! # apf-prof run=00000000deadbeef role=server pid=4242 passes=180 interval_us=1000
//! # alloc fedsim::local_train 12 49152
//! round;local_train 140
//! round;aggregate 31
//! ```
//!
//! Comment lines carry process identity ([`apf_trace::TraceContext`]) and
//! allocation sites; every other line is standard folded-stack format
//! (strip the comments and feed the rest to any flamegraph tool).

pub mod alloc;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apf_trace::stack;

/// Default sampling interval: 1 ms keeps per-phase attribution meaningful
/// on rounds that complete in tens of milliseconds.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(1);

/// Raw aggregation state: interned-id stacks -> sample counts.
#[derive(Default)]
struct Agg {
    stacks: HashMap<Vec<u32>, u64>,
    passes: u64,
}

/// One sampling pass over every registered thread.
fn sample_once(agg: &mut Agg, key: &mut Vec<u32>) {
    for st in stack::stacks() {
        if st.sample(key) {
            *agg.stacks.entry(key.clone()).or_insert(0) += 1;
        }
    }
    agg.passes += 1;
}

/// Refcount of stack-tracking users (the background sampler and any inline
/// [`sample_window`] calls compose; the trace gate bit flips only on the
/// 0 <-> 1 transitions).
static TRACKERS: AtomicUsize = AtomicUsize::new(0);

fn tracking_acquire() {
    if TRACKERS.fetch_add(1, Ordering::SeqCst) == 0 {
        apf_trace::set_stack_tracking(true);
    }
}

fn tracking_release() {
    if TRACKERS.fetch_sub(1, Ordering::SeqCst) == 1 {
        apf_trace::set_stack_tracking(false);
    }
}

struct Running {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Agg>,
    interval: Duration,
    file: Option<String>,
    with_alloc: bool,
}

static RUNNING: Mutex<Option<Running>> = Mutex::new(None);

/// Starts the background sampler at `interval`. Returns `false` (and does
/// nothing) when a profiler is already running — callers use the return
/// value to know whether they own the session and should [`finish`] it.
pub fn start(interval: Duration) -> bool {
    start_with(interval, None, false)
}

/// [`start`] with an output file for [`finish`] and optional
/// allocation-site attribution (only yields data in binaries that install
/// [`alloc::ProfAlloc`] as their global allocator).
pub fn start_with(interval: Duration, file: Option<String>, with_alloc: bool) -> bool {
    let Ok(mut guard) = RUNNING.lock() else {
        return false;
    };
    if guard.is_some() {
        return false;
    }
    tracking_acquire();
    if with_alloc {
        alloc::reset();
        alloc::set_enabled(true);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let spawned = std::thread::Builder::new()
        .name("apf-prof-sampler".to_owned())
        .spawn(move || {
            let mut agg = Agg::default();
            let mut key = Vec::with_capacity(stack::MAX_DEPTH);
            while !stop2.load(Ordering::Relaxed) {
                sample_once(&mut agg, &mut key);
                std::thread::sleep(interval);
            }
            // One final pass so very short sessions still see something.
            sample_once(&mut agg, &mut key);
            agg
        });
    match spawned {
        Ok(handle) => {
            *guard = Some(Running {
                stop,
                handle,
                interval,
                file,
                with_alloc,
            });
            true
        }
        Err(_) => {
            if with_alloc {
                alloc::set_enabled(false);
            }
            tracking_release();
            false
        }
    }
}

/// Whether a background sampler is currently running.
pub fn is_running() -> bool {
    RUNNING.lock().map(|g| g.is_some()).unwrap_or(false)
}

fn stop_inner() -> Option<(Profile, Option<String>)> {
    let running = RUNNING.lock().ok()?.take()?;
    running.stop.store(true, Ordering::Relaxed);
    let agg = running.handle.join().unwrap_or_default();
    let allocs = if running.with_alloc {
        alloc::set_enabled(false);
        alloc::sites()
    } else {
        Vec::new()
    };
    tracking_release();
    Some((
        Profile::from_parts(agg, running.interval, allocs),
        running.file,
    ))
}

/// Stops the sampler and returns the aggregated profile (`None` when none
/// was running). Does not write any file; see [`finish`].
pub fn stop() -> Option<Profile> {
    stop_inner().map(|(p, _)| p)
}

/// Stops the sampler and writes the folded output to the file configured at
/// [`start_with`]/[`init_from_env`] time (no file configured = no write).
/// Returns the profile. `None` when no profiler was running.
pub fn finish() -> Option<Profile> {
    let (profile, file) = stop_inner()?;
    if let Some(path) = file {
        match std::fs::write(&path, profile.render_folded()) {
            Ok(()) => apf_trace::event!(apf_trace::Level::Info, target: "prof",
                "profile_written", path = path.as_str(),
                passes = profile.passes, stacks = profile.stacks.len()),
            Err(e) => apf_trace::event!(apf_trace::Level::Warn, target: "prof",
                "profile_write_failed", path = path.as_str(),
                error = e.to_string()),
        }
    }
    Some(profile)
}

/// Samples inline (no background thread) for `window`, returning the
/// profile. Powers the `apf-obs` `/profile?seconds=N` endpoint; composes
/// with a concurrently running background sampler (both see the stacks).
pub fn sample_window(window: Duration, interval: Duration) -> Profile {
    tracking_acquire();
    let mut agg = Agg::default();
    let mut key = Vec::with_capacity(stack::MAX_DEPTH);
    let deadline = Instant::now() + window;
    loop {
        sample_once(&mut agg, &mut key);
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(interval);
    }
    tracking_release();
    Profile::from_parts(agg, interval, Vec::new())
}

/// Starts profiling from the environment:
///
/// * `APF_PROF` — unset/`0`/`off` = disabled; `1`/`on`/`cpu` = sampling;
///   `alloc` = sampling + allocation-site attribution.
/// * `APF_PROF_FILE` — path [`finish`] writes the folded output to.
/// * `APF_PROF_INTERVAL_US` — sampling interval override (see
///   [`env_interval`]).
///
/// Returns whether THIS call started the profiler — callers that get
/// `true` own the session and are responsible for calling [`finish`];
/// `false` means either profiling is off or someone else already started
/// it (e.g. a binary that handled `--prof-file` before building a runner).
pub fn init_from_env() -> bool {
    let mode = std::env::var("APF_PROF").unwrap_or_default();
    let with_alloc = match mode.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "none" => return false,
        "alloc" => true,
        _ => false,
    };
    let file = std::env::var("APF_PROF_FILE")
        .ok()
        .filter(|s| !s.is_empty());
    start_with(env_interval(), file, with_alloc)
}

/// The sampling interval: `APF_PROF_INTERVAL_US` (clamped to 20 µs – 1 s so
/// a typo can neither spin a core nor silence the profiler) or
/// [`DEFAULT_INTERVAL`]. Short runs sample finer to catch sub-millisecond
/// phases; the default suits multi-second runs.
pub fn env_interval() -> Duration {
    std::env::var("APF_PROF_INTERVAL_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map_or(DEFAULT_INTERVAL, |us| {
            Duration::from_micros(us.clamp(20, 1_000_000))
        })
}

/// Whether `APF_PROF=alloc` asks for allocation-site attribution. Binaries
/// combining a `--prof-file` flag with the env mode switch use this to
/// pick the [`start_with`] arguments.
pub fn env_wants_alloc() -> bool {
    std::env::var("APF_PROF").is_ok_and(|v| v.trim().eq_ignore_ascii_case("alloc"))
}

/// One allocation site: the innermost open span when the allocations
/// happened (`"(no span)"` = outside any span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// The attributed span name.
    pub frame: String,
    /// Number of allocator calls (alloc + realloc).
    pub count: u64,
    /// Total bytes requested.
    pub bytes: u64,
}

/// An aggregated sampling profile, ready to render as folded stacks.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Sampling passes performed (each pass visits every live thread).
    pub passes: u64,
    /// Sampling interval in microseconds.
    pub interval_us: u64,
    /// Folded stacks (`"root;child;leaf"`) with sample counts,
    /// lexicographically sorted for deterministic output.
    pub stacks: Vec<(String, u64)>,
    /// Allocation sites (empty unless allocation profiling ran).
    pub allocs: Vec<AllocSite>,
}

impl Profile {
    fn from_parts(agg: Agg, interval: Duration, raw_allocs: Vec<(u32, u64, u64)>) -> Profile {
        // Resolve interned ids to names; distinct ids with equal names (or
        // unresolvable ids) merge here, so fold into a map keyed by text.
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (ids, count) in agg.stacks {
            let mut line = String::with_capacity(ids.len() * 12);
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    line.push(';');
                }
                line.push_str(stack::name_of(*id).unwrap_or("?"));
            }
            *folded.entry(line).or_insert(0) += count;
        }
        let allocs = raw_allocs
            .into_iter()
            .map(|(id, count, bytes)| AllocSite {
                frame: match id {
                    0 => "(no span)".to_owned(),
                    _ => stack::name_of(id).unwrap_or("(other)").to_owned(),
                },
                count,
                bytes,
            })
            .collect();
        Profile {
            passes: agg.passes,
            interval_us: interval.as_micros() as u64,
            stacks: folded.into_iter().collect(),
            allocs,
        }
    }

    /// Total samples across all stacks (idle passes where no thread had an
    /// open span contribute nothing).
    pub fn total_samples(&self) -> u64 {
        self.stacks.iter().map(|(_, c)| c).sum()
    }

    /// Self-time per frame: samples whose *leaf* was this frame, sorted by
    /// count descending (ties by name for determinism).
    pub fn self_time(&self) -> Vec<(String, u64)> {
        let mut leaf: BTreeMap<&str, u64> = BTreeMap::new();
        for (line, count) in &self.stacks {
            let frame = line.rsplit(';').next().unwrap_or(line);
            *leaf.entry(frame).or_insert(0) += count;
        }
        let mut out: Vec<(String, u64)> =
            leaf.into_iter().map(|(f, c)| (f.to_owned(), c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Renders the `flamegraph.pl`-compatible folded output with identity
    /// and allocation-site comment lines (see the module docs for the
    /// format). Comment lines start with `#`; flamegraph tools and
    /// `trace-report flame` both skip or consume them as appropriate.
    pub fn render_folded(&self) -> String {
        let ctx = apf_trace::current_context();
        let role = ctx.role.render();
        let mut out = String::with_capacity(64 + self.stacks.len() * 48);
        out.push_str(&format!(
            "# apf-prof run={:016x} role={} pid={} passes={} interval_us={}\n",
            ctx.run_id,
            if role.is_empty() { "-" } else { &role },
            ctx.pid,
            self.passes,
            self.interval_us,
        ));
        for site in &self.allocs {
            out.push_str(&format!(
                "# alloc {} {} {}\n",
                site.frame.replace(' ', "_"),
                site.count,
                site.bytes
            ));
        }
        for (line, count) in &self.stacks {
            out.push_str(line);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_trace::{span, Level};

    // One profiler session at a time per process: serialize the tests that
    // own a session.
    static SESSION: Mutex<()> = Mutex::new(());

    fn spin_spans(stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            let _outer = span!(Level::Trace, target: "prof.test", "outer_work");
            let _inner = span!(Level::Trace, target: "prof.test", "inner_work");
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn sampler_captures_open_span_stacks() {
        let _guard = SESSION.lock().unwrap();
        assert!(start(Duration::from_micros(200)));
        assert!(is_running());
        assert!(!start(Duration::from_millis(1)), "second start must refuse");
        let stop_flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&stop_flag);
        let worker = std::thread::spawn(move || spin_spans(&f));
        std::thread::sleep(Duration::from_millis(60));
        stop_flag.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        let profile = stop().expect("profiler was running");
        assert!(!is_running());
        assert!(profile.passes > 0);
        assert!(
            profile
                .stacks
                .iter()
                .any(|(line, _)| line.contains("outer_work")),
            "expected outer_work in {:?}",
            profile.stacks
        );
        assert!(profile
            .stacks
            .iter()
            .any(|(line, _)| line == "outer_work;inner_work"));
        let folded = profile.render_folded();
        assert!(folded.starts_with("# apf-prof run="));
        assert!(folded.contains("outer_work;inner_work "));
        // Self-time leaves: inner_work must dominate outer_work's self time.
        let self_time = profile.self_time();
        assert!(self_time.iter().any(|(f, _)| f == "inner_work"));
    }

    #[test]
    fn sample_window_is_inline_and_composable() {
        let _guard = SESSION.lock().unwrap();
        let stop_flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&stop_flag);
        let worker = std::thread::spawn(move || spin_spans(&f));
        let profile = sample_window(Duration::from_millis(40), Duration::from_micros(200));
        stop_flag.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(profile.passes > 1);
        assert!(profile.total_samples() > 0);
        assert!(!apf_trace::stack_tracking(), "window must release tracking");
    }

    #[test]
    fn folded_render_is_deterministic_and_parseable() {
        let profile = Profile {
            passes: 10,
            interval_us: 1000,
            stacks: vec![
                ("a;b".to_owned(), 7),
                ("a;c".to_owned(), 3),
                ("a".to_owned(), 2),
            ],
            allocs: vec![AllocSite {
                frame: "b".to_owned(),
                count: 4,
                bytes: 1024,
            }],
        };
        let folded = profile.render_folded();
        assert!(folded.contains("# alloc b 4 1024\n"));
        assert!(folded.contains("a;b 7\n"));
        assert!(folded.contains("a;c 3\n"));
        assert_eq!(profile.total_samples(), 12);
        let self_time = profile.self_time();
        assert_eq!(self_time[0], ("b".to_owned(), 7));
    }

    #[test]
    fn init_from_env_off_values_do_nothing() {
        // Can't mutate the environment safely in tests; exercise the parse
        // path indirectly by asserting the off-state contract.
        let _guard = SESSION.lock().unwrap();
        if std::env::var("APF_PROF").is_err() {
            assert!(!init_from_env());
            assert!(!is_running());
        }
    }
}
