//! The disabled profiler must be free: with NO profiler running and NO
//! tracing configured, every `span!`/`event!` site costs one relaxed atomic
//! load and zero allocator calls — even with [`apf_prof::alloc::ProfAlloc`]
//! installed as the global allocator, as the profiled binaries do.
//!
//! A counting allocator wraps `ProfAlloc` (which wraps `System`), so this
//! measures the exact production stack: span gate -> prof allocator ->
//! system. Own test binary: the allocator and trace gate are
//! process-global.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;

use apf_prof::alloc::ProfAlloc;
use apf_trace::{event, span, Level};

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { ProfAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { ProfAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { ProfAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// The span/event shapes the fedsim round loop and net round loop emit,
/// with tracing AND profiling disabled.
fn instrumentation_workload(iters: u64) -> u64 {
    let mut acc = 0u64;
    for round in 0..iters {
        let round_span = span!(Level::Info, target: "fedsim", "round", round = round);
        {
            let _local = span!(Level::Info, target: "fedsim", "local_train",
                round = round, participants = 3usize);
            event!(Level::Debug, target: "fedsim.client", "local_round",
                round = round, client = 1usize, loss = 0.5f32);
        }
        {
            let _agg = span!(Level::Info, target: "fedsim", "aggregate", round = round);
        }
        acc = acc.wrapping_add(std::hint::black_box(round_span.id()));
    }
    acc
}

#[test]
fn disabled_profiler_and_tracing_do_not_allocate() {
    assert!(!apf_prof::is_running());
    assert!(!apf_trace::stack_tracking());
    // Warm-up excludes any lazy runtime setup from the measurement.
    std::hint::black_box(instrumentation_workload(10));
    let before = allocs();
    std::hint::black_box(instrumentation_workload(50_000));
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "disabled spans through ProfAlloc must not allocate (got {})",
        after - before
    );
}

#[test]
fn enabling_then_disabling_restores_the_free_path() {
    // A completed profiling session must leave the disabled path free
    // again (modulo the retained per-thread stack registration).
    assert!(apf_prof::start(std::time::Duration::from_millis(1)));
    std::hint::black_box(instrumentation_workload(100));
    let profile = apf_prof::stop().expect("profiler was running");
    std::hint::black_box(profile);
    assert!(!apf_trace::stack_tracking());
    std::hint::black_box(instrumentation_workload(10));
    let before = allocs();
    std::hint::black_box(instrumentation_workload(20_000));
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "post-session disabled spans must not allocate (got {})",
        after - before
    );
}
