//! **`apf-trace`** — a zero-dependency structured tracing facade and metrics
//! registry for the APF workspace.
//!
//! The workspace is hermetic (no registry crates, see DESIGN.md), so the
//! usual `tracing`/`log`/`metrics` stack is off the table. This crate
//! provides the pieces the experiment harness actually needs:
//!
//! * **Levels and a global gate** — a single relaxed atomic load decides
//!   whether an event or span is recorded. With tracing disabled (the
//!   default) instrumented code performs no allocation and no I/O.
//! * **Structured events** — `event!(Level::Debug, target: "apf", "msg",
//!   key = value, ...)` writes one JSON object per line (JSONL) to the
//!   configured sink.
//! * **RAII spans** — [`Span::enter`] (or the [`span!`] macro) times a scope
//!   on the monotonic clock and records it with its parent span on drop,
//!   so a trace reconstructs the full span tree per thread.
//! * **Sinks** — stderr, append-to-file, or in-memory (for tests); see
//!   [`sink`].
//! * **A metrics registry** — named monotonic counters and fixed-bucket
//!   histograms; see [`metrics`].
//!
//! # Configuration
//!
//! Programmatic: [`init`] / [`set_level`] / [`set_sink`]. Environment:
//! [`init_from_env`] reads `APF_TRACE` (`off|error|warn|info|debug|trace`)
//! and `APF_TRACE_FILE` (path; default stderr). `init_from_env` is
//! idempotent and never overrides an explicit [`init`].
//!
//! # JSONL schema
//!
//! Every line is one JSON object with a `t` discriminator:
//!
//! ```json
//! {"t":"event","ts_us":1024,"lvl":"debug","target":"apf.manager",
//!  "msg":"round","span":3,"thread":1,"fields":{"round":7,"frozen":120}}
//! {"t":"span","ts_us":2048,"lvl":"info","target":"fedsim","name":"round",
//!  "id":3,"parent":0,"start_us":1000,"dur_us":1048,"thread":1,
//!  "fields":{"round":7}}
//! ```
//!
//! `ts_us`/`start_us` are microseconds since tracing was initialized
//! (monotonic clock); `span` on an event is the id of the innermost active
//! span on the emitting thread (0 = none); `parent` is 0 for root spans.
//! `thread` is a small stable per-thread ordinal (assigned on first record,
//! starting at 1) identifying the emitting thread — with the `apf-par` pool
//! active, it attributes work to individual pool workers.

pub mod metrics;
pub mod sink;

mod emit;
mod span;

pub use emit::{emit_event, FieldValue};
pub use sink::{FileSink, MemorySink, StderrSink, TraceSink};
pub use span::Span;

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Verbosity levels, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious conditions worth surfacing.
    Warn = 2,
    /// Per-round progress (the default for interactive runs).
    Info = 3,
    /// Per-round internals: freeze telemetry, comm breakdowns.
    Debug = 4,
    /// Per-batch / per-layer timing spans (high volume).
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire and in `APF_TRACE`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name; `"off"` and `"0"` map to `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// 0 = tracing off; otherwise the maximum enabled [`Level`] as u8.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
/// Set once any explicit or env-derived configuration has happened.
static CONFIGURED: AtomicBool = AtomicBool::new(false);

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether records at `level` are currently recorded.
///
/// This is the fast path instrumented code checks before building any
/// fields: a single relaxed atomic load, no allocation.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Microseconds since tracing was initialized (monotonic).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

pub(crate) fn with_sink(f: impl FnOnce(&dyn TraceSink)) {
    if let Ok(guard) = SINK.read() {
        if let Some(s) = guard.as_deref() {
            f(s);
        }
    }
}

/// Enables tracing at `level`, writing to `sink`.
///
/// May be called repeatedly (tests swap in fresh [`MemorySink`]s); the
/// latest call wins.
pub fn init(level: Level, sink: Arc<dyn TraceSink>) {
    EPOCH.get_or_init(Instant::now);
    if let Ok(mut guard) = SINK.write() {
        *guard = Some(sink);
    }
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    CONFIGURED.store(true, Ordering::Relaxed);
}

/// Disables tracing and drops the sink (flushing it first).
pub fn shutdown() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
    flush();
    if let Ok(mut guard) = SINK.write() {
        *guard = None;
    }
    CONFIGURED.store(true, Ordering::Relaxed);
}

/// Adjusts the maximum recorded level without touching the sink.
/// `None` disables tracing.
pub fn set_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    CONFIGURED.store(true, Ordering::Relaxed);
}

/// Replaces the sink without touching the level.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    EPOCH.get_or_init(Instant::now);
    if let Ok(mut guard) = SINK.write() {
        *guard = Some(sink);
    }
}

/// Flushes the current sink (e.g. before process exit).
pub fn flush() {
    with_sink(|s| s.flush());
}

/// Configures tracing from `APF_TRACE` / `APF_TRACE_FILE`.
///
/// * `APF_TRACE` — `off`, `error`, `warn`, `info`, `debug`, `trace`.
///   Unset or unparsable means "leave tracing off".
/// * `APF_TRACE_FILE` — path the JSONL trace is written to (the file is
///   truncated); unset means stderr.
///
/// Idempotent: only the first call does anything, and a preceding explicit
/// [`init`]/[`set_level`] wins. Library entry points (e.g. the fedsim
/// runner) call this so `APF_TRACE=debug cargo run ...` works without any
/// code changes; repeated calls are free.
pub fn init_from_env() {
    if CONFIGURED.swap(true, Ordering::Relaxed) {
        return;
    }
    let Some(level) = std::env::var("APF_TRACE")
        .ok()
        .and_then(|v| Level::parse(&v))
        .flatten()
    else {
        return;
    };
    let sink: Arc<dyn TraceSink> = match std::env::var("APF_TRACE_FILE") {
        Ok(path) if !path.is_empty() => match FileSink::create(&path) {
            Ok(f) => Arc::new(f),
            Err(_) => Arc::new(StderrSink),
        },
        _ => Arc::new(StderrSink),
    };
    EPOCH.get_or_init(Instant::now);
    if let Ok(mut guard) = SINK.write() {
        *guard = Some(sink);
    }
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Records a structured event.
///
/// ```
/// use apf_trace::{event, Level};
/// apf_trace::event!(Level::Debug, target: "demo", "round done",
///     round = 3u64, frozen_ratio = 0.25f32);
/// ```
///
/// Fields are only evaluated when the level is enabled.
#[macro_export]
macro_rules! event {
    ($lvl:expr, target: $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::enabled($lvl) {
            $crate::emit_event(
                $lvl,
                $target,
                $msg,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            );
        }
    }};
}

/// Opens a RAII span; the returned guard records the span on drop.
///
/// ```
/// use apf_trace::{span, Level};
/// let _s = apf_trace::span!(Level::Info, target: "demo", "round", round = 3u64);
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($lvl:expr, target: $target:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled($lvl) {
            $crate::Span::enter(
                $lvl,
                $target,
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("DEBUG"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn disabled_by_default_and_gated() {
        // Other tests may have configured tracing; force a known state.
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(None);
    }
}
