//! **`apf-trace`** — a zero-dependency structured tracing facade and metrics
//! registry for the APF workspace.
//!
//! The workspace is hermetic (no registry crates, see DESIGN.md), so the
//! usual `tracing`/`log`/`metrics` stack is off the table. This crate
//! provides the pieces the experiment harness actually needs:
//!
//! * **Levels and a global gate** — a single relaxed atomic load decides
//!   whether an event or span is recorded. With tracing disabled (the
//!   default) instrumented code performs no allocation and no I/O.
//! * **Structured events** — `event!(Level::Debug, target: "apf", "msg",
//!   key = value, ...)` writes one JSON object per line (JSONL) to the
//!   configured sink.
//! * **RAII spans** — [`Span::enter`] (or the [`span!`] macro) times a scope
//!   on the monotonic clock and records it with its parent span on drop,
//!   so a trace reconstructs the full span tree per thread.
//! * **Sinks** — stderr, append-to-file, or in-memory (for tests); see
//!   [`sink`]. Records emitted while a level is enabled but no sink is
//!   installed yet are held in a bounded buffer and flushed into the first
//!   installed sink, so early events in long runs are not lost.
//! * **A metrics registry** — named monotonic counters, gauges, and
//!   fixed-bucket histograms (with quantile estimation); see [`metrics`].
//!
//! # Configuration
//!
//! Programmatic: [`init`] / [`set_level`] / [`set_sink`]. Environment:
//! [`init_from_env`] reads `APF_TRACE` (`off|error|warn|info|debug|trace`)
//! and `APF_TRACE_FILE` (path; default stderr). `init_from_env` is
//! idempotent and never overrides an explicit [`init`].
//!
//! # JSONL schema
//!
//! Every line is one JSON object with a `t` discriminator:
//!
//! ```json
//! {"t":"event","ts_us":1024,"lvl":"debug","target":"apf.manager",
//!  "msg":"round","span":3,"thread":1,"fields":{"round":7,"frozen":120}}
//! {"t":"span","ts_us":2048,"lvl":"info","target":"fedsim","name":"round",
//!  "id":3,"parent":0,"start_us":1000,"dur_us":1048,"thread":1,
//!  "fields":{"round":7}}
//! ```
//!
//! `ts_us`/`start_us` are microseconds since tracing was initialized
//! (monotonic clock); `span` on an event is the id of the innermost active
//! span on the emitting thread (0 = none); `parent` is 0 for root spans.
//! `thread` is a small stable per-thread ordinal (assigned on first record,
//! starting at 1) identifying the emitting thread — with the `apf-par` pool
//! active, it attributes work to individual pool workers.
//!
//! Distributed runs additionally stamp every record with the process's
//! [`TraceContext`] (`"run"`, `"role"`, `"pid"`, optional `"link"`) and
//! open each trace file with a `{"t":"header",...}` record carrying the
//! run's canonical spec; see [`context`].

pub mod context;
pub mod metrics;
pub mod sink;
pub mod stack;

mod emit;
mod span;

pub use context::{
    clear_thread_context, current_context, emit_header, set_process_context, set_thread_context,
    Role, TraceContext,
};
pub use emit::{emit_event, FieldValue};
pub use sink::{FileSink, MemorySink, StderrSink, TraceSink};
pub use span::Span;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Verbosity levels, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious conditions worth surfacing.
    Warn = 2,
    /// Per-round progress (the default for interactive runs).
    Info = 3,
    /// Per-round internals: freeze telemetry, comm breakdowns.
    Debug = 4,
    /// Per-batch / per-layer timing spans (high volume).
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire and in `APF_TRACE`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name; `"off"` and `"0"` map to `None`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// The combined gate instrumented code checks with ONE relaxed load:
/// the low bits hold the maximum enabled [`Level`] (0 = tracing off), and
/// [`STACK_BIT`] marks profiler stack tracking as on (see [`stack`]).
static GATE: AtomicU8 = AtomicU8::new(0);
/// [`GATE`] bit: spans maintain the per-thread name stacks for `apf-prof`.
const STACK_BIT: u8 = 0x80;
/// [`GATE`] bits holding the maximum enabled level.
const LEVEL_MASK: u8 = 0x7f;
/// Set once any explicit or env-derived configuration has happened.
static CONFIGURED: AtomicBool = AtomicBool::new(false);

/// Stores a new maximum level without disturbing the profiler bit.
fn store_level(bits: u8) {
    let _ = GATE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |g| {
        Some((g & STACK_BIT) | (bits & LEVEL_MASK))
    });
}

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Records produced while a level is enabled but no sink is installed yet
/// (e.g. `set_level` before `set_sink`, or early library code racing env
/// init) are held here and flushed — in order, ahead of new records — into
/// the first sink that gets installed. The buffer is bounded; once full,
/// further pre-init records are counted in [`PREINIT_DROPPED`] and
/// discarded, and the drop count is reported as a `warn` event on install.
const PREINIT_CAP: usize = 4096;
static PREINIT: Mutex<Vec<String>> = Mutex::new(Vec::new());
static PREINIT_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Whether records at `level` are currently recorded.
///
/// This is the fast path instrumented code checks before building any
/// fields: a single relaxed atomic load, no allocation.
#[inline(always)]
pub fn enabled(level: Level) -> bool {
    level as u8 <= GATE.load(Ordering::Relaxed) & LEVEL_MASK
}

/// What a span at some level should do right now; see [`span_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanGate {
    /// Record the span to the sink (and track its name if profiling is on).
    Record,
    /// Only maintain the profiler name stack; record nothing.
    StackOnly,
    /// Do nothing at all.
    Off,
}

/// The decision a [`span!`] site makes, from ONE relaxed atomic load:
/// record (level enabled), stack-only (level disabled but profiler stack
/// tracking on), or off entirely. The `Off` path evaluates no fields and
/// allocates nothing.
#[inline(always)]
pub fn span_gate(level: Level) -> SpanGate {
    let g = GATE.load(Ordering::Relaxed);
    if level as u8 <= g & LEVEL_MASK {
        SpanGate::Record
    } else if g & STACK_BIT != 0 {
        SpanGate::StackOnly
    } else {
        SpanGate::Off
    }
}

/// Turns profiler stack tracking on or off (see [`stack`]). Independent of
/// the tracing level: `apf-prof` enables this for the duration of a
/// sampling session even when tracing is fully off.
pub fn set_stack_tracking(on: bool) {
    if on {
        GATE.fetch_or(STACK_BIT, Ordering::Relaxed);
    } else {
        GATE.fetch_and(!STACK_BIT, Ordering::Relaxed);
    }
}

/// Whether profiler stack tracking is currently on.
#[inline(always)]
pub fn stack_tracking() -> bool {
    GATE.load(Ordering::Relaxed) & STACK_BIT != 0
}

/// Microseconds since tracing was initialized (monotonic).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

pub(crate) fn with_sink(f: impl FnOnce(&dyn TraceSink)) {
    if let Ok(guard) = SINK.read() {
        if let Some(s) = guard.as_deref() {
            f(s);
        }
    }
}

/// Delivers one complete record line: to the sink when one is installed,
/// otherwise into the bounded pre-init buffer (see [`PREINIT`]).
///
/// The buffer push happens while the `SINK` read lock is held, so it cannot
/// race [`install_sink`] (which drains the buffer under the write lock):
/// every record lands either in the buffer before the drain or in the sink.
pub(crate) fn write_line(line: &str) {
    if let Ok(guard) = SINK.read() {
        match guard.as_deref() {
            Some(s) => s.write_line(line),
            None => {
                if let Ok(mut buf) = PREINIT.lock() {
                    if buf.len() < PREINIT_CAP {
                        buf.push(line.to_owned());
                    } else {
                        PREINIT_DROPPED.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// Installs `sink`, first flushing any buffered pre-init records into it in
/// emission order. Returns the number of records that overflowed the buffer
/// and were lost (reported by the caller as a `warn` event).
fn install_sink(sink: Arc<dyn TraceSink>) -> u64 {
    EPOCH.get_or_init(Instant::now);
    let Ok(mut guard) = SINK.write() else {
        return 0;
    };
    let buffered = PREINIT
        .lock()
        .map(|mut b| std::mem::take(&mut *b))
        .unwrap_or_default();
    for line in &buffered {
        sink.write_line(line);
    }
    *guard = Some(sink);
    PREINIT_DROPPED.swap(0, Ordering::Relaxed)
}

/// Emits the post-install overflow notice, if any records were lost.
fn report_preinit_dropped(dropped: u64) {
    if dropped > 0 {
        event!(Level::Warn, target: "apf_trace", "preinit_overflow",
            dropped = dropped);
    }
}

/// Enables tracing at `level`, writing to `sink`.
///
/// May be called repeatedly (tests swap in fresh [`MemorySink`]s); the
/// latest call wins.
pub fn init(level: Level, sink: Arc<dyn TraceSink>) {
    let dropped = install_sink(sink);
    store_level(level as u8);
    CONFIGURED.store(true, Ordering::Relaxed);
    report_preinit_dropped(dropped);
}

/// Disables tracing and drops the sink (flushing it first).
pub fn shutdown() {
    store_level(0);
    flush();
    if let Ok(mut guard) = SINK.write() {
        *guard = None;
    }
    CONFIGURED.store(true, Ordering::Relaxed);
}

/// Adjusts the maximum recorded level without touching the sink.
/// `None` disables tracing.
pub fn set_level(level: Option<Level>) {
    store_level(level.map_or(0, |l| l as u8));
    CONFIGURED.store(true, Ordering::Relaxed);
}

/// Replaces the sink without touching the level. Any records buffered while
/// no sink was installed are flushed into the new sink first.
pub fn set_sink(sink: Arc<dyn TraceSink>) {
    let dropped = install_sink(sink);
    report_preinit_dropped(dropped);
}

/// Flushes the current sink (e.g. before process exit).
pub fn flush() {
    with_sink(|s| s.flush());
}

/// Configures tracing from `APF_TRACE` / `APF_TRACE_FILE`.
///
/// * `APF_TRACE` — `off`, `error`, `warn`, `info`, `debug`, `trace`.
///   Unset or unparsable means "leave tracing off".
/// * `APF_TRACE_FILE` — path the JSONL trace is written to (the file is
///   truncated); unset means stderr.
///
/// Idempotent: only the first call does anything, and a preceding explicit
/// [`init`]/[`set_level`] wins. Library entry points (e.g. the fedsim
/// runner) call this so `APF_TRACE=debug cargo run ...` works without any
/// code changes; repeated calls are free.
pub fn init_from_env() {
    if CONFIGURED.swap(true, Ordering::Relaxed) {
        return;
    }
    let Some(level) = std::env::var("APF_TRACE")
        .ok()
        .and_then(|v| Level::parse(&v))
        .flatten()
    else {
        return;
    };
    let sink: Arc<dyn TraceSink> = match std::env::var("APF_TRACE_FILE") {
        Ok(path) if !path.is_empty() => match FileSink::create(&path) {
            Ok(f) => Arc::new(f),
            Err(_) => Arc::new(StderrSink),
        },
        _ => Arc::new(StderrSink),
    };
    let dropped = install_sink(sink);
    store_level(level as u8);
    report_preinit_dropped(dropped);
}

/// Records a structured event.
///
/// ```
/// use apf_trace::{event, Level};
/// apf_trace::event!(Level::Debug, target: "demo", "round done",
///     round = 3u64, frozen_ratio = 0.25f32);
/// ```
///
/// Fields are only evaluated when the level is enabled.
#[macro_export]
macro_rules! event {
    ($lvl:expr, target: $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::enabled($lvl) {
            $crate::emit_event(
                $lvl,
                $target,
                $msg,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            );
        }
    }};
}

/// Opens a RAII span; the returned guard records the span on drop.
///
/// ```
/// use apf_trace::{span, Level};
/// let _s = apf_trace::span!(Level::Info, target: "demo", "round", round = 3u64);
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($lvl:expr, target: $target:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        match $crate::span_gate($lvl) {
            $crate::SpanGate::Record => $crate::Span::enter(
                $lvl,
                $target,
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            ),
            // Profiler stack tracking without tracing: push the name only;
            // fields are never evaluated.
            $crate::SpanGate::StackOnly => $crate::Span::stack_only($name),
            $crate::SpanGate::Off => $crate::Span::disabled(),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("DEBUG"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn disabled_by_default_and_gated() {
        // Other tests may have configured tracing; force a known state.
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(None);
    }

    #[test]
    fn span_gate_combines_level_and_stack_bit() {
        set_level(None);
        set_stack_tracking(false);
        assert_eq!(span_gate(Level::Info), SpanGate::Off);
        set_stack_tracking(true);
        assert_eq!(span_gate(Level::Info), SpanGate::StackOnly);
        assert!(stack_tracking());
        set_level(Some(Level::Info));
        assert_eq!(span_gate(Level::Info), SpanGate::Record);
        assert_eq!(span_gate(Level::Trace), SpanGate::StackOnly);
        // Level changes must not clobber the profiler bit, and vice versa.
        set_level(Some(Level::Debug));
        assert!(stack_tracking());
        set_stack_tracking(false);
        assert!(enabled(Level::Debug));
        assert_eq!(span_gate(Level::Trace), SpanGate::Off);
        set_level(None);
    }
}
