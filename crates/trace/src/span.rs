//! RAII spans with per-thread parent tracking.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::context::push_context;
use crate::emit::{push_fields, push_json_str, FieldValue};
use crate::{enabled, now_us, write_line, Level};

/// Monotonically increasing span id source (0 is reserved for "no span").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Thread ordinal source: ordinal 1 goes to the first thread that records.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost active span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's ordinal for trace records (0 = not yet assigned).
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
}

/// The id of the innermost active span on this thread (0 = none).
pub(crate) fn current_span_id() -> u64 {
    CURRENT.with(Cell::get)
}

/// A small stable per-thread ordinal, assigned lazily on first use.
///
/// Emitted as the `thread` field on every record so `trace-report` can
/// attribute spans/events to pool workers (pool utilization view). Ordinals
/// are process-wide and first-use ordered, not OS thread ids.
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORD.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

struct ActiveSpan {
    level: Level,
    target: &'static str,
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// A RAII span guard: created by [`Span::enter`] (usually via the
/// [`crate::span!`] macro), it times the enclosed scope on the monotonic
/// clock and records one `"t":"span"` line when dropped.
///
/// When the span's level is disabled at entry the guard is inert: no id is
/// allocated, nothing is recorded, and drop is free. When profiler stack
/// tracking is on (see [`crate::set_stack_tracking`]) the guard — recording
/// or not — also keeps the span's *name* on this thread's live stack for
/// the `apf-prof` sampler, popping it on drop.
#[must_use = "a span guard times its scope; dropping it immediately records an empty span"]
pub struct Span {
    active: Option<ActiveSpan>,
    /// Whether this guard pushed a frame on the profiler name stack (popped
    /// on drop). Tracked per-guard so toggling tracking mid-span stays
    /// balanced.
    pushed: bool,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => f
                .debug_struct("Span")
                .field("name", &a.name)
                .field("id", &a.id)
                .finish(),
            None if self.pushed => f.write_str("Span(stack-only)"),
            None => f.write_str("Span(disabled)"),
        }
    }
}

impl Span {
    /// An inert span guard: records nothing, costs nothing on drop. The
    /// [`crate::span!`] macro returns this when the level is disabled so
    /// field expressions are never evaluated.
    pub fn disabled() -> Span {
        Span {
            active: None,
            pushed: false,
        }
    }

    /// A stack-only guard: keeps `name` on this thread's profiler stack for
    /// the enclosed scope but records nothing to the trace sink. The
    /// [`crate::span!`] macro returns this when the level is disabled but
    /// stack tracking is on.
    pub fn stack_only(name: &'static str) -> Span {
        let pushed = crate::stack_tracking() && crate::stack::push_frame(name);
        Span {
            active: None,
            pushed,
        }
    }

    /// Opens a span. Prefer the [`crate::span!`] macro.
    ///
    /// `target` and `name` are `'static` so the disabled path stays
    /// allocation-free; instrumentation sites use literals.
    pub fn enter(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) -> Span {
        if !enabled(level) {
            // Direct callers bypassing the macro still honor profiling.
            if crate::stack_tracking() {
                return Span::stack_only(name);
            }
            return Span::disabled();
        }
        let pushed = crate::stack_tracking() && crate::stack::push_frame(name);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(id));
        Span {
            active: Some(ActiveSpan {
                level,
                target,
                name,
                id,
                parent,
                start_us: now_us(),
                start: Instant::now(),
                fields: fields.to_vec(),
            }),
            pushed,
        }
    }

    /// This span's id (0 when the span is disabled).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }

    /// Whether the span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an extra field after entry (e.g. a result computed inside
    /// the span). No-op when disabled.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.pushed {
            crate::stack::pop_frame();
        }
        let Some(a) = self.active.take() else {
            return;
        };
        CURRENT.with(|c| c.set(a.parent));
        let dur_us = a.start.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(128 + 24 * a.fields.len());
        line.push_str("{\"t\":\"span\",\"ts_us\":");
        line.push_str(&now_us().to_string());
        line.push_str(",\"lvl\":\"");
        line.push_str(a.level.as_str());
        line.push_str("\",\"target\":");
        push_json_str(&mut line, a.target);
        line.push_str(",\"name\":");
        push_json_str(&mut line, a.name);
        line.push_str(",\"id\":");
        line.push_str(&a.id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&a.parent.to_string());
        line.push_str(",\"start_us\":");
        line.push_str(&a.start_us.to_string());
        line.push_str(",\"dur_us\":");
        line.push_str(&dur_us.to_string());
        line.push_str(",\"thread\":");
        line.push_str(&thread_ordinal().to_string());
        push_context(&mut line);
        push_fields(&mut line, &a.fields);
        line.push('}');
        write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        crate::set_level(None);
        let s = Span::enter(Level::Info, "t", "n", &[]);
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        assert_eq!(current_span_id(), 0);
    }

    #[test]
    fn stack_only_span_tracks_name_without_recording() {
        crate::set_level(None);
        crate::set_stack_tracking(true);
        let id = crate::stack::intern_name("span.test.stack_only");
        {
            let s = Span::stack_only("span.test.stack_only");
            assert!(!s.is_recording());
            assert_eq!(s.id(), 0);
            assert_eq!(crate::stack::current_name_id(), id);
        }
        assert_ne!(crate::stack::current_name_id(), id);
        crate::set_stack_tracking(false);
        // With both tracing and tracking off, enter() is fully inert.
        let s = Span::enter(Level::Info, "t", "span.test.stack_only", &[]);
        assert!(!s.is_recording());
        drop(s);
        assert_eq!(crate::stack::current_name_id(), 0);
    }
}
