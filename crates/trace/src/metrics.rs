//! A process-global metrics registry: named monotonic counters, gauges,
//! and fixed-bucket histograms.
//!
//! Handles are cheap `Arc` clones; hot paths pay one atomic RMW per update
//! with no locking (the registry lock is only taken on first lookup).
//! [`emit`] dumps a snapshot into the trace as `metric` events, and
//! [`reset`] clears everything for tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{event, Level};

/// A monotonic counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a named value that can go up *and* down (current frozen
/// ratio, live client count, pool depth — anything a [`Counter`]'s
/// monotonicity cannot express).
///
/// The value is an `f64` stored as its bit pattern in an `AtomicU64`;
/// [`Gauge::set`] is a single relaxed store, [`Gauge::add`] a CAS loop.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `x`.
    #[inline]
    pub fn set(&self, x: f64) {
        self.0.store(x.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (negative `d` decrements).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: f64) {
        self.add(-d);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
///
/// Bucket `i` counts samples `x <= bounds[i]`; one extra overflow bucket
/// counts the rest. Bounds are fixed at registration.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, stored as f64 bits (updated with a CAS loop).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Records one sample.
    pub fn record(&self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one extra overflow bucket at the end).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation within the bucket holding the target rank — the same
    /// scheme Prometheus' `histogram_quantile` uses.
    ///
    /// The first bucket's lower edge is taken as `0` when its upper bound is
    /// positive (latencies, byte counts), otherwise as the bound itself.
    /// Ranks landing in the overflow bucket clamp to the largest bound (the
    /// true value is unknowable there). Returns `None` when the histogram is
    /// empty or was registered with no bounds.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.bounds.is_empty() {
            return None;
        }
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) < rank || c == 0 {
                continue;
            }
            if i == self.bounds.len() {
                // Overflow bucket: clamp to the largest finite bound.
                return Some(self.bounds[self.bounds.len() - 1]);
            }
            let upper = self.bounds[i];
            let lower = if i == 0 {
                if upper > 0.0 {
                    0.0
                } else {
                    upper
                }
            } else {
                self.bounds[i - 1]
            };
            let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
            return Some(lower + (upper - lower) * frac);
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Looks up (registering on first use) the counter `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("metrics lock poisoned");
    map.entry(name.to_owned())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// Looks up (registering on first use) the gauge `name` (initial value 0).
pub fn gauge(name: &str) -> Gauge {
    let mut map = registry().gauges.lock().expect("metrics lock poisoned");
    map.entry(name.to_owned())
        .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        .clone()
}

/// Looks up (registering on first use) the histogram `name`.
///
/// `bounds` must be sorted ascending; they are fixed by the first
/// registration — later callers get the existing histogram regardless of
/// the bounds they pass.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("metrics lock poisoned");
    Arc::clone(
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new(bounds))),
    )
}

/// One histogram in a [`Snapshot`]: `(name, bounds, bucket_counts, count,
/// sum)`.
pub type HistogramSnapshot = (String, Vec<f64>, Vec<u64>, u64, f64);

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// One [`HistogramSnapshot`] per histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots all registered metrics.
pub fn snapshot() -> Snapshot {
    let counters = registry()
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    let gauges = registry()
        .gauges
        .lock()
        .expect("metrics lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    let histograms = registry()
        .histograms
        .lock()
        .expect("metrics lock poisoned")
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                h.bounds().to_vec(),
                h.bucket_counts(),
                h.count(),
                h.sum(),
            )
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Writes the current snapshot to the trace as one `metric` event per
/// metric (level Info, target `metrics`). No-op when tracing is disabled.
pub fn emit() {
    if !crate::enabled(Level::Info) {
        return;
    }
    let snap = snapshot();
    for (name, value) in &snap.counters {
        event!(Level::Info, target: "metrics", "counter",
            name = name.as_str(), value = *value);
    }
    for (name, value) in &snap.gauges {
        event!(Level::Info, target: "metrics", "gauge",
            name = name.as_str(), value = *value);
    }
    for (name, bounds, buckets, count, sum) in &snap.histograms {
        let bounds_s = bounds
            .iter()
            .map(|b| format!("{b}"))
            .collect::<Vec<_>>()
            .join("|");
        let buckets_s = buckets
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("|");
        event!(Level::Info, target: "metrics", "histogram",
            name = name.as_str(), bounds = bounds_s, buckets = buckets_s,
            count = *count, sum = *sum);
    }
}

/// Removes every registered metric (tests).
pub fn reset() {
    registry()
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .clear();
    registry()
        .gauges
        .lock()
        .expect("metrics lock poisoned")
        .clear();
    registry()
        .histograms
        .lock()
        .expect("metrics lock poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let c1 = counter("test.metrics.shared");
        let c2 = counter("test.metrics.shared");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), c2.get());
        assert!(c1.get() >= 4);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("test.metrics.hist", &[1.0, 10.0]);
        let before = h.count();
        h.record(0.5);
        h.record(5.0);
        h.record(100.0);
        assert_eq!(h.count(), before + 3);
        let b = h.bucket_counts();
        assert_eq!(b.len(), 3);
        assert!(h.sum() >= 105.5);
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.metrics.snap").inc();
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "test.metrics.snap" && *v >= 1));
    }

    #[test]
    fn gauges_go_up_and_down_and_share() {
        let g1 = gauge("test.metrics.gauge");
        let g2 = gauge("test.metrics.gauge");
        g1.set(2.5);
        assert_eq!(g2.get(), 2.5);
        g2.add(1.5);
        g1.sub(3.0);
        assert!((g1.get() - 1.0).abs() < 1e-12);
        let snap = snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "test.metrics.gauge" && (*v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn quantile_uniform_distribution_is_exact_at_bucket_edges() {
        // 1..=100 into decade buckets: each bucket holds exactly 10 samples,
        // so linear interpolation recovers the true quantiles exactly.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let h = histogram("test.metrics.quantile_uniform", &bounds);
        for x in 1..=100 {
            h.record(x as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        // q = 0 lands at rank 0: the lower edge of the first bucket.
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let h = histogram("test.metrics.quantile_interp", &[0.0, 100.0]);
        // 4 samples all in (0, 100]: p50 is the bucket midpoint.
        for x in [10.0, 20.0, 80.0, 90.0] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.25), Some(25.0));
    }

    #[test]
    fn quantile_overflow_clamps_to_last_bound() {
        let h = histogram("test.metrics.quantile_overflow", &[1.0, 2.0]);
        h.record(0.5);
        h.record(1e9);
        h.record(1e9);
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    fn quantile_empty_and_unbounded_are_none() {
        let h = histogram("test.metrics.quantile_empty", &[1.0]);
        assert_eq!(h.quantile(0.5), None);
        let h2 = histogram("test.metrics.quantile_nobounds", &[]);
        h2.record(1.0);
        assert_eq!(h2.quantile(0.5), None);
    }

    #[test]
    fn quantile_single_sample_interpolates_its_bucket() {
        // One sample in (10, 20]: every rank lands in that bucket, so all
        // quantiles interpolate between its edges and never escape them.
        let h = histogram("test.metrics.quantile_single", &[10.0, 20.0, 30.0]);
        h.record(15.0);
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(0.5), Some(15.0));
        assert_eq!(h.quantile(1.0), Some(20.0));
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.quantile(-1.0), Some(10.0));
        assert_eq!(h.quantile(2.0), Some(20.0));
    }

    #[test]
    fn quantile_all_samples_in_one_bucket_stays_inside_it() {
        // Everything lands in (1, 2]: empty neighbours must be skipped and
        // the answer confined to the occupied bucket for any q.
        let h = histogram("test.metrics.quantile_one_bucket", &[1.0, 2.0, 3.0]);
        for _ in 0..8 {
            h.record(1.5);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((1.0..=2.0).contains(&v), "q={q} escaped the bucket: {v}");
        }
        assert_eq!(h.quantile(0.5), Some(1.5));
        assert_eq!(h.quantile(1.0), Some(2.0));
    }
}
