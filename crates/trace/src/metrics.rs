//! A process-global metrics registry: named monotonic counters and
//! fixed-bucket histograms.
//!
//! Handles are cheap `Arc` clones; hot paths pay one atomic RMW per update
//! with no locking (the registry lock is only taken on first lookup).
//! [`emit`] dumps a snapshot into the trace as `metric` events, and
//! [`reset`] clears everything for tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{event, Level};

/// A monotonic counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle.
///
/// Bucket `i` counts samples `x <= bounds[i]`; one extra overflow bucket
/// counts the rest. Bounds are fixed at registration.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, stored as f64 bits (updated with a CAS loop).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Records one sample.
    pub fn record(&self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + x).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (one extra overflow bucket at the end).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Looks up (registering on first use) the counter `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = registry().counters.lock().expect("metrics lock poisoned");
    map.entry(name.to_owned())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// Looks up (registering on first use) the histogram `name`.
///
/// `bounds` must be sorted ascending; they are fixed by the first
/// registration — later callers get the existing histogram regardless of
/// the bounds they pass.
pub fn histogram(name: &str, bounds: &[f64]) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("metrics lock poisoned");
    Arc::clone(
        map.entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new(bounds))),
    )
}

/// One histogram in a [`Snapshot`]: `(name, bounds, bucket_counts, count,
/// sum)`.
pub type HistogramSnapshot = (String, Vec<f64>, Vec<u64>, u64, f64);

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// One [`HistogramSnapshot`] per histogram, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots all registered metrics.
pub fn snapshot() -> Snapshot {
    let counters = registry()
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect();
    let histograms = registry()
        .histograms
        .lock()
        .expect("metrics lock poisoned")
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                h.bounds().to_vec(),
                h.bucket_counts(),
                h.count(),
                h.sum(),
            )
        })
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}

/// Writes the current snapshot to the trace as one `metric` event per
/// metric (level Info, target `metrics`). No-op when tracing is disabled.
pub fn emit() {
    if !crate::enabled(Level::Info) {
        return;
    }
    let snap = snapshot();
    for (name, value) in &snap.counters {
        event!(Level::Info, target: "metrics", "counter",
            name = name.as_str(), value = *value);
    }
    for (name, bounds, buckets, count, sum) in &snap.histograms {
        let bounds_s = bounds
            .iter()
            .map(|b| format!("{b}"))
            .collect::<Vec<_>>()
            .join("|");
        let buckets_s = buckets
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("|");
        event!(Level::Info, target: "metrics", "histogram",
            name = name.as_str(), bounds = bounds_s, buckets = buckets_s,
            count = *count, sum = *sum);
    }
}

/// Removes every registered metric (tests).
pub fn reset() {
    registry()
        .counters
        .lock()
        .expect("metrics lock poisoned")
        .clear();
    registry()
        .histograms
        .lock()
        .expect("metrics lock poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let c1 = counter("test.metrics.shared");
        let c2 = counter("test.metrics.shared");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), c2.get());
        assert!(c1.get() >= 4);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("test.metrics.hist", &[1.0, 10.0]);
        let before = h.count();
        h.record(0.5);
        h.record(5.0);
        h.record(100.0);
        assert_eq!(h.count(), before + 3);
        let b = h.bucket_counts();
        assert_eq!(b.len(), 3);
        assert!(h.sum() >= 105.5);
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.metrics.snap").inc();
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "test.metrics.snap" && *v >= 1));
    }
}
