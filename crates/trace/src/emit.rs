//! Record construction: field values, JSON string building, event emission.

use crate::context::push_context;
use crate::span::{current_span_id, thread_ordinal};
use crate::{now_us, write_line, Level};

/// A structured field value.
///
/// Numbers are carried in their natural width; non-finite floats serialize
/// as `null` (JSON has no NaN/inf literals), matching the convention of the
/// workspace's experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(x: u64) -> Self {
        FieldValue::U64(x)
    }
}

impl From<usize> for FieldValue {
    fn from(x: usize) -> Self {
        FieldValue::U64(x as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(x: u32) -> Self {
        FieldValue::U64(u64::from(x))
    }
}

impl From<i64> for FieldValue {
    fn from(x: i64) -> Self {
        FieldValue::I64(x)
    }
}

impl From<i32> for FieldValue {
    fn from(x: i32) -> Self {
        FieldValue::I64(i64::from(x))
    }
}

impl From<f64> for FieldValue {
    fn from(x: f64) -> Self {
        FieldValue::F64(x)
    }
}

impl From<f32> for FieldValue {
    fn from(x: f32) -> Self {
        FieldValue::F64(f64::from(x))
    }
}

impl From<bool> for FieldValue {
    fn from(x: bool) -> Self {
        FieldValue::Bool(x)
    }
}

impl From<&str> for FieldValue {
    fn from(x: &str) -> Self {
        FieldValue::Str(x.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(x: String) -> Self {
        FieldValue::Str(x)
    }
}

impl From<&String> for FieldValue {
    fn from(x: &String) -> Self {
        FieldValue::Str(x.clone())
    }
}

/// Appends a JSON-escaped string (with surrounding quotes) to `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(x) => out.push_str(&x.to_string()),
        FieldValue::I64(x) => out.push_str(&x.to_string()),
        FieldValue::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

pub(crate) fn push_fields(out: &mut String, fields: &[(&str, FieldValue)]) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

/// Serializes and writes one event record. Prefer the [`crate::event!`]
/// macro, which guards the call (and field construction) behind
/// [`crate::enabled`].
pub fn emit_event(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    let mut line = String::with_capacity(96 + 24 * fields.len());
    line.push_str("{\"t\":\"event\",\"ts_us\":");
    line.push_str(&now_us().to_string());
    line.push_str(",\"lvl\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":");
    push_json_str(&mut line, target);
    line.push_str(",\"msg\":");
    push_json_str(&mut line, msg);
    line.push_str(",\"span\":");
    line.push_str(&current_span_id().to_string());
    line.push_str(",\"thread\":");
    line.push_str(&thread_ordinal().to_string());
    push_context(&mut line);
    push_fields(&mut line, fields);
    line.push('}');
    write_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-4i32), FieldValue::I64(-4));
        assert_eq!(FieldValue::from(0.5f32), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_owned()));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        push_field_value(&mut out, &FieldValue::F64(f64::NAN));
        assert_eq!(out, "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
