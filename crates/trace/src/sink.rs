//! Trace sinks: where JSONL lines go.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A destination for complete JSONL lines (no trailing newline included).
///
/// Implementations must be cheap to call concurrently; each `write_line`
/// receives one complete record so interleaving between threads never
/// splits a line.
pub trait TraceSink: Send + Sync {
    /// Writes one complete record line.
    fn write_line(&self, line: &str);
    /// Flushes buffered output (no-op for unbuffered sinks).
    fn flush(&self) {}
}

/// Writes each line to stderr (the default for `APF_TRACE` without a file).
#[derive(Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn write_line(&self, line: &str) {
        let stderr = std::io::stderr();
        let mut guard = stderr.lock();
        let _ = writeln!(guard, "{line}");
    }
}

/// Buffered JSONL file writer (`APF_TRACE_FILE`).
///
/// Lines are buffered; [`TraceSink::flush`] (or dropping the sink) pushes
/// them to disk. The epoch-based timestamps in the records are unaffected
/// by buffering.
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl std::fmt::Debug for FileSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSink").finish()
    }
}

impl FileSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<FileSink> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for FileSink {
    fn write_line(&self, line: &str) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = writeln!(w, "{line}");
        }
    }

    fn flush(&self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Collects lines in memory — the sink tests use.
///
/// Keep a clone of the `Arc<MemorySink>` you pass to
/// [`crate::init`] and read the lines back with [`MemorySink::lines`].
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A snapshot of all lines recorded so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Number of recorded lines.
    pub fn len(&self) -> usize {
        self.lines.lock().map(|l| l.len()).unwrap_or(0)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded lines.
    pub fn clear(&self) {
        if let Ok(mut l) = self.lines.lock() {
            l.clear();
        }
    }
}

impl TraceSink for MemorySink {
    fn write_line(&self, line: &str) {
        if let Ok(mut l) = self.lines.lock() {
            l.push(line.to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects() {
        let s = MemorySink::new();
        assert!(s.is_empty());
        s.write_line("a");
        s.write_line("b");
        assert_eq!(s.lines(), vec!["a", "b"]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn file_sink_writes_lines() {
        let path = std::env::temp_dir().join("apf_trace_sink_test.jsonl");
        {
            let s = FileSink::create(&path).unwrap();
            s.write_line("{\"x\":1}");
            s.write_line("{\"x\":2}");
            s.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"x\":1}\n{\"x\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
