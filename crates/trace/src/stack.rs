//! Live per-thread span-name stacks for the sampling profiler (`apf-prof`).
//!
//! When stack tracking is enabled ([`crate::set_stack_tracking`]), every
//! span entered via the [`crate::span!`] macro pushes its *name* onto a
//! per-thread stack of interned name ids and pops it on drop — even when the
//! span's level is disabled and nothing is recorded to the trace sink. A
//! background sampler (the `apf-prof` crate) periodically snapshots every
//! registered thread's stack and aggregates the snapshots into folded
//! flamegraph form.
//!
//! Design constraints, in order:
//!
//! * **The fully-disabled path costs one relaxed atomic load** (the shared
//!   gate in `lib.rs`) and touches nothing here.
//! * **Owner-writes, sampler-reads.** Each [`ThreadStack`] is written only
//!   by its owning thread (push/pop) and read concurrently by the sampler.
//!   Frames are written *before* the depth is published, so a sample never
//!   observes an uninitialized frame; a sample racing a push/pop may be one
//!   frame stale, which for a statistical profiler is fine.
//! * **No allocation after warm-up.** Interning a name allocates once per
//!   distinct name; registering a thread allocates once per thread. Pushes
//!   and pops after that are lock-free except the intern-table lookup.
//!
//! Names are interned to `u32` ids so the stack is a fixed array of atomics
//! and the allocation-profiler hook ([`current_name_id`]) can attribute an
//! allocation to the innermost open span without allocating itself.

use std::cell::{Cell, OnceCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum tracked stack depth per thread. Deeper nesting is still counted
/// (pushes/pops stay balanced) but frames beyond this depth are not sampled.
pub const MAX_DEPTH: usize = 32;

/// One thread's live span-name stack, readable by the sampler while the
/// owning thread pushes and pops.
pub struct ThreadStack {
    /// The owning thread's trace ordinal (same value as the `thread` field
    /// on its JSONL records).
    ordinal: u64,
    /// Set when the owning thread exited; dead stacks are skipped by the
    /// sampler and pruned from the registry on the next registration.
    dead: AtomicBool,
    /// Logical depth (may exceed [`MAX_DEPTH`]; only the first
    /// [`MAX_DEPTH`] frames are stored).
    depth: AtomicUsize,
    /// Interned name ids, root first.
    frames: [AtomicU32; MAX_DEPTH],
}

impl std::fmt::Debug for ThreadStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadStack")
            .field("ordinal", &self.ordinal)
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish()
    }
}

impl ThreadStack {
    fn new(ordinal: u64) -> ThreadStack {
        ThreadStack {
            ordinal,
            dead: AtomicBool::new(false),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// The owning thread's trace ordinal.
    pub fn ordinal(&self) -> u64 {
        self.ordinal
    }

    /// Owner-only: pushes `name_id` (frame first, then depth, so a
    /// concurrent sample never sees an unwritten frame).
    fn push(&self, name_id: u32) {
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_DEPTH {
            self.frames[d].store(name_id, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Release);
    }

    /// Owner-only: pops the top frame and returns the new top's name id
    /// (0 when the stack is empty or truncated).
    fn pop(&self) -> u32 {
        let d = self.depth.load(Ordering::Relaxed);
        if d == 0 {
            return 0;
        }
        let nd = d - 1;
        self.depth.store(nd, Ordering::Release);
        if nd == 0 || nd > MAX_DEPTH {
            0
        } else {
            self.frames[nd - 1].load(Ordering::Relaxed)
        }
    }

    /// Copies the current stack (root first) into `out`; returns `false`
    /// (leaving `out` empty) when the stack is empty or the thread is gone.
    ///
    /// Racing a push/pop on the owner thread yields a stack that is at most
    /// one frame stale — acceptable for sampling.
    pub fn sample(&self, out: &mut Vec<u32>) -> bool {
        out.clear();
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let d = self.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if d == 0 {
            return false;
        }
        for frame in &self.frames[..d] {
            out.push(frame.load(Ordering::Relaxed));
        }
        true
    }
}

/// Interned span names: id 0 is reserved for "no span"; real ids start at 1.
#[derive(Default)]
struct Interner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::default()))
}

/// Interns `name`, returning its stable process-wide id (>= 1).
pub fn intern_name(name: &'static str) -> u32 {
    let mut guard = interner().lock().expect("name interner poisoned");
    if let Some(&id) = guard.ids.get(name) {
        return id;
    }
    guard.names.push(name);
    let id = guard.names.len() as u32;
    guard.ids.insert(name, id);
    id
}

/// The name behind an interned id (`None` for 0 or unknown ids).
pub fn name_of(id: u32) -> Option<&'static str> {
    if id == 0 {
        return None;
    }
    let guard = interner().lock().expect("name interner poisoned");
    guard.names.get(id as usize - 1).copied()
}

/// All interned names so far, indexable as `names[id - 1]`.
pub fn interned_names() -> Vec<&'static str> {
    interner()
        .lock()
        .expect("name interner poisoned")
        .names
        .clone()
}

/// Every live registered thread stack (dead threads filtered out). The
/// sampler calls this each pass; registration order is stable.
pub fn stacks() -> Vec<Arc<ThreadStack>> {
    REGISTRY
        .lock()
        .map(|reg| {
            reg.iter()
                .filter(|s| !s.dead.load(Ordering::Relaxed))
                .cloned()
                .collect()
        })
        .unwrap_or_default()
}

static REGISTRY: Mutex<Vec<Arc<ThreadStack>>> = Mutex::new(Vec::new());

fn register(ordinal: u64) -> Arc<ThreadStack> {
    let stack = Arc::new(ThreadStack::new(ordinal));
    if let Ok(mut reg) = REGISTRY.lock() {
        // Prune stacks of exited threads so long-lived processes spawning
        // short-lived threads don't grow the registry without bound.
        reg.retain(|s| !s.dead.load(Ordering::Relaxed));
        reg.push(Arc::clone(&stack));
    }
    stack
}

/// Drops the TLS handle on thread exit: marks the shared stack dead so the
/// sampler skips it and the registry prunes it.
struct LocalStack(Arc<ThreadStack>);

impl Drop for LocalStack {
    fn drop(&mut self) {
        self.0.depth.store(0, Ordering::Release);
        self.0.dead.store(true, Ordering::Relaxed);
    }
}

thread_local! {
    /// This thread's registered stack (registered lazily on first push).
    static LOCAL: OnceCell<LocalStack> = const { OnceCell::new() };
    /// Innermost open span's name id, mirrored out of the stack so the
    /// allocation-profiler hook can read it with a plain `Cell` access
    /// (no destructor, no allocation — safe inside a global allocator).
    static TOP_NAME: Cell<u32> = const { Cell::new(0) };
}

/// Pushes `name` onto the calling thread's stack, registering the thread on
/// first use. Returns whether a frame was actually pushed (the span guard
/// pops only if so); `false` only during thread teardown.
pub(crate) fn push_frame(name: &'static str) -> bool {
    let id = intern_name(name);
    let pushed = LOCAL
        .try_with(|cell| {
            let local = cell.get_or_init(|| LocalStack(register(crate::span::thread_ordinal())));
            local.0.push(id);
        })
        .is_ok();
    if pushed {
        let _ = TOP_NAME.try_with(|t| t.set(id));
    }
    pushed
}

/// Pops the calling thread's top frame (paired with [`push_frame`]).
pub(crate) fn pop_frame() {
    let _ = LOCAL.try_with(|cell| {
        if let Some(local) = cell.get() {
            let top = local.0.pop();
            let _ = TOP_NAME.try_with(|t| t.set(top));
        }
    });
}

/// The innermost open span's interned name id on the calling thread
/// (0 = none). Allocation-free and panic-free: callable from inside a
/// global allocator.
pub fn current_name_id() -> u32 {
    TOP_NAME.try_with(Cell::get).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_resolvable() {
        let a = intern_name("stack.test.alpha");
        let b = intern_name("stack.test.beta");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(intern_name("stack.test.alpha"), a);
        assert_eq!(name_of(a), Some("stack.test.alpha"));
        assert_eq!(name_of(0), None);
        assert!(interned_names().contains(&"stack.test.alpha"));
    }

    #[test]
    fn push_pop_and_sample() {
        let st = ThreadStack::new(42);
        assert_eq!(st.ordinal(), 42);
        let mut out = Vec::new();
        assert!(!st.sample(&mut out));
        st.push(7);
        st.push(9);
        assert!(st.sample(&mut out));
        assert_eq!(out, vec![7, 9]);
        assert_eq!(st.pop(), 7);
        assert!(st.sample(&mut out));
        assert_eq!(out, vec![7]);
        assert_eq!(st.pop(), 0);
        assert!(!st.sample(&mut out));
        // Underflow is a no-op.
        assert_eq!(st.pop(), 0);
    }

    #[test]
    fn deep_stacks_stay_balanced_past_max_depth() {
        let st = ThreadStack::new(1);
        for i in 0..(MAX_DEPTH as u32 + 8) {
            st.push(i + 1);
        }
        let mut out = Vec::new();
        assert!(st.sample(&mut out));
        assert_eq!(out.len(), MAX_DEPTH);
        assert_eq!(out[0], 1);
        for _ in 0..8 {
            st.pop();
        }
        assert!(st.sample(&mut out));
        assert_eq!(out.len(), MAX_DEPTH);
        // Back below the cap, the top is resolvable again.
        for _ in 0..MAX_DEPTH - 1 {
            st.pop();
        }
        assert!(st.sample(&mut out));
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn thread_frames_register_and_unregister() {
        crate::set_stack_tracking(true);
        let id = intern_name("stack.test.worker");
        let handle = std::thread::spawn(move || {
            assert!(push_frame("stack.test.worker"));
            assert_eq!(current_name_id(), id);
            // Our stack must now be visible to the sampler.
            let mut out = Vec::new();
            let seen = stacks()
                .iter()
                .any(|s| s.sample(&mut out) && out.contains(&id));
            pop_frame();
            assert_eq!(current_name_id(), 0);
            seen
        });
        assert!(handle.join().expect("worker panicked"));
        crate::set_stack_tracking(false);
        // After thread exit, a fresh registration prunes the dead stack.
        let before = stacks().len();
        let _ = before; // pruning is best-effort; just ensure no panic
    }
}
