//! Cross-process trace contexts: who is emitting, and for which run.
//!
//! A distributed APF run produces one JSONL trace per process (one server,
//! N clients). To merge them into a single logical trace, every record
//! carries a [`TraceContext`]: the run id (minted by the server), the
//! emitter's role (`server` / `client:<k>`), its OS pid, and optionally a
//! *link* — the peer span id the surrounding work hangs under, carried
//! across the wire so e.g. a server's per-round reduce span can point back
//! at the client round span whose Push it consumed.
//!
//! Contexts are resolved per record: the emitting thread's context if one
//! was set ([`set_thread_context`]), else the process-wide fallback
//! ([`set_process_context`]), else nothing is stamped. Resolution only
//! happens on the *enabled* path — with tracing off, instrumented code
//! never reads a context and never allocates.
//!
//! The 25-byte wire form ([`TraceContext::to_wire`]) is what `apf-net`
//! embeds in its `Join`/`Welcome`/`Push`/`Pull` frames.

use std::cell::Cell;
use std::sync::Mutex;

use crate::emit::push_json_str;
use crate::{now_us, write_line, Level};

/// Which side of a distributed run a trace record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// No role assigned (single-process runs, unconfigured processes).
    Unset,
    /// The parameter server.
    Server,
    /// Edge client holding the given slot.
    Client(u32),
}

impl Role {
    /// The stable string form used in JSONL stamps (`"server"`,
    /// `"client:3"`; empty for [`Role::Unset`]).
    pub fn render(&self) -> String {
        match self {
            Role::Unset => String::new(),
            Role::Server => "server".to_owned(),
            Role::Client(k) => format!("client:{k}"),
        }
    }

    /// Parses the string form back (the merger in `trace-report` uses this).
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "" => Some(Role::Unset),
            "server" => Some(Role::Server),
            _ => {
                let k = s.strip_prefix("client:")?.parse().ok()?;
                Some(Role::Client(k))
            }
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Role::Unset => 0,
            Role::Server => 1,
            Role::Client(_) => 2,
        }
    }

    fn id(&self) -> u32 {
        match self {
            Role::Client(k) => *k,
            _ => 0,
        }
    }
}

/// The identity stamped on every trace record of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Run identifier minted by the server (0 = no context).
    pub run_id: u64,
    /// OS process id of the emitter.
    pub pid: u32,
    /// The emitter's role in the run.
    pub role: Role,
    /// A peer span id this context's work logically hangs under
    /// (0 = none). On the wire this is the *sender's* innermost span.
    pub link_span: u64,
}

impl TraceContext {
    /// The empty context: nothing is stamped, nothing crosses the wire.
    pub const NONE: TraceContext = TraceContext {
        run_id: 0,
        pid: 0,
        role: Role::Unset,
        link_span: 0,
    };

    /// Size of the fixed wire encoding in bytes.
    pub const WIRE_LEN: usize = 25;

    /// Builds a context for this process with the given run id and role.
    pub fn new(run_id: u64, role: Role) -> TraceContext {
        TraceContext {
            run_id,
            pid: std::process::id(),
            role,
            link_span: 0,
        }
    }

    /// Whether any identity is present.
    pub fn is_set(&self) -> bool {
        self.run_id != 0 || self.pid != 0 || self.role != Role::Unset
    }

    /// This context with `link_span` replaced — the form sent on the wire,
    /// pointing at the span enclosing the send.
    pub fn with_link(mut self, link_span: u64) -> TraceContext {
        self.link_span = link_span;
        self
    }

    /// The fixed 25-byte wire encoding: `run_id` (8 LE) + `pid` (4 LE) +
    /// `link_span` (8 LE) + role tag (1) + role id (4 LE).
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.run_id.to_le_bytes());
        out[8..12].copy_from_slice(&self.pid.to_le_bytes());
        out[12..20].copy_from_slice(&self.link_span.to_le_bytes());
        out[20] = self.role.tag();
        out[21..25].copy_from_slice(&self.role.id().to_le_bytes());
        out
    }

    /// Decodes the wire form; `None` for a wrong length or unknown role tag
    /// (the caller turns that into its typed corrupt-frame error).
    pub fn from_wire(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let u64_at = |i: usize| {
            u64::from_le_bytes([
                bytes[i],
                bytes[i + 1],
                bytes[i + 2],
                bytes[i + 3],
                bytes[i + 4],
                bytes[i + 5],
                bytes[i + 6],
                bytes[i + 7],
            ])
        };
        let u32_at =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let role = match bytes[20] {
            0 => Role::Unset,
            1 => Role::Server,
            2 => Role::Client(u32_at(21)),
            _ => return None,
        };
        Some(TraceContext {
            run_id: u64_at(0),
            pid: u32_at(8),
            role,
            link_span: u64_at(12),
        })
    }
}

/// Process-wide fallback context (threads without their own context —
/// e.g. `apf-par` pool workers — inherit this).
static PROCESS_CTX: Mutex<TraceContext> = Mutex::new(TraceContext::NONE);

thread_local! {
    /// This thread's context; [`TraceContext::NONE`] defers to the process
    /// fallback.
    static THREAD_CTX: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

/// Sets the process-wide fallback context.
pub fn set_process_context(ctx: TraceContext) {
    if let Ok(mut guard) = PROCESS_CTX.lock() {
        *guard = ctx;
    }
}

/// Sets the calling thread's context (wins over the process fallback).
/// In-process multi-role harnesses (server + client threads in one test)
/// use this to keep roles apart in a shared sink.
pub fn set_thread_context(ctx: TraceContext) {
    THREAD_CTX.with(|c| c.set(ctx));
}

/// Clears the calling thread's context, falling back to the process one.
pub fn clear_thread_context() {
    THREAD_CTX.with(|c| c.set(TraceContext::NONE));
}

/// The context that would be stamped on a record emitted by this thread
/// right now. Cheap (TLS read; one mutex lock only when falling back), but
/// still only called from the enabled path.
pub fn current_context() -> TraceContext {
    let tls = THREAD_CTX.with(Cell::get);
    if tls.is_set() {
        return tls;
    }
    PROCESS_CTX.lock().map(|g| *g).unwrap_or(TraceContext::NONE)
}

/// Appends the context stamp (`,"run":"...","role":"...","pid":N[,"link":N]`)
/// to a record under construction. No-op when no context is set.
pub(crate) fn push_context(out: &mut String) {
    let ctx = current_context();
    if !ctx.is_set() {
        return;
    }
    out.push_str(",\"run\":\"");
    out.push_str(&format!("{:016x}", ctx.run_id));
    out.push_str("\",\"role\":");
    push_json_str(out, &ctx.role.render());
    out.push_str(",\"pid\":");
    out.push_str(&ctx.pid.to_string());
    if ctx.link_span != 0 {
        out.push_str(",\"link\":");
        out.push_str(&ctx.link_span.to_string());
    }
}

/// Emits the trace-file header record: `{"t":"header",...}` with the
/// current context plus the run's canonical spec string, making a merged
/// multi-file trace self-describing. Gated on `Level::Info`; call it as
/// soon as role and spec are known (for a client, right after the Welcome
/// frame delivers them).
pub fn emit_header(spec: &str) {
    if !crate::enabled(Level::Info) {
        return;
    }
    let ctx = current_context();
    let mut line = String::with_capacity(96 + spec.len());
    line.push_str("{\"t\":\"header\",\"ts_us\":");
    line.push_str(&now_us().to_string());
    line.push_str(",\"run\":\"");
    line.push_str(&format!("{:016x}", ctx.run_id));
    line.push_str("\",\"role\":");
    push_json_str(&mut line, &ctx.role.render());
    line.push_str(",\"pid\":");
    line.push_str(&ctx.pid.to_string());
    line.push_str(",\"spec\":");
    push_json_str(&mut line, spec);
    line.push('}');
    write_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_render_and_parse() {
        for role in [Role::Unset, Role::Server, Role::Client(0), Role::Client(7)] {
            assert_eq!(Role::parse(&role.render()), Some(role));
        }
        assert_eq!(Role::parse("client:x"), None);
        assert_eq!(Role::parse("peer"), None);
    }

    #[test]
    fn context_wire_roundtrip() {
        let ctx = TraceContext {
            run_id: 0xdead_beef_0123_4567,
            pid: 4242,
            role: Role::Client(3),
            link_span: 99,
        };
        let wire = ctx.to_wire();
        assert_eq!(wire.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::from_wire(&wire), Some(ctx));
        assert_eq!(TraceContext::from_wire(&wire[..24]), None);
        let mut bad = wire;
        bad[20] = 9;
        assert_eq!(TraceContext::from_wire(&bad), None);
    }

    #[test]
    fn none_context_is_not_set_and_roundtrips() {
        assert!(!TraceContext::NONE.is_set());
        let wire = TraceContext::NONE.to_wire();
        assert_eq!(TraceContext::from_wire(&wire), Some(TraceContext::NONE));
    }

    #[test]
    fn thread_context_wins_over_process() {
        let proc_ctx = TraceContext::new(11, Role::Server);
        set_process_context(proc_ctx);
        assert_eq!(current_context().run_id, 11);
        let thr_ctx = TraceContext::new(22, Role::Client(1));
        set_thread_context(thr_ctx);
        assert_eq!(current_context().run_id, 22);
        clear_thread_context();
        assert_eq!(current_context().run_id, 11);
        set_process_context(TraceContext::NONE);
    }

    #[test]
    fn with_link_replaces_only_the_link() {
        let ctx = TraceContext::new(5, Role::Server).with_link(77);
        assert_eq!(ctx.link_span, 77);
        assert_eq!(ctx.run_id, 5);
        assert_eq!(ctx.role, Role::Server);
    }
}
