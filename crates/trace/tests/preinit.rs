//! Pre-init buffering: records emitted while a level is enabled but no sink
//! is installed yet must reach the first installed sink, in order, ahead of
//! records emitted after installation.
//!
//! Own test binary: the trace level and sink are process-global, and this
//! test deliberately passes through the "enabled, sinkless" state that other
//! test binaries never enter. The scenarios share one `#[test]` so they
//! cannot interleave.

use std::sync::Arc;

use apf_trace::{event, Level, MemorySink};

#[test]
fn preinit_records_flush_into_first_sink_in_order() {
    // Phase 1: level enabled, no sink — records must be buffered, not lost.
    apf_trace::set_level(Some(Level::Info));
    event!(Level::Info, target: "preinit", "early", seq = 1u64);
    event!(Level::Info, target: "preinit", "early", seq = 2u64);

    let sink = Arc::new(MemorySink::new());
    apf_trace::init(Level::Info, Arc::clone(&sink) as Arc<_>);
    event!(Level::Info, target: "preinit", "late", seq = 3u64);

    let lines = sink.lines();
    let seqs: Vec<&str> = lines
        .iter()
        .filter(|l| l.contains("\"target\":\"preinit\""))
        .map(|l| {
            if l.contains("\"seq\":1") {
                "early1"
            } else if l.contains("\"seq\":2") {
                "early2"
            } else {
                "late"
            }
        })
        .collect();
    assert_eq!(
        seqs,
        vec!["early1", "early2", "late"],
        "buffered records must precede post-install records: {lines:#?}"
    );

    // Phase 2: the buffer is bounded. Remove the sink state by shutting
    // down, re-enable without a sink, overflow the buffer, and check that a
    // fresh sink receives at most the cap plus one overflow notice.
    apf_trace::shutdown();
    apf_trace::set_level(Some(Level::Info));
    for i in 0..5000u64 {
        event!(Level::Info, target: "preinit.flood", "tick", i = i);
    }
    let sink2 = Arc::new(MemorySink::new());
    apf_trace::set_sink(Arc::clone(&sink2) as Arc<_>);
    let lines2 = sink2.lines();
    let flood = lines2
        .iter()
        .filter(|l| l.contains("\"target\":\"preinit.flood\""))
        .count();
    assert!(
        flood <= 4096,
        "pre-init buffer must be bounded (kept {flood} records)"
    );
    assert!(flood >= 4000, "bounded buffer dropped too much: {flood}");
    assert!(
        lines2.iter().any(|l| l.contains("preinit_overflow")),
        "overflow must be reported: {:?}",
        lines2.last()
    );

    apf_trace::shutdown();
}
