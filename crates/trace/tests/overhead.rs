//! Disabled-tracing overhead guarantees.
//!
//! The facade promises that when no level is enabled, `event!` and `span!`
//! cost a single relaxed atomic load and never touch the allocator. This
//! binary installs a counting global allocator to prove it (own test binary:
//! both the allocator and the trace level are process-global).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use apf_trace::{event, span, Level};

// Allocations are counted per thread so the libtest harness's own activity on
// other threads (output capture, bookkeeping) cannot pollute the measurement.
// Const-initialized `thread_local!` never allocates, so reading it from
// inside the allocator is safe; `try_with` covers thread teardown.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// A hot loop mixing events (with string and float fields) and spans, as the
/// instrumented library code does.
fn traced_workload(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        event!(Level::Debug, target: "overhead", "tick",
            i = i, name = "layer-name", ratio = 0.25f32);
        let _s = span!(Level::Debug, target: "overhead", "step", i = i);
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    acc
}

#[test]
fn disabled_hot_path_does_not_allocate_and_is_cheap() {
    // Tracing starts disabled (no init in this process). Warm up once so any
    // lazy runtime setup is excluded from the measurement.
    std::hint::black_box(traced_workload(10));

    let before = allocs();
    std::hint::black_box(traced_workload(100_000));
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "disabled event!/span! must not allocate (got {} allocations)",
        after - before
    );

    // Lenient wall-clock bound: 200k disabled event!+span! pairs in well
    // under a second even on a loaded CI machine. The real guarantee is the
    // single relaxed load; this is a smoke check against accidental
    // formatting or locking sneaking onto the disabled path.
    let start = Instant::now();
    std::hint::black_box(traced_workload(200_000));
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 900,
        "disabled tracing too slow: {elapsed:?} for 200k iterations"
    );
}
