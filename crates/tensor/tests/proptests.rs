//! Property-based tests for the tensor substrate.

use apf_tensor::{
    col2im, im2col, l2_norm, percentile, ConvSpec, PoolSpec, Tensor,
};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |v| Tensor::from_vec(v, &[m, n]))
    })
}

proptest! {
    #[test]
    fn matmul_identity_left(a in small_matrix(8)) {
        let i = Tensor::eye(a.shape()[0]);
        let out = i.matmul(&a);
        for (x, y) in out.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(6),
        seed in 0u64..1000,
    ) {
        // (B + C) built from `a`'s shape; A x (B + C) == A x B + A x C.
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = 1 + (seed as usize % 5);
        let mk = |salt: u64| {
            let data: Vec<f32> = (0..k * n)
                .map(|i| ((apf_tensor::splitmix64(seed ^ salt ^ i as u64) % 1000) as f32 / 100.0) - 5.0)
                .collect();
            Tensor::from_vec(data, &[k, n])
        };
        let b = mk(0xB);
        let c = mk(0xC);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        let _ = m;
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_variants_agree(a in small_matrix(7), rows in 1usize..6, seed in 0u64..1000) {
        // matmul_nt(a, b) equals a x b^T, and matmul_tn(a, c) equals a^T x c.
        let k = a.shape()[1];
        let b = Tensor::from_vec(
            (0..rows * k)
                .map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 400) as f32 / 100.0) - 2.0)
                .collect(),
            &[rows, k],
        );
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose2());
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let m = a.shape()[0];
        let c = Tensor::from_vec(
            (0..m * rows)
                .map(|i| ((apf_tensor::splitmix64(seed ^ (i as u64 + 999)) % 400) as f32 / 100.0) - 2.0)
                .collect(),
            &[m, rows],
        );
        let via_tn = a.matmul_tn(&c);
        let via_t2 = a.transpose2().matmul(&c);
        for (x, y) in via_tn.data().iter().zip(via_t2.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3,
        hw in 3usize..7,
        k in 1usize..4,
        pad in 0usize..2,
        seed in 0u64..100,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let spec = ConvSpec { in_channels: c, out_channels: 1, kernel: k, stride: 1, padding: pad };
        let n = 2;
        let numel = n * c * hw * hw;
        let x = Tensor::from_vec(
            (0..numel).map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 200) as f32 / 100.0) - 1.0).collect(),
            &[n, c, hw, hw],
        );
        let cols = im2col(&x, &spec);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((apf_tensor::splitmix64(seed ^ (i as u64 + 7777)) % 200) as f32 / 100.0) - 1.0).collect(),
            cols.shape(),
        );
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let back = col2im(&y, &spec, n, hw, hw);
        let rhs: f64 = x.data().iter().zip(back.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    #[test]
    fn maxpool_output_bounded_by_input(
        hw in 2usize..8,
        seed in 0u64..100,
    ) {
        let n = 1;
        let c = 2;
        let numel = n * c * hw * hw;
        let x = Tensor::from_vec(
            (0..numel).map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 2000) as f32 / 100.0) - 10.0).collect(),
            &[n, c, hw, hw],
        );
        let spec = PoolSpec { kernel: 2.min(hw), stride: 2.min(hw) };
        let (out, arg) = apf_tensor::maxpool2d_forward(&x, &spec);
        let max_in = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &o in out.data() {
            prop_assert!(o <= max_in + 1e-6);
        }
        // argmax points at elements equal to the outputs.
        for (&idx, &o) in arg.iter().zip(out.data()) {
            prop_assert!((x.data()[idx] - o).abs() < 1e-6);
        }
    }

    #[test]
    fn percentile_monotone(mut xs in proptest::collection::vec(-100.0f32..100.0, 1..50), p1 in 0.0f32..100.0, p2 in 0.0f32..100.0) {
        xs.iter_mut().for_each(|x| *x = x.round());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-6);
    }

    #[test]
    fn l2_norm_triangle_inequality(
        a in proptest::collection::vec(-10.0f32..10.0, 1..32),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(l2_norm(&sum) <= l2_norm(&a) + l2_norm(&b) + 1e-4);
    }
}
