//! Property-based tests for the tensor substrate (on `apf-testkit`).

use apf_tensor::{col2im, im2col, l2_norm, percentile, ConvSpec, PoolSpec, Tensor};
use apf_testkit::{f32s, prop_assert, prop_assume, property, u64s, usizes, vecs};

/// A deterministic `[m, n]` matrix with entries in `[-10, 10)`.
fn matrix(m: usize, n: usize, seed: u64) -> Tensor {
    let mut rng = apf_tensor::seeded_rng(seed);
    Tensor::from_vec(
        (0..m * n).map(|_| rng.gen_range(-10.0f32..10.0)).collect(),
        &[m, n],
    )
}

property! {
    fn matmul_identity_left(m in usizes(1..9), n in usizes(1..9), seed in u64s(0..1000)) {
        let a = matrix(m, n, seed);
        let i = Tensor::eye(a.shape()[0]);
        let out = i.matmul(&a);
        for (x, y) in out.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    fn matmul_distributes_over_addition(
        m in usizes(1..7),
        k in usizes(1..7),
        seed in u64s(0..1000),
    ) {
        // (B + C) built from `a`'s shape; A x (B + C) == A x B + A x C.
        let a = matrix(m, k, seed);
        let n = 1 + (seed as usize % 5);
        let mk = |salt: u64| {
            let data: Vec<f32> = (0..k * n)
                .map(|i| ((apf_tensor::splitmix64(seed ^ salt ^ i as u64) % 1000) as f32 / 100.0) - 5.0)
                .collect();
            Tensor::from_vec(data, &[k, n])
        };
        let b = mk(0xB);
        let c = mk(0xC);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    fn transpose_variants_agree(
        m in usizes(1..8),
        k in usizes(1..8),
        rows in usizes(1..6),
        seed in u64s(0..1000),
    ) {
        // matmul_nt(a, b) equals a x b^T, and matmul_tn(a, c) equals a^T x c.
        let a = matrix(m, k, seed);
        let b = Tensor::from_vec(
            (0..rows * k)
                .map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 400) as f32 / 100.0) - 2.0)
                .collect(),
            &[rows, k],
        );
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose2());
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let c = Tensor::from_vec(
            (0..m * rows)
                .map(|i| ((apf_tensor::splitmix64(seed ^ (i as u64 + 999)) % 400) as f32 / 100.0) - 2.0)
                .collect(),
            &[m, rows],
        );
        let via_tn = a.matmul_tn(&c);
        let via_t2 = a.transpose2().matmul(&c);
        for (x, y) in via_tn.data().iter().zip(via_t2.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    fn im2col_col2im_adjoint(
        c in usizes(1..3),
        hw in usizes(3..7),
        k in usizes(1..4),
        pad in usizes(0..2),
        seed in u64s(0..100),
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let spec = ConvSpec { in_channels: c, out_channels: 1, kernel: k, stride: 1, padding: pad };
        let n = 2;
        let numel = n * c * hw * hw;
        let x = Tensor::from_vec(
            (0..numel).map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 200) as f32 / 100.0) - 1.0).collect(),
            &[n, c, hw, hw],
        );
        let cols = im2col(&x, &spec);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((apf_tensor::splitmix64(seed ^ (i as u64 + 7777)) % 200) as f32 / 100.0) - 1.0).collect(),
            cols.shape(),
        );
        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let back = col2im(&y, &spec, n, hw, hw);
        let rhs: f64 = x.data().iter().zip(back.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    fn maxpool_output_bounded_by_input(
        hw in usizes(2..8),
        seed in u64s(0..100),
    ) {
        let n = 1;
        let c = 2;
        let numel = n * c * hw * hw;
        let x = Tensor::from_vec(
            (0..numel).map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 2000) as f32 / 100.0) - 10.0).collect(),
            &[n, c, hw, hw],
        );
        let spec = PoolSpec { kernel: 2.min(hw), stride: 2.min(hw) };
        let (out, arg) = apf_tensor::maxpool2d_forward(&x, &spec);
        let max_in = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for &o in out.data() {
            prop_assert!(o <= max_in + 1e-6);
        }
        // argmax points at elements equal to the outputs.
        for (&idx, &o) in arg.iter().zip(out.data()) {
            prop_assert!((x.data()[idx] - o).abs() < 1e-6);
        }
    }

    fn percentile_monotone(
        xs in vecs(f32s(-100.0..100.0), 1..50),
        p1 in f32s(0.0..100.0),
        p2 in f32s(0.0..100.0),
    ) {
        let mut xs = xs;
        xs.iter_mut().for_each(|x| *x = x.round());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-6);
    }

    fn l2_norm_triangle_inequality(
        a in vecs(f32s(-10.0..10.0), 1..32),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 - 1.0).collect();
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert!(l2_norm(&sum) <= l2_norm(&a) + l2_norm(&b) + 1e-4);
    }

    // -- Parallel determinism: pool results must be bitwise identical to
    // -- serial at any thread count, for random shapes.

    fn parallel_matmul_bitwise_matches_serial(
        m in usizes(1..80),
        k in usizes(1..40),
        n in usizes(1..80),
        seed in u64s(0..1000),
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xB);
        let bt = b.transpose2();
        let serial = apf_par::with_threads(1, || {
            (a.matmul(&b), a.matmul_nt(&bt), a.transpose2().matmul_tn(&b))
        });
        for t in [2usize, 7] {
            let par = apf_par::with_threads(t, || {
                (a.matmul(&b), a.matmul_nt(&bt), a.transpose2().matmul_tn(&b))
            });
            prop_assert!(serial.0 == par.0, "matmul differs at threads={t}");
            prop_assert!(serial.1 == par.1, "matmul_nt differs at threads={t}");
            prop_assert!(serial.2 == par.2, "matmul_tn differs at threads={t}");
        }
    }

    fn parallel_conv2d_bitwise_matches_serial(
        c in usizes(1..4),
        o in usizes(1..4),
        hw in usizes(3..10),
        seed in u64s(0..200),
    ) {
        let spec = ConvSpec { in_channels: c, out_channels: o, kernel: 3, stride: 1, padding: 1 };
        let n = 2;
        let input = Tensor::from_vec(
            (0..n * c * hw * hw)
                .map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 200) as f32 / 100.0) - 1.0)
                .collect(),
            &[n, c, hw, hw],
        );
        let weight = matrix(o, c * 9, seed ^ 0x17);
        let bias = matrix(1, o, seed ^ 0x29).reshape(&[o]);
        let run = || {
            let (out, cols) = apf_tensor::conv2d_forward(&input, &weight, &bias, &spec);
            let grad_out = out.map(|x| x * 0.5);
            let grads = apf_tensor::conv2d_backward(&grad_out, &cols, &weight, &spec, (hw, hw));
            (out, grads.input, grads.weight, grads.bias)
        };
        let serial = apf_par::with_threads(1, run);
        for t in [2usize, 7] {
            let par = apf_par::with_threads(t, run);
            prop_assert!(serial.0 == par.0, "forward differs at threads={t}");
            prop_assert!(serial.1 == par.1, "grad input differs at threads={t}");
            prop_assert!(serial.2 == par.2, "grad weight differs at threads={t}");
            prop_assert!(serial.3 == par.3, "grad bias differs at threads={t}");
        }
    }

    // -- Packed GEMM vs the naive reference kernels: bitwise, on random
    // -- shapes (including K=0 and M=1 edges), at several thread counts.

    fn packed_gemm_bitwise_matches_reference(
        m in usizes(1..100),
        k in usizes(0..60),
        n in usizes(1..100),
        seed in u64s(0..1000),
    ) {
        // The drawn shape plus forced edge cases: M=1 and K=0.
        for (m, k, n) in [(m, k, n), (1, k.max(1), n), (m, 0, n)] {
            let a = matrix(m, k, seed);
            let b = matrix(k, n, seed ^ 0xB);
            let bt = b.transpose2();
            let at = a.transpose2();
            let want = (
                a.matmul_reference(&b),
                a.matmul_nt_reference(&bt),
                at.matmul_tn_reference(&b),
            );
            for t in [1usize, 2, 7] {
                let got = apf_par::with_threads(t, || {
                    (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b))
                });
                for (which, (g, w)) in [
                    ("matmul", (&got.0, &want.0)),
                    ("matmul_nt", (&got.1, &want.1)),
                    ("matmul_tn", (&got.2, &want.2)),
                ] {
                    for (gv, wv) in g.data().iter().zip(w.data()) {
                        prop_assert!(
                            gv.to_bits() == wv.to_bits(),
                            "{which} {m}x{k}x{n} threads={t}: {gv} vs {wv}"
                        );
                    }
                }
            }
        }
    }

    fn fused_conv_bitwise_matches_unfused(
        c in usizes(1..4),
        o in usizes(1..5),
        hw in usizes(4..10),
        seed in u64s(0..200),
    ) {
        let spec = ConvSpec { in_channels: c, out_channels: o, kernel: 3, stride: 1, padding: 1 };
        let n = 2;
        let input = Tensor::from_vec(
            (0..n * c * hw * hw)
                .map(|i| ((apf_tensor::splitmix64(seed ^ i as u64) % 200) as f32 / 100.0) - 1.0)
                .collect(),
            &[n, c, hw, hw],
        );
        let weight = matrix(o, c * 9, seed ^ 0x17);
        let bias = matrix(1, o, seed ^ 0x29).reshape(&[o]);
        let (want_out, cols) = apf_tensor::conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = want_out.map(|x| x * 0.25);
        let want = apf_tensor::conv2d_backward(&grad_out, &cols, &weight, &spec, (hw, hw));
        for t in [1usize, 2, 7] {
            let (out, grads) = apf_par::with_threads(t, || {
                (
                    apf_tensor::conv2d_forward_fused(&input, &weight, &bias, &spec),
                    apf_tensor::conv2d_backward_fused(&grad_out, &input, &weight, &spec),
                )
            });
            prop_assert!(out == want_out, "fused forward differs at threads={t}");
            prop_assert!(grads.input == want.input, "fused grad input differs at threads={t}");
            prop_assert!(grads.weight == want.weight, "fused grad weight differs at threads={t}");
            prop_assert!(grads.bias == want.bias, "fused grad bias differs at threads={t}");
        }
    }

    fn parallel_reduce_bitwise_matches_serial(
        len in usizes(1..100_000),
        seed in u64s(0..1000),
    ) {
        let x = matrix(1, len, seed).reshape(&[len]);
        let serial = apf_par::with_threads(1, || (x.sum().to_bits(), x.norm_sq().to_bits()));
        for t in [2usize, 7] {
            let par = apf_par::with_threads(t, || (x.sum().to_bits(), x.norm_sq().to_bits()));
            prop_assert!(serial == par, "reduction differs at threads={t}");
        }
    }
}
