//! Property tests for the bit-packed freeze-mask kernels in `masked.rs`.
//!
//! Each kernel is checked bitwise (`f32::to_bits`) against a naive
//! per-scalar reference over randomly generated masks. Masks are built
//! word-by-word from a class generator so the word-level special cases the
//! driver optimizes — all-frozen words (skipped with one compare),
//! all-unfrozen words (one whole-word run), and mixed words (bit-run
//! decomposition) — all appear in every run, including a ragged tail word.

use apf_testkit::{prop_assert, prop_assert_eq, property, u64s, u8s, usizes, vecs};

/// Packs a dense `frozen` vector into `FreezeMask`-layout words: bit
/// `j % 64` of word `j / 64` set = scalar `j` frozen, tail bits zero.
fn pack(frozen: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; frozen.len().div_ceil(64)];
    for (j, &f) in frozen.iter().enumerate() {
        if f {
            words[j / 64] |= 1u64 << (j % 64);
        }
    }
    words
}

/// Expands per-word classes into a dense frozen vector of
/// `(classes.len() - 1) * 64 + tail` scalars. Classes: 0 = all frozen,
/// 1 = all unfrozen, 2 = alternating bits, 3 = seeded pseudo-random.
fn mask_from_classes(classes: &[u8], tail: usize, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    let mut frozen = Vec::with_capacity(classes.len() * 64);
    for (w, &class) in classes.iter().enumerate() {
        let nbits = if w + 1 == classes.len() { tail } else { 64 };
        for j in 0..nbits {
            frozen.push(match class {
                0 => true,
                1 => false,
                2 => j % 2 == 0,
                _ => {
                    // xorshift64*: cheap, deterministic, well mixed.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state.wrapping_mul(0x2545_f491_4f6c_dd1d) & (1 << 63) != 0
                }
            });
        }
    }
    frozen
}

/// Deterministic well-formed f32 data (no NaN/inf so bit comparisons see
/// arithmetic, not payload propagation quirks): values in roughly [-2, 2).
fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 22) as f32) - 2.0
        })
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

property! {
    // mask_select gathers exactly the unfrozen scalars in index order, and
    // mask_scatter is its exact inverse back into the same mask.
    fn select_matches_reference_and_scatter_inverts(
        classes in vecs(u8s(0..4), 1..6),
        tail in usizes(1..65),
        seed in u64s(0..u64::MAX)
    ) {
        let frozen = mask_from_classes(&classes, tail, seed);
        let words = pack(&frozen);
        let src = data(frozen.len(), seed ^ 0xa5a5);

        let mut compact = Vec::new();
        apf_tensor::mask_select(&src, &words, &mut compact);
        let reference: Vec<f32> = src
            .iter()
            .zip(&frozen)
            .filter(|(_, &f)| !f)
            .map(|(&x, _)| x)
            .collect();
        prop_assert_eq!(bits(&compact), bits(&reference));

        // Scatter the selection into a poisoned buffer: unfrozen slots get
        // the compact values back, frozen slots keep their sentinel.
        let mut dst = vec![f32::from_bits(0x7fc0_dead); frozen.len()];
        apf_tensor::mask_scatter(&mut dst, &compact, &words);
        for (j, &f) in frozen.iter().enumerate() {
            if f {
                prop_assert_eq!(dst[j].to_bits(), 0x7fc0_dead, "frozen slot {j} written");
            } else {
                prop_assert_eq!(dst[j].to_bits(), src[j].to_bits(), "slot {j}");
            }
        }
    }

    // mask_copy writes exactly the unfrozen slots; mask_fill (the rollback
    // kernel) writes exactly the frozen slots — together they tile the
    // vector with no overlap and no gap.
    fn copy_and_fill_partition_the_vector(
        classes in vecs(u8s(0..4), 1..6),
        tail in usizes(1..65),
        seed in u64s(0..u64::MAX)
    ) {
        let frozen = mask_from_classes(&classes, tail, seed);
        let words = pack(&frozen);
        let n = frozen.len();
        let src = data(n, seed ^ 0x1111);
        let base = data(n, seed ^ 0x2222);

        let mut copied = base.clone();
        apf_tensor::mask_copy(&mut copied, &src, &words);
        let mut filled = base.clone();
        apf_tensor::mask_fill(&mut filled, &src, &words);
        for j in 0..n {
            let (exp_copy, exp_fill) = if frozen[j] {
                (base[j], src[j])
            } else {
                (src[j], base[j])
            };
            prop_assert_eq!(copied[j].to_bits(), exp_copy.to_bits(), "copy slot {j}");
            prop_assert_eq!(filled[j].to_bits(), exp_fill.to_bits(), "fill slot {j}");
        }
        // Applying the complementary kernel on top reconstructs src exactly.
        apf_tensor::mask_fill(&mut copied, &src, &words);
        prop_assert_eq!(bits(&copied), bits(&src));
    }

    // masked_axpy and masked_div match the per-scalar IEEE reference bit for
    // bit on unfrozen slots and never touch frozen ones — NaN poison in the
    // frozen slots of `x` must not leak into `y`.
    fn axpy_and_div_match_scalar_reference(
        classes in vecs(u8s(0..4), 1..6),
        tail in usizes(1..65),
        seed in u64s(0..u64::MAX),
        a_raw in u8s(0..200),
        d_raw in u8s(1..200)
    ) {
        let frozen = mask_from_classes(&classes, tail, seed);
        let words = pack(&frozen);
        let n = frozen.len();
        let a = (a_raw as f32 - 100.0) / 32.0;
        let d = d_raw as f32 / 16.0;
        let mut x = data(n, seed ^ 0x3333);
        for (xj, &f) in x.iter_mut().zip(&frozen) {
            if f {
                *xj = f32::NAN;
            }
        }
        let base = data(n, seed ^ 0x4444);

        let mut y = base.clone();
        apf_tensor::masked_axpy(&mut y, &x, a, &words);
        apf_tensor::masked_div(&mut y, d, &words);
        for j in 0..n {
            if frozen[j] {
                prop_assert_eq!(y[j].to_bits(), base[j].to_bits(), "frozen slot {j}");
            } else {
                let expect = (base[j] + a * x[j]) / d;
                prop_assert!(!y[j].is_nan(), "NaN leaked into unfrozen slot {j}");
                prop_assert_eq!(y[j].to_bits(), expect.to_bits(), "slot {j}");
            }
        }
    }
}

#[test]
fn all_frozen_and_none_frozen_whole_vectors() {
    // Degenerate masks at a few lengths straddling word boundaries.
    for n in [1usize, 63, 64, 65, 129] {
        let src = data(n, 9);
        let base = data(n, 10);
        for frozen_all in [false, true] {
            let frozen = vec![frozen_all; n];
            let words = pack(&frozen);
            let mut compact = Vec::new();
            apf_tensor::mask_select(&src, &words, &mut compact);
            assert_eq!(compact.len(), if frozen_all { 0 } else { n });
            let mut y = base.clone();
            apf_tensor::masked_axpy(&mut y, &src, 0.5, &words);
            let expect: Vec<f32> = if frozen_all {
                base.clone()
            } else {
                base.iter().zip(&src).map(|(&b, &s)| b + 0.5 * s).collect()
            };
            assert_eq!(bits(&y), bits(&expect), "n={n} frozen_all={frozen_all}");
        }
    }
}
