//! Cross-thread size-class slab store: recycled `f32` buffers shared by all
//! threads, organized into power-of-two size classes.
//!
//! The thread-local [`scratch`](crate::scratch) pool serves the *kernel* hot
//! path, where every thread's take/give pattern recurs each batch. The
//! population simulator has a different shape: buffers are materialized for
//! whichever cohort of clients a round samples, on whichever worker thread
//! picks them up, and recycled when the client goes dormant again. Producer
//! and consumer threads differ round to round, so a thread-local pool would
//! keep missing. This store follows the classic malloc `size_classes` +
//! `tcache` split: a small per-thread cache in front of global per-class
//! free lists guarded by one mutex per class.
//!
//! Buffers are allocated at the full capacity of their size class
//! (`1 << class` floats), so any request that rounds to a class is served by
//! any cached buffer of that class — after a warm-up round, steady-state
//! churn allocates nothing no matter which clients are sampled or which
//! threads run them. [`global_stats`] exposes hit/miss/alloc/resident
//! counters so benches and verify.sh can assert exactly that.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of size classes: class `c` holds buffers of capacity `1 << c`
/// floats, up to `1 << 24` (64 MiB) — the scratch pool's per-thread budget.
const NUM_CLASSES: usize = 25;
/// Buffers kept per class in the per-thread cache before spilling to the
/// global lists.
const TCACHE_PER_CLASS: usize = 4;
/// Buffers kept per class in the global free lists before dropping.
const GLOBAL_PER_CLASS: usize = 64;

/// Counters for slab traffic on the calling thread.
///
/// `takes == hits + misses`; a miss is a real heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Buffers requested via [`take`] / [`take_copy`].
    pub takes: u64,
    /// Requests served from the per-thread cache or the global lists.
    pub hits: u64,
    /// Requests that had to allocate.
    pub misses: u64,
    /// Buffers handed back via [`give`].
    pub gives: u64,
}

/// Process-wide totals, updated alongside the per-thread counters. These
/// feed the `slab.*` gauges the fedsim runners publish.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Bytes actually allocated on misses (class capacity * 4).
static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently resident in the store (per-thread caches + global
/// lists). Falls when buffers are taken out, rises when they are given
/// back; flat across rounds at steady state.
static RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Process-wide slab totals: `(hits, misses, alloc_bytes, resident_bytes)`.
pub fn global_stats() -> (u64, u64, u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
        GLOBAL_ALLOC_BYTES.load(Ordering::Relaxed),
        RESIDENT_BYTES.load(Ordering::Relaxed),
    )
}

/// The size class serving a request of `len` floats: the smallest `c` with
/// `1 << c >= len`. Returns `NUM_CLASSES` for oversized requests (served by
/// a plain allocation that is never cached).
fn class_of(len: usize) -> usize {
    if len <= 1 {
        return 0;
    }
    (usize::BITS - (len - 1).leading_zeros()) as usize
}

/// The class a returned buffer files under: `floor(log2(capacity))`, so its
/// capacity covers every request of that class.
fn class_of_capacity(cap: usize) -> usize {
    debug_assert!(cap > 0);
    cap.ilog2() as usize
}

/// Global per-class free lists (the malloc `size_classes` tier).
static GLOBAL: [Mutex<Vec<Vec<f32>>>; NUM_CLASSES] =
    [const { Mutex::new(Vec::new()) }; NUM_CLASSES];

/// Per-thread cache in front of the global lists (the `tcache` tier).
/// Flushes its residents to the global lists when the thread exits, so
/// buffers warmed by a short-lived worker survive for the next round's
/// workers.
struct Tcache {
    slots: [Vec<Vec<f32>>; NUM_CLASSES],
    stats: SlabStats,
}

impl Default for Tcache {
    fn default() -> Self {
        Tcache {
            slots: [const { Vec::new() }; NUM_CLASSES],
            stats: SlabStats::default(),
        }
    }
}

impl Drop for Tcache {
    fn drop(&mut self) {
        for (class, slot) in self.slots.iter_mut().enumerate() {
            for buf in slot.drain(..) {
                push_global(class, buf);
            }
        }
    }
}

thread_local! {
    static TCACHE: RefCell<Tcache> = RefCell::new(Tcache::default());
}

/// Files `buf` under the global list for `class`, dropping it (and its
/// resident accounting) when the list is full.
fn push_global(class: usize, buf: Vec<f32>) {
    let bytes = buf.capacity() as u64 * 4;
    let mut list = GLOBAL[class].lock().unwrap();
    if list.len() < GLOBAL_PER_CLASS {
        list.push(buf);
    } else {
        RESIDENT_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Takes an *empty* buffer with capacity at least `len` from the store,
/// allocating (a full size-class capacity) only on a miss.
fn take_raw(len: usize) -> Vec<f32> {
    let class = class_of(len);
    if class >= NUM_CLASSES {
        // Oversized: plain allocation, never cached.
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        GLOBAL_ALLOC_BYTES.fetch_add(len as u64 * 4, Ordering::Relaxed);
        TCACHE.with(|t| {
            let mut t = t.borrow_mut();
            t.stats.takes += 1;
            t.stats.misses += 1;
        });
        return Vec::with_capacity(len);
    }
    let cached = TCACHE.with(|t| {
        let mut t = t.borrow_mut();
        t.stats.takes += 1;
        t.slots[class].pop()
    });
    let from_global = cached.or_else(|| GLOBAL[class].lock().unwrap().pop());
    match from_global {
        Some(mut buf) => {
            RESIDENT_BYTES.fetch_sub(buf.capacity() as u64 * 4, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            TCACHE.with(|t| t.borrow_mut().stats.hits += 1);
            buf.clear();
            buf
        }
        None => {
            let cap = 1usize << class;
            GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
            GLOBAL_ALLOC_BYTES.fetch_add(cap as u64 * 4, Ordering::Relaxed);
            TCACHE.with(|t| t.borrow_mut().stats.misses += 1);
            Vec::with_capacity(cap)
        }
    }
}

/// Takes a zero-filled buffer of exactly `len` elements from the store.
pub fn take(len: usize) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.resize(len, 0.0);
    buf
}

/// Takes a buffer holding a copy of `src` (no zero-fill pass).
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = take_raw(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to the store for reuse by any thread.
///
/// Zero-capacity and oversized buffers are dropped. The buffer files under
/// `floor(log2(capacity))`, first in the calling thread's cache, spilling
/// to the global list for that class when the cache slot is full.
pub fn give(buf: Vec<f32>) {
    let cap = buf.capacity();
    TCACHE.with(|t| t.borrow_mut().stats.gives += 1);
    if cap == 0 {
        return;
    }
    let class = class_of_capacity(cap);
    if class >= NUM_CLASSES {
        return;
    }
    RESIDENT_BYTES.fetch_add(cap as u64 * 4, Ordering::Relaxed);
    let spill = TCACHE.with(|t| {
        let mut t = t.borrow_mut();
        if t.slots[class].len() < TCACHE_PER_CLASS {
            t.slots[class].push(buf);
            None
        } else {
            Some(buf)
        }
    });
    if let Some(buf) = spill {
        push_global(class, buf);
    }
}

/// Snapshot of the calling thread's slab counters.
pub fn stats() -> SlabStats {
    TCACHE.with(|t| t.borrow().stats)
}

/// Resets the calling thread's slab counters (cached buffers stay).
pub fn reset_stats() {
    TCACHE.with(|t| t.borrow_mut().stats = SlabStats::default());
}

/// Drops every buffer in the calling thread's cache and the global lists,
/// and resets the calling thread's counters. For tests.
pub fn clear() {
    TCACHE.with(|t| {
        let mut t = t.borrow_mut();
        for slot in t.slots.iter_mut() {
            for buf in slot.drain(..) {
                RESIDENT_BYTES.fetch_sub(buf.capacity() as u64 * 4, Ordering::Relaxed);
            }
        }
        t.stats = SlabStats::default();
    });
    for class in &GLOBAL {
        let mut list = class.lock().unwrap();
        for buf in list.drain(..) {
            RESIDENT_BYTES.fetch_sub(buf.capacity() as u64 * 4, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slab state is process-global; serialize the tests that assert on it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn take_rounds_up_to_class_and_reuses() {
        let _g = LOCK.lock().unwrap();
        clear();
        let a = take(100);
        assert_eq!(a.len(), 100);
        assert!(a.capacity() >= 128, "class capacity is 1 << 7");
        assert!(a.iter().all(|&x| x == 0.0));
        give(a);
        assert_eq!(stats().misses, 1);
        // Any request in the same class reuses the buffer.
        let b = take(120);
        assert_eq!(stats().hits, 1);
        assert_eq!(stats().misses, 1);
        assert!(b.iter().all(|&x| x == 0.0), "reused buffer must be zeroed");
        give(b);
        clear();
    }

    #[test]
    fn take_copy_copies_without_zeroing() {
        let _g = LOCK.lock().unwrap();
        clear();
        give(take(4));
        let c = take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        assert_eq!(stats().hits, 1, "take_copy must reuse the cached buffer");
        give(c);
        clear();
    }

    #[test]
    fn buffers_cross_threads_via_global_lists() {
        let _g = LOCK.lock().unwrap();
        clear();
        // A worker thread warms the store; its tcache flushes to the global
        // lists on exit, so this thread's take is a hit, not a miss.
        std::thread::spawn(|| {
            give(take(1 << 10));
        })
        .join()
        .unwrap();
        reset_stats();
        let b = take(1 << 10);
        assert_eq!(stats().hits, 1, "cross-thread reuse must hit");
        assert_eq!(stats().misses, 0);
        give(b);
        clear();
    }

    #[test]
    fn resident_bytes_track_cached_buffers() {
        let _g = LOCK.lock().unwrap();
        clear();
        let (.., r0) = global_stats();
        let a = take(1 << 9); // capacity exactly 512 floats
        give(a);
        let (.., r1) = global_stats();
        assert_eq!(r1 - r0, 512 * 4, "give must add the class bytes");
        let a = take(1 << 9);
        let (.., r2) = global_stats();
        assert_eq!(r2, r0, "take must remove the class bytes");
        give(a);
        clear();
        let (.., r3) = global_stats();
        assert_eq!(r3, r0, "clear must drain resident bytes");
    }

    #[test]
    fn tcache_spills_to_global_when_full() {
        let _g = LOCK.lock().unwrap();
        clear();
        let held: Vec<_> = (0..(TCACHE_PER_CLASS + 3)).map(|_| take(1 << 6)).collect();
        for b in held {
            give(b);
        }
        let global_len = GLOBAL[6].lock().unwrap().len();
        assert_eq!(global_len, 3, "overflow must land in the global list");
        TCACHE.with(|t| assert_eq!(t.borrow().slots[6].len(), TCACHE_PER_CLASS));
        clear();
    }

    #[test]
    fn oversized_requests_bypass_the_store() {
        let _g = LOCK.lock().unwrap();
        clear();
        let huge = 1 << 25;
        let b = take_raw(huge);
        assert!(b.capacity() >= huge);
        give(b);
        let (.., r) = global_stats();
        TCACHE.with(|t| {
            assert!(
                t.borrow().slots.iter().all(|s| s.is_empty()),
                "oversized buffers are never cached"
            );
        });
        assert_eq!(r, 0, "oversized give must not count resident");
        clear();
    }

    #[test]
    fn global_lists_cap_per_class() {
        let _g = LOCK.lock().unwrap();
        clear();
        let many: Vec<_> = (0..(TCACHE_PER_CLASS + GLOBAL_PER_CLASS + 10))
            .map(|_| take(1 << 5))
            .collect();
        for b in many {
            give(b);
        }
        assert_eq!(GLOBAL[5].lock().unwrap().len(), GLOBAL_PER_CLASS);
        clear();
    }
}
