//! Packed, register-tiled GEMM — the workspace's dense matrix kernel.
//!
//! # Design
//!
//! This is a classic three-level blocked GEMM (the BLIS decomposition):
//!
//! * The innermost unit is an **MR×NR microkernel** ([`MR`]=8 rows ×
//!   [`NR`]=8 columns). It keeps the C tile in SIMD registers and for each
//!   `k` performs `acc[i][j] += a[i] * b[j]` over the tile; the
//!   accumulators never touch memory inside the `k` loop. On x86-64 the
//!   kernel is explicit SSE2/AVX intrinsics (`mul`+`add` only, never FMA);
//!   elsewhere a fixed-trip-count scalar kernel autovectorizes.
//! * Operands are **packed** into contiguous panels first: A into MR-row
//!   panels laid out k-major (for each `k`, MR consecutive values), B into
//!   NR-column panels (for each `k`, NR consecutive values). The microkernel
//!   then streams both panels linearly regardless of the original operand
//!   layout — which is how the transposed variants (`matmul_tn`,
//!   `matmul_nt`) and the im2col-fused convolution share one kernel: they
//!   only differ in their packing closures.
//! * Loops are **cache-blocked** with [`KC`]/[`MC`]/[`NC`]: a KC-deep slab
//!   of B panels is packed once per NC-wide column block and reused across
//!   all row blocks; an MC×KC slab of A panels lives in L1/L2 while it is
//!   swept over the B panels.
//!
//! # Determinism
//!
//! Every output element is still **one ascending-`k` accumulation starting
//! from 0.0**, bitwise identical to the naive reference kernels: the
//! microkernel *loads* the current C tile into its accumulators, accumulates
//! ascending `k` within the KC slab, and stores it back, so the float
//! association across KC slabs is exactly the association of one continuous
//! `k` loop. Parallelism is over the fixed (MC, NC) block grid — block
//! boundaries come from compile-time constants, never from the thread
//! count — and each block is written by exactly one task. Rust performs no
//! floating-point reassociation or contraction, and the SIMD kernels only
//! widen the independent `j` lanes (each lane is the exact scalar mul+add
//! sequence), so results are bitwise identical at any `APF_PAR_THREADS`
//! and on any host (asserted by the cross-thread-count property tests and,
//! in debug builds, against the reference kernel on every small call).
//!
//! Padding: edge panels are zero-padded to full MR/NR width in the packed
//! buffers; the padded lanes compute garbage that is simply never written
//! back (K is never padded, so no spurious `0 * inf` terms enter real
//! outputs).

use crate::scratch;

/// Microkernel tile rows.
pub(crate) const MR: usize = 8;
/// Microkernel tile columns: one AVX vector (or two SSE vectors) per row.
pub(crate) const NR: usize = 8;
/// K-blocking: one packed A panel (MR×KC) is 4 KiB, one B panel (NR×KC) is
/// 8 KiB — both live in L1 while the microkernel streams them.
pub(crate) const KC: usize = 256;
/// Row blocking: an MC×KC slab of packed A (64 KiB) stays L2-resident.
pub(crate) const MC: usize = 64;
/// Column blocking: an NC×KC slab of packed B (64 KiB) stays L2-resident.
/// MC×NC also fixes the parallel block grid — see [`gemm_packed`].
pub(crate) const NC: usize = 64;

/// Below this many multiply-adds the packing traffic is not worth it and
/// the callers use the naive reference kernels instead.
pub(crate) const PACK_OPS_MIN: usize = 1 << 12;

/// `m*k*n` cap for the debug-build bitwise check against the reference
/// kernel, so debug test runs do not become cubic in the largest call.
#[cfg(debug_assertions)]
pub(crate) const REF_CHECK_OPS_MAX: usize = 1 << 18;

/// The raw output pointer shared by the parallel block tasks.
///
/// Tasks write disjoint (MC×NC-gridded) tiles of C, so concurrent use never
/// aliases; writes go through raw pointers only (no `&mut` slices are formed
/// over overlapping regions).
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Accumulates `kc` steps of the packed panels into the MR×NR tile:
/// `acc[i][j] += a_panel[p*MR + i] * b_panel[p*NR + j]` for ascending `p`.
///
/// `a_panel` is `kc * MR` long (k-major), `b_panel` is `kc * NR` long.
///
/// On x86-64 this dispatches to an explicit-SIMD kernel (AVX when the host
/// has it, else SSE2, detected once). Both use only `mul` + `add` vector
/// ops — **never FMA** — so every lane performs exactly the two IEEE
/// roundings of the scalar expression and the result is bitwise identical
/// to the portable fallback (and to the naive reference kernels) on every
/// host, at every lane width.
#[inline]
fn microkernel(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx() {
            // SAFETY: gated on runtime AVX detection.
            unsafe { x86::microkernel_avx(a_panel, b_panel, acc) };
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { x86::microkernel_sse2(a_panel, b_panel, acc) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    microkernel_generic(a_panel, b_panel, acc);
}

/// Portable scalar microkernel; the semantic definition the SIMD paths must
/// match bitwise. Written with fixed trip counts so LLVM can still
/// autovectorize it on non-x86 targets.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn microkernel_generic(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let ap: &[f32; MR] = ap.try_into().unwrap();
        let bp: &[f32; NR] = bp.try_into().unwrap();
        for i in 0..MR {
            let ai = ap[i];
            for j in 0..NR {
                acc[i][j] += ai * bp[j];
            }
        }
    }
}

/// Returns whether the AVX kernel should be used, detecting once.
/// Shared with the freeze-mask kernels in `masked.rs`.
#[cfg(target_arch = "x86_64")]
pub(crate) fn use_avx() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static AVX: AtomicU8 = AtomicU8::new(0); // 0 = unknown, 1 = no, 2 = yes
    match AVX.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let has = std::arch::is_x86_feature_detected!("avx");
            AVX.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit-SIMD microkernels. `mul` + `add` only (no FMA, no horizontal
    //! ops): each lane computes the exact scalar op sequence, so lane width
    //! cannot change results.

    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX microkernel: one 8-wide accumulator vector per tile row.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn microkernel_avx(
        a_panel: &[f32],
        b_panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut rows = [_mm256_setzero_ps(); MR];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = _mm256_loadu_ps(acc[i].as_ptr());
        }
        for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
            let b = _mm256_loadu_ps(bp.as_ptr());
            for (i, row) in rows.iter_mut().enumerate() {
                let a = _mm256_set1_ps(ap[i]);
                *row = _mm256_add_ps(*row, _mm256_mul_ps(a, b));
            }
        }
        for (i, row) in rows.iter().enumerate() {
            _mm256_storeu_ps(acc[i].as_mut_ptr(), *row);
        }
    }

    /// SSE2 microkernel: two 4-wide accumulator vectors per tile row,
    /// processed four rows at a time to stay within 16 XMM registers.
    ///
    /// # Safety
    /// SSE2 is unconditionally available on x86-64; no extra precondition.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn microkernel_sse2(
        a_panel: &[f32],
        b_panel: &[f32],
        acc: &mut [[f32; NR]; MR],
    ) {
        for half in 0..2 {
            let r0 = half * (MR / 2);
            let mut lo = [_mm_setzero_ps(); MR / 2];
            let mut hi = [_mm_setzero_ps(); MR / 2];
            for i in 0..MR / 2 {
                lo[i] = _mm_loadu_ps(acc[r0 + i].as_ptr());
                hi[i] = _mm_loadu_ps(acc[r0 + i].as_ptr().add(4));
            }
            for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
                let b_lo = _mm_loadu_ps(bp.as_ptr());
                let b_hi = _mm_loadu_ps(bp.as_ptr().add(4));
                for i in 0..MR / 2 {
                    let a = _mm_set1_ps(ap[r0 + i]);
                    lo[i] = _mm_add_ps(lo[i], _mm_mul_ps(a, b_lo));
                    hi[i] = _mm_add_ps(hi[i], _mm_mul_ps(a, b_hi));
                }
            }
            for i in 0..MR / 2 {
                _mm_storeu_ps(acc[r0 + i].as_mut_ptr(), lo[i]);
                _mm_storeu_ps(acc[r0 + i].as_mut_ptr().add(4), hi[i]);
            }
        }
    }
}

/// Runs one microkernel tile against C at (`i0`, `j0`).
///
/// `first` marks the first KC slab: the accumulators start from zero and the
/// store overwrites C (so callers never need to pre-zero the output). Later
/// slabs load the tile, continuing the ascending-`k` accumulation exactly
/// where the previous slab stopped. Only the valid `mr_eff × nr_eff` window
/// is read or written; padded lanes stay in registers and are discarded.
///
/// # Safety
/// `c` must be valid for `ldc`-strided reads/writes of the tile window, and
/// no other reference may access that window concurrently.
#[allow(clippy::too_many_arguments)]
unsafe fn tile(
    c: SendPtr,
    ldc: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (i, row) in acc.iter_mut().enumerate().take(mr_eff) {
            let base = c.0.add((i0 + i) * ldc + j0);
            for (j, v) in row.iter_mut().enumerate().take(nr_eff) {
                *v = *base.add(j);
            }
        }
    }
    microkernel(a_panel, b_panel, &mut acc);
    for (i, row) in acc.iter().enumerate().take(mr_eff) {
        let base = c.0.add((i0 + i) * ldc + j0);
        for (j, v) in row.iter().enumerate().take(nr_eff) {
            *base.add(j) = *v;
        }
    }
}

/// Packs rows `ic..ic+mc_eff`, depth `pc..pc+kc_eff` of row-major
/// `src[·, lda]` into MR-row panels (k-major, zero-padded to MR).
pub(crate) fn pack_a_rowmajor(
    dst: &mut [f32],
    src: &[f32],
    lda: usize,
    ic: usize,
    mc_eff: usize,
    pc: usize,
    kc_eff: usize,
) {
    for (ir, panel) in dst.chunks_exact_mut(kc_eff * MR).enumerate() {
        let rows = MR.min(mc_eff - ir * MR);
        for r in 0..rows {
            let row = &src[(ic + ir * MR + r) * lda + pc..][..kc_eff];
            for (p, &v) in row.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
        for r in rows..MR {
            for p in 0..kc_eff {
                panel[p * MR + r] = 0.0;
            }
        }
    }
}

/// Packs columns `ic..ic+mc_eff`, depth `pc..pc+kc_eff` of the *transposed*
/// operand `src` (stored `[k_total, m]`, so A[i][p] = src[p*m + i]) into
/// MR-row panels.
pub(crate) fn pack_a_colmajor(
    dst: &mut [f32],
    src: &[f32],
    m: usize,
    ic: usize,
    mc_eff: usize,
    pc: usize,
    kc_eff: usize,
) {
    for (ir, panel) in dst.chunks_exact_mut(kc_eff * MR).enumerate() {
        let rows = MR.min(mc_eff - ir * MR);
        for p in 0..kc_eff {
            let seg = &src[(pc + p) * m + ic + ir * MR..][..rows];
            let out = &mut panel[p * MR..(p + 1) * MR];
            out[..rows].copy_from_slice(seg);
            out[rows..].fill(0.0);
        }
    }
}

/// Packs depth `pc..pc+kc_eff`, columns `jc..jc+nc_eff` of row-major
/// `src[·, ldb]` into NR-column panels (k-major, zero-padded to NR).
pub(crate) fn pack_b_rowmajor(
    dst: &mut [f32],
    src: &[f32],
    ldb: usize,
    pc: usize,
    kc_eff: usize,
    jc: usize,
    nc_eff: usize,
) {
    for (jr, panel) in dst.chunks_exact_mut(kc_eff * NR).enumerate() {
        let cols = NR.min(nc_eff - jr * NR);
        for p in 0..kc_eff {
            let seg = &src[(pc + p) * ldb + jc + jr * NR..][..cols];
            let out = &mut panel[p * NR..(p + 1) * NR];
            out[..cols].copy_from_slice(seg);
            out[cols..].fill(0.0);
        }
    }
}

/// Packs the *transposed* operand `src` (stored `[n_total, k]`, so
/// B[p][j] = src[j*k + p]) into NR-column panels.
pub(crate) fn pack_b_colmajor(
    dst: &mut [f32],
    src: &[f32],
    ldb: usize,
    pc: usize,
    kc_eff: usize,
    jc: usize,
    nc_eff: usize,
) {
    for (jr, panel) in dst.chunks_exact_mut(kc_eff * NR).enumerate() {
        let cols = NR.min(nc_eff - jr * NR);
        for c in 0..cols {
            let col = &src[(jc + jr * NR + c) * ldb + pc..][..kc_eff];
            for (p, &v) in col.iter().enumerate() {
                panel[p * NR + c] = v;
            }
        }
        if cols < NR {
            for p in 0..kc_eff {
                panel[p * NR + cols..(p + 1) * NR].fill(0.0);
            }
        }
    }
}

/// Blocked, packed `C = A·B` over caller-supplied packing closures.
///
/// `pack_a(dst, ic, mc_eff, pc, kc_eff)` must fill `dst` with the MR-row
/// panels of A rows `ic..ic+mc_eff` at depth `pc..pc+kc_eff`;
/// `pack_b(dst, pc, kc_eff, jc, nc_eff)` with the NR-column panels of B.
/// This indirection is what lets `conv2d` im2col straight into packed
/// panels without ever materializing the column matrix.
///
/// C is fully overwritten (no pre-zeroing needed); `k == 0` zero-fills.
/// Parallelism: one pool task per (MC, NC) block of the output grid — each
/// task packs the A/B slabs it needs into thread-local scratch buffers and
/// owns its C block exclusively. Packing is re-done per block (a few percent
/// of the kernel's own traffic) in exchange for tasks that share nothing.
pub(crate) fn gemm_packed<PA, PB>(
    m: usize,
    k: usize,
    n: usize,
    pack_a: &PA,
    pack_b: &PB,
    c: &mut [f32],
) where
    PA: Fn(&mut [f32], usize, usize, usize, usize) + Sync,
    PB: Fn(&mut [f32], usize, usize, usize, usize) + Sync,
{
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let ic_blocks = m.div_ceil(MC);
    let jc_blocks = n.div_ceil(NC);
    let kc_max = KC.min(k);
    let cp = SendPtr(c.as_mut_ptr());
    apf_par::parallel_for_each(ic_blocks * jc_blocks, move |blk| {
        let ic = (blk / jc_blocks) * MC;
        let jc = (blk % jc_blocks) * NC;
        let mc_eff = MC.min(m - ic);
        let nc_eff = NC.min(n - jc);
        let mr_panels = mc_eff.div_ceil(MR);
        let nr_panels = nc_eff.div_ceil(NR);
        let mut pa = scratch::take(mr_panels * MR * kc_max);
        let mut pb = scratch::take(nr_panels * NR * kc_max);
        let mut pc = 0;
        while pc < k {
            let kc_eff = KC.min(k - pc);
            pack_a(&mut pa[..mr_panels * MR * kc_eff], ic, mc_eff, pc, kc_eff);
            pack_b(&mut pb[..nr_panels * NR * kc_eff], pc, kc_eff, jc, nc_eff);
            for jr in 0..nr_panels {
                let nr_eff = NR.min(nc_eff - jr * NR);
                let b_panel = &pb[jr * kc_eff * NR..(jr + 1) * kc_eff * NR];
                for ir in 0..mr_panels {
                    let mr_eff = MR.min(mc_eff - ir * MR);
                    let a_panel = &pa[ir * kc_eff * MR..(ir + 1) * kc_eff * MR];
                    // SAFETY: this task exclusively owns C rows
                    // ic..ic+mc_eff × cols jc..jc+nc_eff (the block grid is
                    // disjoint), and the tile window lies inside it.
                    unsafe {
                        tile(
                            cp,
                            n,
                            ic + ir * MR,
                            jc + jr * NR,
                            mr_eff,
                            nr_eff,
                            a_panel,
                            b_panel,
                            pc == 0,
                        )
                    };
                }
            }
            pc += KC;
        }
        scratch::give(pa);
        scratch::give(pb);
    });
}

/// Packed `[m,k] x [k,n]` (both row-major).
pub(crate) fn gemm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gemm_packed(
        m,
        k,
        n,
        &|dst: &mut [f32], ic, mc_eff, pc, kc_eff| {
            pack_a_rowmajor(dst, a, k, ic, mc_eff, pc, kc_eff)
        },
        &|dst: &mut [f32], pc, kc_eff, jc, nc_eff| {
            pack_b_rowmajor(dst, b, n, pc, kc_eff, jc, nc_eff)
        },
        c,
    );
}

/// Packed `[k,m]^T x [k,n]` (A transposed in storage).
pub(crate) fn gemm_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gemm_packed(
        m,
        k,
        n,
        &|dst: &mut [f32], ic, mc_eff, pc, kc_eff| {
            pack_a_colmajor(dst, a, m, ic, mc_eff, pc, kc_eff)
        },
        &|dst: &mut [f32], pc, kc_eff, jc, nc_eff| {
            pack_b_rowmajor(dst, b, n, pc, kc_eff, jc, nc_eff)
        },
        c,
    );
}

/// Packed `[m,k] x [n,k]^T` (B transposed in storage).
pub(crate) fn gemm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gemm_packed(
        m,
        k,
        n,
        &|dst: &mut [f32], ic, mc_eff, pc, kc_eff| {
            pack_a_rowmajor(dst, a, k, ic, mc_eff, pc, kc_eff)
        },
        &|dst: &mut [f32], pc, kc_eff, jc, nc_eff| {
            pack_b_colmajor(dst, b, k, pc, kc_eff, jc, nc_eff)
        },
        c,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32 + seed as f32) * 0.173).sin())
            .collect()
    }

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn assert_bitwise(got: &[f32], want: &[f32], what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
        }
    }

    #[test]
    fn packed_matches_naive_on_ragged_shapes() {
        // Shapes straddling every MR/NR/KC/MC/NC boundary case, plus K=0 and M=1.
        let shapes = [
            (1, 1, 1),
            (1, 7, 9),
            (3, 0, 5),
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC - 1, 17, NC - 1),
            (MC + 3, KC + 5, NC + 7),
            (2 * MC, 2 * KC, 2 * NC),
            (13, 300, 77),
        ];
        for &(m, k, n) in &shapes {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let want = naive_nn(&a, &b, m, k, n);
            let mut got = vec![f32::NAN; m * n]; // dirty: gemm must overwrite
            gemm_nn(&a, &b, m, k, n, &mut got);
            assert_bitwise(&got, &want, &format!("nn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn transposed_variants_match_naive() {
        let (m, k, n) = (37, 65, 43);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let want = naive_nn(&a, &b, m, k, n);
        // TN: store A as [k, m].
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut got = vec![0.0f32; m * n];
        gemm_tn(&at, &b, m, k, n, &mut got);
        assert_bitwise(&got, &want, "tn");
        // NT: store B as [n, k].
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut got = vec![0.0f32; m * n];
        gemm_nt(&a, &bt, m, k, n, &mut got);
        assert_bitwise(&got, &want, "nt");
    }

    #[test]
    fn parallel_blocks_are_bitwise_identical() {
        let (m, k, n) = (2 * MC + 5, KC + 9, 2 * NC + 3);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let run = |t: usize| {
            apf_par::with_threads(t, || {
                let mut c = vec![0.0f32; m * n];
                gemm_nn(&a, &b, m, k, n, &mut c);
                c
            })
        };
        let c1 = run(1);
        for t in [2usize, 3, 7] {
            assert_bitwise(&run(t), &c1, &format!("threads={t}"));
        }
    }
}
