//! Small statistics helpers used by the motivation experiments
//! (percentiles for Fig. 3 error bars, norms for perturbation metrics).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance (0 for an empty slice).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// L1 norm.
pub fn l1_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x.abs()).sum()
}

/// L2 norm.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

/// The `p`-th percentile (`0.0..=100.0`) by linear interpolation between
/// order statistics (the same convention as NumPy's default).
///
/// # Panics
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f32], p: f32) -> f32 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn norms() {
        let xs = [3.0, -4.0];
        assert_eq!(l1_norm(&xs), 7.0);
        assert_eq!(l2_norm(&xs), 5.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-6);
        assert!((percentile(&xs, 95.0) - 9.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
