//! The owned, row-major dense tensor type.
//!
//! The `matmul` family dispatches to the packed, register-tiled GEMM in
//! [`crate::gemm`] (parallelized over a fixed cache-block grid); other heavy
//! kernels (large elementwise ops and the reductions) are parallelized over
//! the `apf-par` pool above fixed size thresholds. Parallel and serial paths
//! compute every output element with the same per-element operation order,
//! so results are bitwise identical at any `APF_PAR_THREADS` value;
//! reductions additionally use [`apf_par::map_reduce`], whose chunking is
//! thread-count independent. Matmul outputs are drawn from the thread-local
//! [`crate::scratch`] pool; callers on the training hot path hand buffers
//! back via [`Tensor::recycle`] so steady-state rounds allocate nothing.

use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::gemm;
use crate::scratch;

/// Minimum elements before an elementwise op is dispatched to the pool.
const PAR_ELEM_MIN: usize = 1 << 15;
/// Minimum multiply-adds before a matrix kernel is dispatched to the pool.
pub(crate) const PAR_OPS_MIN: usize = 1 << 16;
/// Minimum operations a parallel row block should amortize: blocks are never
/// cut smaller than this much work, so small kernels (e.g. per-plane conv
/// assembly) don't shatter into per-task overhead that exceeds the task.
pub(crate) const PAR_BLOCK_MIN_OPS: usize = 1 << 15;
/// Fixed reduction grain: chunk boundaries for `sum`/`norm_sq` depend only
/// on this constant, never on the thread count, keeping reductions bitwise
/// reproducible. Inputs at or below one grain reduce exactly like a plain
/// serial fold.
const REDUCE_GRAIN: usize = 1 << 16;
/// Lhs density above which [`Tensor::matmul_sparse_lhs`] falls back to the
/// packed dense kernel: with this many nonzeros the zero-skip branch costs
/// more than the multiplies it saves.
pub(crate) const SPARSE_LHS_MAX_DENSITY: f32 = 0.4;

/// Row-block size for dispatching a `rows`-row kernel whose per-row cost is
/// `row_cost` operations: all rows in one block (serial) below the
/// threshold, else ~4 blocks per pool thread — but never blocks smaller
/// than [`PAR_BLOCK_MIN_OPS`] of work, so cheap rows are grouped instead of
/// paying per-task dispatch that dwarfs the row itself.
pub(crate) fn rows_per_block(rows: usize, row_cost: usize) -> usize {
    let t = apf_par::threads();
    if t <= 1 || rows.saturating_mul(row_cost) < PAR_OPS_MIN {
        rows.max(1)
    } else {
        let by_threads = rows.div_ceil(4 * t);
        let by_cost = PAR_BLOCK_MIN_OPS.div_ceil(row_cost.max(1));
        by_threads.max(by_cost).clamp(1, rows.max(1))
    }
}

/// Dense row-blocked matmul kernel: accumulates `a[i0+ri, :] x b` into each
/// row of `out_block`. Per-element accumulation order (ascending `p`) is
/// the same regardless of blocking, so any block split is bitwise identical.
fn mm_block(a: &[f32], b: &[f32], out_block: &mut [f32], i0: usize, k: usize, n: usize) {
    for (ri, o_row) in out_block.chunks_mut(n).enumerate() {
        let a_row = &a[(i0 + ri) * k..(i0 + ri + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Sparse-lhs variant of [`mm_block`]: skips zero lhs entries. Only worth it
/// when the lhs is genuinely sparse (e.g. frozen-masked updates); on dense
/// activations the data-dependent branch mispredicts and costs ~2x.
fn mm_block_sparse(a: &[f32], b: &[f32], out_block: &mut [f32], i0: usize, k: usize, n: usize) {
    for (ri, o_row) in out_block.chunks_mut(n).enumerate() {
        let a_row = &a[(i0 + ri) * k..(i0 + ri + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Debug-build check that a packed result is bitwise identical to the naive
/// reference, capped at small problem sizes so debug test runs stay fast
/// (larger shapes are covered explicitly by the property tests).
#[cfg(debug_assertions)]
fn debug_assert_matches_reference(
    got: &Tensor,
    reference: impl FnOnce() -> Tensor,
    ops: usize,
    what: &str,
) {
    if ops > gemm::REF_CHECK_OPS_MAX {
        return;
    }
    let want = reference();
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: packed kernel diverged from reference at element {i}: {g} vs {w}"
        );
    }
    want.recycle();
}

#[cfg(not(debug_assertions))]
fn debug_assert_matches_reference(
    _got: &Tensor,
    _reference: impl FnOnce() -> Tensor,
    _ops: usize,
    _what: &str,
) {
}

/// An owned, row-major, dense `f32` tensor of arbitrary rank.
///
/// `Tensor` is deliberately simple: contiguous storage, explicit shapes, and
/// eager operations. It is the common currency between the neural-network
/// layers (`apf-nn`), the datasets, and the APF manager (which views the
/// whole model as one flat vector of scalars, per §3.2.2 of the paper).
///
/// # Example
///
/// ```
/// use apf_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.numel())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    /// Panics if `shape` contains a dimension product that overflows `usize`.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d));
        let numel = numel.expect("shape product overflows usize");
        Tensor {
            data: vec![value; numel],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a zero-filled tensor backed by the thread-local
    /// [`crate::scratch`] pool — indistinguishable from [`Tensor::zeros`]
    /// except that a recycled buffer is reused when one fits.
    ///
    /// Pair with [`Tensor::recycle`] on the training hot path so
    /// steady-state rounds stop allocating.
    pub fn scratch(shape: &[usize]) -> Self {
        let numel = shape.iter().try_fold(1usize, |a, &d| a.checked_mul(d));
        let numel = numel.expect("shape product overflows usize");
        Tensor {
            data: scratch::take(numel),
            shape: shape.to_vec(),
        }
    }

    /// Copies this tensor into a scratch-pool-backed tensor (no zero-fill
    /// pass; the pool buffer is overwritten directly).
    pub fn scratch_copy(&self) -> Self {
        Tensor {
            data: scratch::take_copy(&self.data),
            shape: self.shape.clone(),
        }
    }

    /// Builds a tensor holding a copy of `data` in a scratch-pool buffer
    /// (single copy, no zero-fill pass).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn scratch_from(data: &[f32], shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, data.len(), "data length does not match shape");
        Tensor {
            data: scratch::take_copy(data),
            shape: shape.to_vec(),
        }
    }

    /// Consumes the tensor, returning its buffer to the thread-local scratch
    /// pool for reuse by the next [`Tensor::scratch`]/matmul/conv call.
    pub fn recycle(self) {
        scratch::give(self.data);
    }

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape product.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Returns the shape of this tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the total number of scalar elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the underlying data as a slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data as a mutable slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape, which must have the same element count.
    ///
    /// # Panics
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.numel(),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// Reshapes in place (no copy), keeping the same element count.
    ///
    /// # Panics
    /// Panics if the new shape has a different number of elements.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.numel(), "cannot reshape in place");
        self.shape = shape.to_vec();
    }

    /// Returns the element at a 2-D index.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or indices are out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(
            i < r && j < c,
            "index ({i},{j}) out of bounds for ({r},{c})"
        );
        self.data[i * c + j]
    }

    /// Sets the element at a 2-D index.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or indices are out of bounds.
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        assert_eq!(self.shape.len(), 2, "set2 requires a rank-2 tensor");
        let c = self.shape[1];
        self.data[i * c + j] = v;
    }

    /// Applies `f` to every element, returning a new tensor.
    ///
    /// Large tensors are mapped in parallel chunks; elements are independent,
    /// so the result is identical at any thread count.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            return Tensor {
                data: self.data.iter().map(|&x| f(x)).collect(),
                shape: self.shape.clone(),
            };
        }
        let mut data = vec![0.0f32; self.data.len()];
        let chunk = apf_par::chunk_len(data.len());
        apf_par::par_chunks_mut(&mut data, chunk, |i, c| {
            let src = &self.data[i * chunk..i * chunk + c.len()];
            for (d, &s) in c.iter_mut().zip(src) {
                *d = f(s);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            for x in &mut self.data {
                *x = f(*x);
            }
            return;
        }
        let chunk = apf_par::chunk_len(self.data.len());
        apf_par::par_chunks_mut(&mut self.data, chunk, |_, c| {
            for x in c {
                *x = f(*x);
            }
        });
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            return Tensor {
                data: self
                    .data
                    .iter()
                    .zip(&other.data)
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
                shape: self.shape.clone(),
            };
        }
        let mut data = vec![0.0f32; self.data.len()];
        let chunk = apf_par::chunk_len(data.len());
        apf_par::par_chunks_mut(&mut data, chunk, |i, c| {
            let off = i * chunk;
            let lhs = &self.data[off..off + c.len()];
            let rhs = &other.data[off..off + c.len()];
            for ((d, &a), &b) in c.iter_mut().zip(lhs).zip(rhs) {
                *d = f(a, b);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Combines elementwise with `other` in place: `self[i] = f(self[i],
    /// other[i])`. The allocation-free counterpart of
    /// [`zip_map`](Tensor::zip_map).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_with(&mut self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            for (a, &b) in self.data.iter_mut().zip(&other.data) {
                *a = f(*a, b);
            }
            return;
        }
        let chunk = apf_par::chunk_len(self.data.len());
        apf_par::par_chunks_mut(&mut self.data, chunk, |i, c| {
            let src = &other.data[i * chunk..i * chunk + c.len()];
            for (a, &b) in c.iter_mut().zip(src) {
                *a = f(*a, b);
            }
        });
    }

    /// `self += alpha * other`, elementwise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            for (a, &b) in self.data.iter_mut().zip(&other.data) {
                *a += alpha * b;
            }
            return;
        }
        let chunk = apf_par::chunk_len(self.data.len());
        apf_par::par_chunks_mut(&mut self.data, chunk, |i, c| {
            let src = &other.data[i * chunk..i * chunk + c.len()];
            for (a, &b) in c.iter_mut().zip(src) {
                *a += alpha * b;
            }
        });
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.map_in_place(|x| x * s);
    }

    /// Sets every element to zero.
    pub fn fill(&mut self, v: f32) {
        if self.data.len() < PAR_ELEM_MIN || apf_par::threads() <= 1 {
            for x in &mut self.data {
                *x = v;
            }
            return;
        }
        let chunk = apf_par::chunk_len(self.data.len());
        apf_par::par_chunks_mut(&mut self.data, chunk, |_, c| {
            for x in c {
                *x = v;
            }
        });
    }

    /// Sum of all elements.
    ///
    /// Reduced via [`apf_par::map_reduce`] with a fixed grain: the chunking
    /// (and hence the float association order) is independent of the thread
    /// count, so the value is bitwise reproducible.
    pub fn sum(&self) -> f32 {
        apf_par::map_reduce(
            0..self.data.len(),
            REDUCE_GRAIN,
            |r| self.data[r].iter().sum::<f32>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Dispatches to the packed, register-tiled GEMM above a small size
    /// threshold; tiny products use the naive reference kernel (the packing
    /// traffic would dominate). Both paths accumulate every output element
    /// ascending in `k` from 0.0, so they are bitwise identical to each
    /// other — and, in debug builds, small packed calls are asserted against
    /// the reference.
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or inner dimensions mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        if m * k * n < gemm::PACK_OPS_MIN {
            return self.matmul_reference(other);
        }
        let mut out = Tensor::scratch(&[m, n]);
        gemm::gemm_nn(&self.data, &other.data, m, k, n, &mut out.data);
        debug_assert_matches_reference(&out, || self.matmul_reference(other), m * k * n, "matmul");
        out
    }

    /// Naive triple-loop `[m,k] x [k,n]` — the reference kernel the packed
    /// GEMM is asserted against (serial, ikj loop order, ascending-`k`
    /// accumulation from 0.0).
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or inner dimensions mismatch.
    pub fn matmul_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::scratch(&[m, n]);
        if n > 0 {
            mm_block(&self.data, &other.data, &mut out.data, 0, k, n);
        }
        out
    }

    /// Like [`matmul`](Tensor::matmul), but skips zero entries of `self`.
    ///
    /// Use this when the lhs is genuinely sparse — e.g. gradient updates
    /// masked by frozen-parameter bitmaps, where APF zeroes whole rows. The
    /// lhs density is measured first: above
    /// [`SPARSE_LHS_MAX_DENSITY`] nonzeros the zero-skip branch mispredicts
    /// its way past any savings, so the call falls back to the packed dense
    /// kernel. The result is bitwise identical to `matmul` whenever every
    /// lhs zero is a positive zero and the rhs is finite (skipping `0.0 * b`
    /// only differs for `-0.0` outputs or non-finite `b`).
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or inner dimensions mismatch.
    pub fn matmul_sparse_lhs(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_sparse_lhs lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_sparse_lhs rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_sparse_lhs inner dimension mismatch");
        if self.density() > SPARSE_LHS_MAX_DENSITY {
            return self.matmul(other);
        }
        let mut out = Tensor::scratch(&[m, n]);
        if n > 0 {
            let rows_per = rows_per_block(m, k * n);
            apf_par::par_chunks_mut(&mut out.data, rows_per * n, |ci, block| {
                mm_block_sparse(&self.data, &other.data, block, ci * rows_per, k, n);
            });
        }
        out
    }

    /// Fraction of elements that are nonzero (1.0 for an empty tensor, so
    /// degenerate shapes take the trivial dense path).
    pub(crate) fn density(&self) -> f32 {
        if self.data.is_empty() {
            return 1.0;
        }
        let nz = self.data.iter().filter(|&&x| x != 0.0).count();
        nz as f32 / self.data.len() as f32
    }

    /// `self^T x other`: `[k,m]^T x [k,n] -> [m,n]`, without materializing the
    /// transpose.
    ///
    /// Packed above the size threshold (the packing step absorbs the strided
    /// column reads), naive reference below; bitwise identical either way.
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or the shared dimension differs.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn shared dimension mismatch");
        if m * k * n < gemm::PACK_OPS_MIN {
            return self.matmul_tn_reference(other);
        }
        let mut out = Tensor::scratch(&[m, n]);
        gemm::gemm_tn(&self.data, &other.data, m, k, n, &mut out.data);
        debug_assert_matches_reference(
            &out,
            || self.matmul_tn_reference(other),
            m * k * n,
            "matmul_tn",
        );
        out
    }

    /// Naive reference for [`matmul_tn`](Tensor::matmul_tn): strided column
    /// reads, ascending-`k` accumulation from 0.0.
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or the shared dimension differs.
    pub fn matmul_tn_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn shared dimension mismatch");
        let mut out = Tensor::scratch(&[m, n]);
        if n == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        for (i, o_row) in out.data.chunks_mut(n).enumerate() {
            for p in 0..k {
                let av = a[p * m + i];
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `self x other^T`: `[m,k] x [n,k]^T -> [m,n]`, without materializing the
    /// transpose.
    ///
    /// Packed above the size threshold, naive dot-product reference below;
    /// bitwise identical either way.
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or the shared dimension differs.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt shared dimension mismatch");
        if m * k * n < gemm::PACK_OPS_MIN {
            return self.matmul_nt_reference(other);
        }
        let mut out = Tensor::scratch(&[m, n]);
        gemm::gemm_nt(&self.data, &other.data, m, k, n, &mut out.data);
        debug_assert_matches_reference(
            &out,
            || self.matmul_nt_reference(other),
            m * k * n,
            "matmul_nt",
        );
        out
    }

    /// Naive reference for [`matmul_nt`](Tensor::matmul_nt): independent
    /// ascending-`k` dot products.
    ///
    /// # Panics
    /// Panics if either tensor is not rank 2 or the shared dimension differs.
    pub fn matmul_nt_reference(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt shared dimension mismatch");
        let mut out = Tensor::scratch(&[m, n]);
        if n == 0 {
            return out;
        }
        let a = &self.data;
        let b = &other.data;
        for (i, o_row) in out.data.chunks_mut(n).enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        }
        out
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Adds a length-`n` bias row to every row of an `[m,n]` matrix, in place.
    ///
    /// # Panics
    /// Panics if shapes are incompatible.
    pub fn add_row_in_place(&mut self, row: &Tensor) {
        assert_eq!(self.shape.len(), 2, "add_row_in_place requires rank 2");
        let n = self.shape[1];
        assert_eq!(row.numel(), n, "row length mismatch");
        for chunk in self.data.chunks_mut(n) {
            for (c, &b) in chunk.iter_mut().zip(&row.data) {
                *c += b;
            }
        }
    }

    /// Sums an `[m,n]` matrix over its rows, producing a length-`n` vector.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires rank 2");
        let n = self.shape[1];
        let mut out = Tensor::scratch(&[n]);
        for chunk in self.data.chunks(n) {
            for (o, &c) in out.data.iter_mut().zip(chunk) {
                *o += c;
            }
        }
        out
    }

    /// Index of the maximum element within each row of an `[m,n]` matrix.
    ///
    /// Ties resolve to the lowest index. NaNs are never selected unless the
    /// whole row is NaN (in which case index 0 is returned).
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires rank 2");
        let n = self.shape[1];
        assert!(n > 0, "argmax_rows requires at least one column");
        self.data
            .chunks(n)
            .map(|row| {
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Copies `rows` (by index) of an `[m,n]` matrix into a new `[rows.len(),n]`
    /// matrix.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or any index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Tensor {
        assert_eq!(self.shape.len(), 2, "select_rows requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(rows.len() * n);
        for &r in rows {
            assert!(r < m, "row index {r} out of bounds for {m} rows");
            out.extend_from_slice(&self.data[r * n..(r + 1) * n]);
        }
        Tensor {
            data: out,
            shape: vec![rows.len(), n],
        }
    }

    /// Squared L2 norm of all elements.
    ///
    /// Uses the same fixed-grain deterministic reduction as
    /// [`sum`](Tensor::sum).
    pub fn norm_sq(&self) -> f32 {
        apf_par::map_reduce(
            0..self.data.len(),
            REDUCE_GRAIN,
            |r| self.data[r].iter().map(|&x| x * x).sum::<f32>(),
            |a, b| a + b,
        )
        .unwrap_or(0.0)
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|a| a * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.at2(0, 1), 2.0);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let i = Tensor::eye(4);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let via_tn = a.matmul_tn(&b);
        let via_t = a.transpose2().matmul(&b);
        assert_eq!(via_tn.data(), via_t.data());
        assert_eq!(via_tn.shape(), &[2, 4]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 * 0.25).collect(), &[4, 3]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose2());
        assert_eq!(via_nt.data(), via_t.data());
        assert_eq!(via_nt.shape(), &[2, 4]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn add_row_and_sum_rows() {
        let mut a = Tensor::zeros(&[3, 2]);
        let bias = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        a.add_row_in_place(&bias);
        assert_eq!(a.data(), &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let s = a.sum_rows();
        assert_eq!(s.data(), &[3.0, -3.0]);
    }

    #[test]
    fn argmax_rows_ties_go_low() {
        let a = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.5, 2.0, 2.0], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn select_rows_copies() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones(&[4]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn operators() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big:?}").contains("100 elements"));
    }

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|i| ((i as f32 + seed as f32) * 0.173).sin())
            .collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn matmul_sparse_lhs_matches_dense_on_masked_input() {
        // Zero out whole rows, as a frozen-parameter mask would.
        let mut a = pseudo(&[8, 16], 1);
        for j in 0..16 {
            a.set2(2, j, 0.0);
            a.set2(5, j, 0.0);
        }
        let b = pseudo(&[16, 8], 2);
        let dense = a.matmul(&b);
        let sparse = a.matmul_sparse_lhs(&b);
        for (d, s) in dense.data().iter().zip(sparse.data()) {
            assert_eq!(d.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn matmul_sparse_lhs_takes_both_density_branches() {
        let b = pseudo(&[16, 8], 2);
        // Mostly-dense lhs: above SPARSE_LHS_MAX_DENSITY, so the call falls
        // back to the packed dense kernel.
        let mut dense_lhs = pseudo(&[8, 16], 1);
        for j in 0..16 {
            dense_lhs.set2(2, j, 0.0);
        }
        assert!(dense_lhs.density() > SPARSE_LHS_MAX_DENSITY);
        let want = dense_lhs.matmul(&b);
        let got = dense_lhs.matmul_sparse_lhs(&b);
        for (w, g) in want.data().iter().zip(got.data()) {
            assert_eq!(w.to_bits(), g.to_bits(), "dense fallback branch");
        }
        // Genuinely sparse lhs (2 of 8 rows nonzero): the zero-skip kernel
        // runs and must still match the dense product bitwise (all zeros are
        // +0.0 and the rhs is finite).
        let mut sparse_lhs = pseudo(&[8, 16], 3);
        for i in 0..8 {
            if i != 1 && i != 6 {
                for j in 0..16 {
                    sparse_lhs.set2(i, j, 0.0);
                }
            }
        }
        assert!(sparse_lhs.density() <= SPARSE_LHS_MAX_DENSITY);
        let want = sparse_lhs.matmul(&b);
        let got = sparse_lhs.matmul_sparse_lhs(&b);
        for (w, g) in want.data().iter().zip(got.data()) {
            assert_eq!(w.to_bits(), g.to_bits(), "sparse zero-skip branch");
        }
    }

    #[test]
    fn matmul_family_bitwise_identical_across_thread_counts() {
        // Big enough to cross PAR_OPS_MIN so the pool path actually runs.
        let a = pseudo(&[96, 48], 3);
        let b = pseudo(&[48, 96], 4);
        let bt = b.transpose2();
        let run = |t: usize| {
            apf_par::with_threads(t, || {
                (a.matmul(&b), a.transpose2().matmul_tn(&b), a.matmul_nt(&bt))
            })
        };
        let (m1, tn1, nt1) = run(1);
        for t in [2usize, 3, 7] {
            let (m, tn, nt) = run(t);
            assert_eq!(m1, m, "matmul threads={t}");
            assert_eq!(tn1, tn, "matmul_tn threads={t}");
            assert_eq!(nt1, nt, "matmul_nt threads={t}");
        }
    }

    #[test]
    fn elementwise_and_reductions_thread_count_independent() {
        let a = pseudo(&[40_000], 5);
        let b = pseudo(&[40_000], 6);
        let run = |t: usize| {
            apf_par::with_threads(t, || {
                let mut acc = a.clone();
                acc.axpy(0.25, &b);
                acc.scale(1.5);
                let mapped = acc.map(|x| x * x + 0.1);
                let zipped = mapped.zip_map(&b, |x, y| x - y);
                (zipped.sum().to_bits(), zipped.norm_sq().to_bits(), zipped)
            })
        };
        let (s1, n1, z1) = run(1);
        for t in [2usize, 4, 7] {
            let (s, n, z) = run(t);
            assert_eq!(s1, s, "sum threads={t}");
            assert_eq!(n1, n, "norm_sq threads={t}");
            assert_eq!(z1, z, "data threads={t}");
        }
    }
}
