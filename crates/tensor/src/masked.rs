//! Freeze-mask kernels: select, fill, scatter, copy, axpy, and scale over
//! bit-packed freeze masks.
//!
//! APF freezes most scalars most of the time, so every dense pass over the
//! flat parameter vector wastes work proportional to the frozen fraction.
//! These kernels take the mask as packed 64-bit words (bit `j % 64` of word
//! `j / 64` set = scalar `j` frozen, the `apf-core` `FreezeMask` layout) and
//! work **word-at-a-time**: an all-frozen word is skipped with one compare,
//! an all-unfrozen word runs a full-width SIMD block, and mixed words are
//! decomposed into bit runs with `trailing_zeros`/`trailing_ones` — cost
//! scales with `len / 64` plus the unfrozen work, never with the frozen
//! scalar count.
//!
//! # Determinism
//!
//! Same contract as `gemm.rs`: the x86-64 paths (runtime AVX/SSE2 dispatch,
//! scalar fallback elsewhere) use only per-lane `mul`/`add`/`div` — every
//! lane performs exactly the scalar op sequence on its own index, so results
//! are bitwise identical to the portable reference at any lane width and on
//! any host. Frozen lanes are never read or written by the arithmetic
//! kernels, so `NaN`/`inf` garbage in frozen slots cannot leak.

/// Calls `f(start, end)` for each maximal run of **set** bits in `bits`
/// (relative bit indices within one word).
#[inline]
fn for_each_one_run(mut bits: u64, mut f: impl FnMut(usize, usize)) {
    while bits != 0 {
        let s = bits.trailing_zeros() as usize;
        let run = (bits >> s).trailing_ones() as usize;
        f(s, s + run);
        // Adding 1 << s carries through the lowest run and clears it.
        bits &= bits.wrapping_add(1u64 << s);
    }
}

/// The valid-bit mask for a word covering `nbits` scalars (`1..=64`).
#[inline]
fn word_limit_mask(nbits: usize) -> u64 {
    debug_assert!(0 < nbits && nbits <= 64);
    if nbits == 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

/// Drives a kernel over `len` scalars word-at-a-time, calling
/// `f(run_start, run_end)` for each maximal run of *active* scalars.
/// Inactive words cost one compare, fully-active words yield one whole-word
/// run (merged with the neighbors' runs only at word granularity, which is
/// enough for block kernels). Active means unfrozen, or frozen when
/// `invert` is set (the [`mask_fill`] direction).
#[inline]
fn drive(len: usize, words: &[u64], invert: bool, mut f: impl FnMut(usize, usize)) {
    assert!(
        words.len() >= len.div_ceil(64),
        "mask words too short: {} words for {len} scalars",
        words.len()
    );
    for (w, &word) in words.iter().enumerate() {
        let base = w * 64;
        if base >= len {
            break;
        }
        let limit = (base + 64).min(len);
        let valid = word_limit_mask(limit - base);
        let active = if invert { word } else { !word } & valid;
        if active == 0 {
            continue;
        }
        if active == valid {
            f(base, limit);
        } else {
            for_each_one_run(active, |s, e| f(base + s, base + e));
        }
    }
}

/// Appends the **unfrozen** scalars of `src` to `out`, in index order.
/// This is the compact-upload gather: no dense boolean pass, no per-scalar
/// branch.
pub fn mask_select(src: &[f32], words: &[u64], out: &mut Vec<f32>) {
    drive(src.len(), words, false, |s, e| {
        out.extend_from_slice(&src[s..e]);
    });
}

/// Scatters compact `values` into the **unfrozen** slots of `dst` in index
/// order (the inverse of [`mask_select`]); frozen slots are untouched.
///
/// # Panics
/// Panics if `values` does not hold exactly one value per unfrozen slot.
pub fn mask_scatter(dst: &mut [f32], values: &[f32], words: &[u64]) {
    let mut cursor = 0;
    drive(dst.len(), words, false, |s, e| {
        let n = e - s;
        let chunk = values
            .get(cursor..cursor + n)
            .expect("scatter value count mismatch");
        dst[s..e].copy_from_slice(chunk);
        cursor += n;
    });
    assert_eq!(cursor, values.len(), "scatter value count mismatch");
}

/// Overwrites the **frozen** slots of `dst` from the dense `src` — the
/// rollback kernel: `dst` is the live parameters, `src` the pinned values.
///
/// # Panics
/// Panics if `dst` and `src` lengths disagree.
pub fn mask_fill(dst: &mut [f32], src: &[f32], words: &[u64]) {
    assert_eq!(dst.len(), src.len(), "fill length mismatch");
    drive(dst.len(), words, true, |s, e| {
        copy_block(&mut dst[s..e], &src[s..e]);
    });
}

/// Overwrites the **unfrozen** slots of `dst` from the dense `src` — the
/// aggregate-application / partial-sync write-back kernel.
///
/// # Panics
/// Panics if `dst` and `src` lengths disagree.
pub fn mask_copy(dst: &mut [f32], src: &[f32], words: &[u64]) {
    assert_eq!(dst.len(), src.len(), "copy length mismatch");
    drive(dst.len(), words, false, |s, e| {
        copy_block(&mut dst[s..e], &src[s..e]);
    });
}

/// `y[j] += a * x[j]` for every **unfrozen** `j` — the sparse-aggregation
/// accumulator (weighted sums over client uploads without compacting first).
///
/// # Panics
/// Panics if `y` and `x` lengths disagree.
pub fn masked_axpy(y: &mut [f32], x: &[f32], a: f32, words: &[u64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    drive(y.len(), words, false, |s, e| {
        axpy_block(&mut y[s..e], &x[s..e], a);
    });
}

/// `y[j] /= d` for every **unfrozen** `j` — the weighted-mean normalizer.
/// Division (not multiplication by a reciprocal) to stay bitwise identical
/// to the scalar reference.
pub fn masked_div(y: &mut [f32], d: f32, words: &[u64]) {
    drive(y.len(), words, false, |s, e| {
        div_block(&mut y[s..e], d);
    });
}

/// Dense block copy, runtime-dispatched like the GEMM microkernel.
#[inline]
fn copy_block(dst: &mut [f32], src: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::gemm::use_avx() {
            // SAFETY: gated on runtime AVX detection.
            unsafe { x86::copy_avx(dst, src) };
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { x86::copy_sse2(dst, src) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dst.copy_from_slice(src);
}

/// Dense `y += a * x` block; per-lane `mul` + `add`, never FMA.
#[inline]
fn axpy_block(y: &mut [f32], x: &[f32], a: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::gemm::use_avx() {
            // SAFETY: gated on runtime AVX detection.
            unsafe { x86::axpy_avx(y, x, a) };
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { x86::axpy_sse2(y, x, a) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    axpy_generic(y, x, a);
}

/// Dense `y /= d` block; per-lane IEEE division.
#[inline]
fn div_block(y: &mut [f32], d: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::gemm::use_avx() {
            // SAFETY: gated on runtime AVX detection.
            unsafe { x86::div_avx(y, d) };
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { x86::div_sse2(y, d) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    div_generic(y, d);
}

/// Portable axpy; the semantic definition the SIMD paths match bitwise.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn axpy_generic(y: &mut [f32], x: &[f32], a: f32) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// Portable divide; the semantic definition the SIMD paths match bitwise.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn div_generic(y: &mut [f32], d: f32) {
    for yv in y.iter_mut() {
        *yv /= d;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Explicit-SIMD block kernels. Per-lane `mul`/`add`/`div` only — each
    //! lane computes the exact scalar op sequence, so lane width cannot
    //! change results; scalar tails reuse the same expressions.

    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports AVX; slices must be equal length.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn copy_avx(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + 8 <= n {
            _mm256_storeu_ps(
                dst.as_mut_ptr().add(i),
                _mm256_loadu_ps(src.as_ptr().add(i)),
            );
            i += 8;
        }
        dst[i..].copy_from_slice(&src[i..]);
    }

    /// # Safety
    /// SSE2 is unconditionally available on x86-64; slices equal length.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn copy_sse2(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            _mm_storeu_ps(dst.as_mut_ptr().add(i), _mm_loadu_ps(src.as_ptr().add(i)));
            i += 4;
        }
        dst[i..].copy_from_slice(&src[i..]);
    }

    /// # Safety
    /// Caller must ensure the host supports AVX; slices must be equal length.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn axpy_avx(y: &mut [f32], x: &[f32], a: f32) {
        let n = y.len();
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(
                y.as_mut_ptr().add(i),
                _mm256_add_ps(yv, _mm256_mul_ps(av, xv)),
            );
            i += 8;
        }
        for j in i..n {
            y[j] += a * x[j];
        }
    }

    /// # Safety
    /// SSE2 is unconditionally available on x86-64; slices equal length.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn axpy_sse2(y: &mut [f32], x: &[f32], a: f32) {
        let n = y.len();
        let av = _mm_set1_ps(a);
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm_loadu_ps(y.as_ptr().add(i));
            let xv = _mm_loadu_ps(x.as_ptr().add(i));
            _mm_storeu_ps(y.as_mut_ptr().add(i), _mm_add_ps(yv, _mm_mul_ps(av, xv)));
            i += 4;
        }
        for j in i..n {
            y[j] += a * x[j];
        }
    }

    /// # Safety
    /// Caller must ensure the host supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn div_avx(y: &mut [f32], d: f32) {
        let n = y.len();
        let dv = _mm256_set1_ps(d);
        let mut i = 0;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_div_ps(yv, dv));
            i += 8;
        }
        for yv in &mut y[i..] {
            *yv /= d;
        }
    }

    /// # Safety
    /// SSE2 is unconditionally available on x86-64.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn div_sse2(y: &mut [f32], d: f32) {
        let n = y.len();
        let dv = _mm_set1_ps(d);
        let mut i = 0;
        while i + 4 <= n {
            let yv = _mm_loadu_ps(y.as_ptr().add(i));
            _mm_storeu_ps(y.as_mut_ptr().add(i), _mm_div_ps(yv, dv));
            i += 4;
        }
        for yv in &mut y[i..] {
            *yv /= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs a boolean frozen mask into words (the `FreezeMask` layout).
    fn pack_words(frozen: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; frozen.len().div_ceil(64)];
        for (j, &f) in frozen.iter().enumerate() {
            if f {
                words[j / 64] |= 1 << (j % 64);
            }
        }
        words
    }

    fn pseudo(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32 + seed as f32) * 0.173).sin())
            .collect()
    }

    /// Masks exercising every word class: none frozen, all frozen, whole
    /// frozen/unfrozen words, runs crossing word boundaries, ragged tails.
    fn mask_cases(n: usize) -> Vec<Vec<bool>> {
        vec![
            vec![false; n],
            vec![true; n],
            (0..n).map(|j| j % 3 == 0).collect(),
            (0..n).map(|j| (j / 64) % 2 == 0).collect(),
            (0..n).map(|j| !(60..70).contains(&(j % 150))).collect(),
        ]
    }

    #[test]
    fn select_and_scatter_roundtrip_match_reference() {
        for n in [0usize, 1, 64, 65, 200, 333] {
            let src = pseudo(n, 1);
            for frozen in mask_cases(n) {
                let words = pack_words(&frozen);
                let mut got = Vec::new();
                mask_select(&src, &words, &mut got);
                let want: Vec<f32> = (0..n).filter(|&j| !frozen[j]).map(|j| src[j]).collect();
                assert_eq!(got, want, "select n={n}");
                let mut dst = pseudo(n, 2);
                let before = dst.clone();
                mask_scatter(&mut dst, &got, &words);
                for j in 0..n {
                    let want = if frozen[j] { before[j] } else { src[j] };
                    assert_eq!(dst[j].to_bits(), want.to_bits(), "scatter n={n} j={j}");
                }
            }
        }
    }

    #[test]
    fn fill_and_copy_match_reference() {
        for n in [0usize, 1, 63, 64, 65, 257] {
            let src = pseudo(n, 3);
            for frozen in mask_cases(n) {
                let words = pack_words(&frozen);
                let mut filled = pseudo(n, 4);
                let orig = filled.clone();
                mask_fill(&mut filled, &src, &words);
                let mut copied = orig.clone();
                mask_copy(&mut copied, &src, &words);
                for j in 0..n {
                    let (wf, wc) = if frozen[j] {
                        (src[j], orig[j])
                    } else {
                        (orig[j], src[j])
                    };
                    assert_eq!(filled[j].to_bits(), wf.to_bits(), "fill n={n} j={j}");
                    assert_eq!(copied[j].to_bits(), wc.to_bits(), "copy n={n} j={j}");
                }
            }
        }
    }

    #[test]
    fn axpy_and_div_are_bitwise_scalar() {
        for n in [0usize, 1, 64, 100, 321] {
            let x = pseudo(n, 5);
            for frozen in mask_cases(n) {
                let words = pack_words(&frozen);
                let mut y = pseudo(n, 6);
                let mut want = y.clone();
                masked_axpy(&mut y, &x, 0.37, &words);
                masked_div(&mut y, 3.0, &words);
                for j in 0..n {
                    if !frozen[j] {
                        want[j] += 0.37 * x[j];
                        want[j] /= 3.0;
                    }
                }
                for j in 0..n {
                    assert_eq!(y[j].to_bits(), want[j].to_bits(), "n={n} j={j}");
                }
            }
        }
    }

    #[test]
    fn frozen_garbage_does_not_leak() {
        // NaN in frozen slots of x must not propagate into y.
        let frozen = [true, false, true, false];
        let words = pack_words(&frozen);
        let x = [f32::NAN, 1.0, f32::INFINITY, 2.0];
        let mut y = [1.0f32, 1.0, 1.0, 1.0];
        masked_axpy(&mut y, &x, 2.0, &words);
        assert_eq!(y, [1.0, 3.0, 1.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "scatter value count mismatch")]
    fn scatter_rejects_wrong_value_count() {
        let words = pack_words(&[false, false]);
        mask_scatter(&mut [0.0, 0.0], &[1.0], &words);
    }

    #[test]
    fn one_run_decomposition_is_exact() {
        for bits in [0u64, 1, u64::MAX, 0b1011_0111, 1 << 63, (1 << 63) | 1] {
            let mut got = [false; 64];
            for_each_one_run(bits, |s, e| {
                for slot in got.iter_mut().take(e).skip(s) {
                    assert!(!*slot, "overlap");
                    *slot = true;
                }
            });
            for (j, &g) in got.iter().enumerate() {
                assert_eq!(g, bits >> j & 1 == 1, "bits={bits:#x} j={j}");
            }
        }
    }
}
