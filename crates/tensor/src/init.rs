//! Parameter initializers.

use crate::rng::Rng;
use crate::tensor::Tensor;

/// Kaiming (He) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / fan_in)`, the standard choice ahead of ReLU layers.
///
/// # Panics
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform_init(shape, -bound, bound, rng)
}

/// Xavier (Glorot) uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`, suited to tanh/sigmoid layers (LSTM).
///
/// # Panics
/// Panics if `fan_in + fan_out` is zero.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(shape, -bound, bound, rng)
}

/// Uniform initialization on `[lo, hi)`.
///
/// # Panics
/// Panics if `lo > hi`.
pub fn uniform_init(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Tensor {
    assert!(lo <= hi, "lo must not exceed hi");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Gaussian initialization with the given mean and standard deviation.
pub fn normal_init(shape: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| mean + std * rng.normal_f32()).collect();
    Tensor::from_vec(data, shape)
}

/// Draws one standard-normal sample (Box-Muller).
///
/// # Example
/// ```
/// let mut rng = apf_tensor::seeded_rng(0);
/// let z = apf_tensor::sample_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_normal(rng: &mut Rng) -> f32 {
    rng.normal_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let t = uniform_init(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let mut rng = seeded_rng(2);
        let small_fan = kaiming_uniform(&[2000], 4, &mut rng);
        let big_fan = kaiming_uniform(&[2000], 400, &mut rng);
        let max_small = small_fan.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_big = big_fan.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_big < max_small);
        assert!(max_small <= (6.0f32 / 4.0).sqrt());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = seeded_rng(3);
        let t = normal_init(&[20000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_init(&[16], -1.0, 1.0, &mut seeded_rng(7));
        let b = uniform_init(&[16], -1.0, 1.0, &mut seeded_rng(7));
        assert_eq!(a, b);
    }
}
