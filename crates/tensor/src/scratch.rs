//! Thread-local scratch workspace: recycled `f32` buffers for the hot path.
//!
//! The GEMM packing buffers, im2col planes, and the forward/backward
//! activation tensors in `apf-nn` all have sizes that recur every batch.
//! Allocating them per call costs a trip through the global allocator (and,
//! for large buffers, fresh page faults) thousands of times per round. This
//! module keeps a small per-thread pool of previously used buffers:
//! [`take`] hands out a cleared buffer (reusing the best-fitting pooled one
//! when available), [`give`] returns a buffer to the pool.
//!
//! Buffers never migrate between threads — each pool is thread-local, so
//! there is no locking and no sharing. A buffer taken on one pool thread and
//! given back on another simply warms the second thread's pool; steady-state
//! reuse only requires that each thread's take/give pattern recurs, which it
//! does because `apf-par` tasks run the same kernels round after round.
//!
//! [`stats`] exposes take/hit/miss counters so tests (and `bench-kernels`)
//! can assert the steady state allocates nothing: after a warm-up round,
//! `misses` must stay flat across further training rounds.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Max buffers retained per thread. Beyond this, [`give`] drops the incoming
/// buffer (the pool keeps its larger residents).
const MAX_BUFS: usize = 64;
/// Max total retained capacity per thread, in `f32` elements (64 MiB).
const MAX_FLOATS: usize = 1 << 24;

/// Counters for scratch-pool traffic on the calling thread.
///
/// `takes == hits + misses`; a miss is a real heap allocation. `gives`
/// counts buffers returned (whether or not the pool retained them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers requested via [`take`].
    pub takes: u64,
    /// Requests served from the pool (no allocation).
    pub hits: u64,
    /// Requests that had to allocate.
    pub misses: u64,
    /// Buffers handed back via [`give`].
    pub gives: u64,
}

/// Process-wide totals across every thread's pool, updated alongside the
/// per-thread counters (relaxed adds; the per-thread [`stats`] stay the
/// source of truth for single-thread asserts). These feed the
/// `scratch.hits`/`scratch.misses`/`scratch.alloc_bytes` gauges the fedsim
/// runner publishes, so pool health is visible on `/metrics` without
/// running `bench-kernels`.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
/// Bytes actually allocated on misses (capacity requested * 4).
static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Process-wide scratch totals: `(hits, misses, alloc_bytes)` summed over
/// every thread since process start ([`reset_stats`]/[`clear`] reset only
/// the calling thread's counters, not these).
pub fn global_stats() -> (u64, u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
        GLOBAL_ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

#[derive(Default)]
struct Pool {
    bufs: Vec<Vec<f32>>,
    total_cap: usize,
    stats: ScratchStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Takes a cleared buffer with capacity at least `len` from the pool,
/// allocating only when no pooled buffer is large enough (a `miss`).
/// The returned buffer has `len() == 0`.
fn take_raw(len: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.stats.takes += 1;
        // Best fit: the smallest pooled buffer that is large enough.
        let best = p
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                p.stats.hits += 1;
                GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
                let mut buf = p.bufs.swap_remove(i);
                p.total_cap -= buf.capacity();
                buf.clear();
                buf
            }
            None => {
                p.stats.misses += 1;
                GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
                GLOBAL_ALLOC_BYTES.fetch_add(len as u64 * 4, Ordering::Relaxed);
                Vec::with_capacity(len)
            }
        }
    })
}

/// Takes a zero-filled buffer of exactly `len` elements from the pool.
pub fn take(len: usize) -> Vec<f32> {
    let mut buf = take_raw(len);
    buf.resize(len, 0.0);
    buf
}

/// Takes a buffer holding a copy of `src` from the pool (no zero-fill pass).
pub fn take_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = take_raw(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Takes an *empty* buffer with capacity at least `cap` from the pool, for
/// callers that build content with `extend_from_slice` (no zero-fill pass).
pub fn take_reserved(cap: usize) -> Vec<f32> {
    take_raw(cap)
}

/// Returns a buffer to the calling thread's pool for reuse.
///
/// Zero-capacity buffers are dropped. When the pool is at capacity
/// ([`MAX_BUFS`] buffers or [`MAX_FLOATS`] total elements), the smallest
/// resident buffers are evicted to make room; an incoming buffer larger
/// than the whole budget is simply dropped.
pub fn give(buf: Vec<f32>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.stats.gives += 1;
        if buf.capacity() == 0 || buf.capacity() > MAX_FLOATS {
            return;
        }
        while p.bufs.len() >= MAX_BUFS || p.total_cap + buf.capacity() > MAX_FLOATS {
            let smallest = p
                .bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match smallest {
                Some(i) => {
                    let evicted = p.bufs.swap_remove(i);
                    p.total_cap -= evicted.capacity();
                }
                None => break,
            }
        }
        p.total_cap += buf.capacity();
        p.bufs.push(buf);
    });
}

/// Snapshot of the calling thread's scratch counters.
pub fn stats() -> ScratchStats {
    POOL.with(|p| p.borrow().stats)
}

/// Resets the calling thread's scratch counters (the pooled buffers stay).
pub fn reset_stats() {
    POOL.with(|p| p.borrow_mut().stats = ScratchStats::default());
}

/// Drops every pooled buffer on the calling thread and resets counters.
pub fn clear() {
    POOL.with(|p| *p.borrow_mut() = Pool::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_buffers() {
        clear();
        let a = take(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 0.0));
        give(a);
        let s0 = stats();
        assert_eq!(s0.misses, 1);
        // Second take of the same size must be a hit.
        let b = take(100);
        let s1 = stats();
        assert_eq!(s1.hits, 1);
        assert_eq!(s1.misses, 1);
        assert!(b.iter().all(|&x| x == 0.0), "reused buffer must be zeroed");
        give(b);
        clear();
    }

    #[test]
    fn take_copy_copies_without_zeroing() {
        clear();
        give(take(8));
        let c = take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        assert_eq!(stats().hits, 1, "take_copy must reuse the pooled buffer");
        give(c);
        clear();
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        clear();
        give(Vec::with_capacity(1000));
        give(Vec::with_capacity(10));
        let b = take(5);
        assert!(b.capacity() < 1000, "should reuse the small buffer");
        give(b);
        let big = take(500);
        assert!(big.capacity() >= 1000, "should reuse the large buffer");
        clear();
    }

    #[test]
    fn global_stats_accumulate_across_threads() {
        let (h0, m0, b0) = global_stats();
        clear();
        give(take(16)); // miss (64 bytes) then pooled
        let a = take(16); // hit
        give(a);
        std::thread::spawn(|| {
            clear();
            let b = take(8); // miss on a fresh thread (32 bytes)
            give(b);
            clear();
        })
        .join()
        .unwrap();
        let (h1, m1, b1) = global_stats();
        assert!(h1 > h0, "hits {h0} -> {h1}");
        assert!(m1 >= m0 + 2, "misses {m0} -> {m1}");
        assert!(b1 >= b0 + 64 + 32, "alloc bytes {b0} -> {b1}");
        clear();
    }

    #[test]
    fn pool_respects_buffer_cap() {
        clear();
        for _ in 0..(MAX_BUFS + 10) {
            give(Vec::with_capacity(4));
        }
        POOL.with(|p| assert!(p.borrow().bufs.len() <= MAX_BUFS));
        clear();
    }
}
