//! Dense `f32` tensor substrate for the APF reproduction.
//!
//! This crate provides the minimal numerical kernels the rest of the
//! workspace builds on: an owned row-major [`Tensor`], matrix products,
//! im2col-based convolution and pooling kernels, parameter initializers,
//! deterministic seeded RNG helpers, and small statistics utilities.
//!
//! Everything is implemented from scratch (no BLAS, no ndarray): the matmul
//! family runs on an in-tree packed, register-tiled GEMM (see `gemm.rs` and
//! the "Kernel design" section of EXPERIMENTS.md), convolution im2cols
//! straight into the packed panels, and hot-path buffers come from the
//! thread-local [`scratch`] pool, keeping the whole reproduction
//! self-contained, auditable, and allocation-free at steady state.
//!
//! # Example
//!
//! ```
//! use apf_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod conv;
mod gemm;
mod init;
mod masked;
mod rng;
pub mod scratch;
pub mod slab;
mod stats;
mod tensor;

pub use conv::{
    avgpool2d_backward, avgpool2d_forward, col2im, conv2d_backward, conv2d_backward_fused,
    conv2d_forward, conv2d_forward_fused, im2col, maxpool2d_backward, maxpool2d_forward,
    Conv2dGrads, ConvSpec, PoolSpec,
};
pub use init::{kaiming_uniform, normal_init, sample_normal, uniform_init, xavier_uniform};
pub use masked::{mask_copy, mask_fill, mask_scatter, mask_select, masked_axpy, masked_div};
pub use rng::{derive_seed, seeded_rng, splitmix64, Rng, Sample, SampleRange, SliceRandom};
pub use scratch::ScratchStats;
pub use slab::SlabStats;
pub use stats::{l1_norm, l2_norm, mean, percentile, variance};
pub use tensor::Tensor;
