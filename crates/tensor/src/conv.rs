//! Convolution and pooling kernels (im2col-based), with full backward passes.
//!
//! Layout conventions: activations are `[N, C, H, W]`, convolution weights are
//! `[O, C * kh * kw]` (pre-flattened), and the im2col matrix is
//! `[C * kh * kw, N * out_h * out_w]` so that the forward pass is a single
//! matrix product `weight x cols`.
//!
//! The hot path is the **fused** pair [`conv2d_forward_fused`] /
//! [`conv2d_backward_fused`]: instead of materializing the full im2col
//! matrix they generate its entries *directly into the packed GEMM panels*
//! (the B-operand packing closure of [`crate::gemm`]), so the column matrix
//! never exists in memory and the working set per task is one KC×NR panel.
//! The unfused [`im2col`]/[`conv2d_forward`]/[`conv2d_backward`] entry
//! points are kept — they are the reference the fused path is tested
//! against, and some callers want the explicit matrix.
//!
//! The im2col/col2im transforms and the layout-shuffling assembly loops are
//! parallelized over contiguous row or plane blocks; within each block the
//! per-element operation order matches the serial code, so outputs are
//! bitwise identical at any `APF_PAR_THREADS`. The fused path reuses the
//! GEMM's ascending-`k` accumulation, so its outputs are bitwise identical
//! to the unfused `matmul`-based path too.

use crate::gemm;
use crate::tensor::{rows_per_block, Tensor, PAR_OPS_MIN};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "input {h}x{w} (+pad {}) smaller than kernel {}",
            self.padding,
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Number of weight scalars: `out_channels * in_channels * kernel^2`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Square window side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
}

impl PoolSpec {
    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics if the input is smaller than the window.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input smaller than pool window"
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the flattened weight, `[O, C*kh*kw]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub bias: Tensor,
}

/// Unfolds `input` (`[N, C, H, W]`) into the im2col matrix
/// `[C*k*k, N*out_h*out_w]` for the given convolution geometry.
///
/// # Panics
/// Panics if `input` is not rank 4 or channels disagree with `spec`.
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    let s = input.shape();
    assert_eq!(s.len(), 4, "im2col expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let k = spec.kernel;
    let (oh, ow) = spec.out_size(h, w);
    let cols_w = n * oh * ow;
    let rows = c * k * k;
    let mut cols_t = Tensor::scratch(&[rows, cols_w]);
    let data = input.data();
    let pad = spec.padding as isize;
    // Row-outer so each parallel chunk is a contiguous block of complete
    // matrix rows; every element is written at most once (pure gather), so
    // the result is independent of chunking.
    let rows_per = rows_per_block(rows, cols_w.max(1));
    apf_par::par_chunks_mut(cols_t.data_mut(), rows_per * cols_w, |bi, block| {
        for (ri, cols_row) in block.chunks_mut(cols_w).enumerate() {
            let row = bi * rows_per + ri;
            let ci = row / (k * k);
            let ky = (row / k) % k;
            let kx = row % k;
            for ni in 0..n {
                let plane = &data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let row_base = ni * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    let out_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols_row[out_base + ox] = in_row[ix as usize];
                    }
                }
            }
        }
    });
    cols_t
}

/// Folds an im2col-layout gradient back into an input-shaped tensor
/// (the adjoint of [`im2col`]): overlapping windows accumulate.
///
/// # Panics
/// Panics if `cols` does not have the layout produced by `im2col` for
/// `(n, h, w)` under `spec`.
pub fn col2im(cols: &Tensor, spec: &ConvSpec, n: usize, h: usize, w: usize) -> Tensor {
    let k = spec.kernel;
    let c = spec.in_channels;
    let (oh, ow) = spec.out_size(h, w);
    let cols_w = n * oh * ow;
    assert_eq!(cols.shape(), &[c * k * k, cols_w], "col2im layout mismatch");
    let mut out = Tensor::scratch(&[n, c, h, w]);
    let data = cols.data();
    let pad = spec.padding as isize;
    // Parallel over contiguous `[h, w]` planes. Overlapping windows only
    // accumulate *within* a plane, and the per-plane loop order (ky, kx, oy,
    // ox) matches the serial code exactly, so splitting across planes keeps
    // every float association identical.
    let hw = h * w;
    let planes_per = rows_per_block(n * c, k * k * oh * ow);
    apf_par::par_chunks_mut(out.data_mut(), planes_per * hw, |bi, block| {
        for (pi, plane) in block.chunks_mut(hw).enumerate() {
            let nc = bi * planes_per + pi;
            let (ni, ci) = (nc / c, nc % c);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ci * k * k + ky * k + kx;
                    let row_base = row * cols_w + ni * oh * ow;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let out_base = iy as usize * w;
                        let in_base = row_base + oy * ow;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            plane[out_base + ix as usize] += data[in_base + ox];
                        }
                    }
                }
            }
        }
    });
    out
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, C, H, W]`, `weight` is `[O, C*k*k]`, `bias` is `[O]`.
/// Returns `(output [N, O, oh, ow], cols)` where `cols` is the im2col matrix
/// to be reused by [`conv2d_backward`].
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor) {
    let s = input.shape();
    assert_eq!(s.len(), 4, "conv2d expects [N,C,H,W]");
    let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
    let k = spec.kernel;
    assert_eq!(
        weight.shape(),
        &[spec.out_channels, spec.in_channels * k * k],
        "weight shape mismatch"
    );
    assert_eq!(bias.numel(), spec.out_channels, "bias shape mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let cols = im2col(input, spec);
    // [O, CKK] x [CKK, N*oh*ow] -> [O, N*oh*ow]
    let out_mat = weight.matmul(&cols);
    let o = spec.out_channels;
    let hw = oh * ow;
    let mut out = Tensor::scratch(&[n, o, oh, ow]);
    assemble_output(out.data_mut(), out_mat.data(), bias.data(), n, o, hw);
    out_mat.recycle();
    (out, cols)
}

/// Assembles the GEMM output `[O, N*oh*ow]` into `[N, O, oh, ow]`, adding
/// the per-channel bias. Each output plane is written exactly once (pure
/// scatter + bias add), so parallel chunking cannot change the result.
fn assemble_output(out: &mut [f32], om: &[f32], b: &[f32], n: usize, o: usize, hw: usize) {
    let planes_per = rows_per_block(n * o, hw.max(1));
    apf_par::par_chunks_mut(out, planes_per * hw, |bi, block| {
        for (pi, dst) in block.chunks_mut(hw).enumerate() {
            let pl = bi * planes_per + pi;
            let (ni, oi) = (pl / o, pl % o);
            let src = &om[oi * n * hw + ni * hw..oi * n * hw + (ni + 1) * hw];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v + b[oi];
            }
        }
    });
}

/// 2-D convolution backward pass.
///
/// `grad_out` is `[N, O, oh, ow]`; `cols` is the matrix returned by
/// [`conv2d_forward`]. Returns gradients for input, weight, and bias.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    spec: &ConvSpec,
    input_hw: (usize, usize),
) -> Conv2dGrads {
    let s = grad_out.shape();
    assert_eq!(s.len(), 4, "grad_out must be [N,O,oh,ow]");
    let (n, o, oh, ow) = (s[0], s[1], s[2], s[3]);
    assert_eq!(o, spec.out_channels);
    let hw = oh * ow;
    let grad_mat = rearrange_grad(grad_out, n, o, hw);
    let grad_weight = grad_mat.matmul_nt(cols); // [O, CKK]
    let grad_bias = bias_sums(&grad_mat, n, o, hw);
    let grad_cols = weight.matmul_tn(&grad_mat); // [CKK, N*oh*ow]
    let (h, w) = input_hw;
    let grad_input = col2im(&grad_cols, spec, n, h, w);
    grad_cols.recycle();
    grad_mat.recycle();
    Conv2dGrads {
        input: grad_input,
        weight: grad_weight,
        bias: grad_bias,
    }
}

/// Rearranges `grad_out` `[N,O,oh,ow]` into `[O, N*oh*ow]` (mirroring the
/// forward layout); each destination plane is a disjoint copy.
fn rearrange_grad(grad_out: &Tensor, n: usize, o: usize, hw: usize) -> Tensor {
    let mut gm = Tensor::scratch(&[o, n * hw]);
    let g = grad_out.data();
    let planes_per = rows_per_block(o * n, hw.max(1));
    apf_par::par_chunks_mut(gm.data_mut(), planes_per * hw, |bi, block| {
        for (pi, dst) in block.chunks_mut(hw).enumerate() {
            let pl = bi * planes_per + pi;
            let (oi, ni) = (pl / n, pl % n);
            let src = &g[(ni * o + oi) * hw..(ni * o + oi + 1) * hw];
            dst.copy_from_slice(src);
        }
    });
    gm
}

/// Per-output-channel sums of `grad_mat` `[O, N*oh*ow]` (the bias gradient).
fn bias_sums(grad_mat: &Tensor, n: usize, o: usize, hw: usize) -> Tensor {
    let mut b = Tensor::scratch(&[o]);
    let gm = grad_mat.data();
    for (oi, bo) in b.data_mut().iter_mut().enumerate() {
        *bo = gm[oi * n * hw..(oi + 1) * n * hw].iter().sum();
    }
    b
}

/// Convolution geometry prepared for generating im2col entries on the fly.
///
/// The fused GEMM path never materializes the `[C*k*k, N*oh*ow]` column
/// matrix; instead the B-operand packing closures ask this struct for spans
/// of it, computed straight from the input tensor. Entry `(row, col)` of the
/// virtual matrix is `input[ni, ci, iy, ix]` with
/// `row = ci*k*k + ky*k + kx`, `col = ni*oh*ow + oy*ow + ox`,
/// `iy = oy*stride + ky - pad`, `ix = ox*stride + kx - pad` (0.0 when the
/// sample falls in the zero padding) — exactly what [`im2col`] writes, so
/// the fused and unfused paths feed the GEMM bitwise-identical panels.
struct ColsGeom {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: isize,
    oh: usize,
    ow: usize,
}

impl ColsGeom {
    fn new(spec: &ConvSpec, h: usize, w: usize) -> Self {
        let (oh, ow) = spec.out_size(h, w);
        ColsGeom {
            c: spec.in_channels,
            h,
            w,
            k: spec.kernel,
            stride: spec.stride,
            pad: spec.padding as isize,
            oh,
            ow,
        }
    }

    /// Decomposes a virtual-matrix row index into `(ci, ky, kx)`.
    #[inline]
    fn row_parts(&self, row: usize) -> (usize, usize, usize) {
        (
            row / (self.k * self.k),
            (row / self.k) % self.k,
            row % self.k,
        )
    }

    /// Fills `dst[j] = cols[row][col0 + j]`, walking output-row runs so the
    /// inner loop stays within one input row.
    fn fill_row_span(&self, data: &[f32], row: usize, col0: usize, dst: &mut [f32]) {
        let (ci, ky, kx) = self.row_parts(row);
        let ohw = self.oh * self.ow;
        let mut j = 0;
        while j < dst.len() {
            let col = col0 + j;
            let ni = col / ohw;
            let rem = col % ohw;
            let (oy, ox0) = (rem / self.ow, rem % self.ow);
            let run = (self.ow - ox0).min(dst.len() - j);
            let iy = (oy * self.stride) as isize + ky as isize - self.pad;
            if iy < 0 || iy >= self.h as isize {
                dst[j..j + run].fill(0.0);
            } else {
                let in_row =
                    &data[((ni * self.c + ci) * self.h + iy as usize) * self.w..][..self.w];
                for (t, d) in dst[j..j + run].iter_mut().enumerate() {
                    let ix = ((ox0 + t) * self.stride) as isize + kx as isize - self.pad;
                    *d = if ix < 0 || ix >= self.w as isize {
                        0.0
                    } else {
                        in_row[ix as usize]
                    };
                }
            }
            j += run;
        }
    }

    /// B-packing closure body for the forward GEMM: NR-column panels of
    /// `cols` at depth `pc..pc+kc_eff`, columns `jc..jc+nc_eff`.
    fn pack_cols_panels(
        &self,
        data: &[f32],
        dst: &mut [f32],
        pc: usize,
        kc_eff: usize,
        jc: usize,
        nc_eff: usize,
    ) {
        for (jr, panel) in dst.chunks_exact_mut(kc_eff * gemm::NR).enumerate() {
            let cols_n = gemm::NR.min(nc_eff - jr * gemm::NR);
            let col0 = jc + jr * gemm::NR;
            for p in 0..kc_eff {
                let out = &mut panel[p * gemm::NR..(p + 1) * gemm::NR];
                self.fill_row_span(data, pc + p, col0, &mut out[..cols_n]);
                out[cols_n..].fill(0.0);
            }
        }
    }

    /// B-packing closure body for the grad-weight GEMM, whose B operand is
    /// the *transpose* `colsᵀ [N*oh*ow, C*k*k]`: panel entry `(p, j)` is
    /// `cols[jc + j][pc + p]`. Row decompositions are hoisted per panel.
    fn pack_cols_t_panels(
        &self,
        data: &[f32],
        dst: &mut [f32],
        pc: usize,
        kc_eff: usize,
        jc: usize,
        nc_eff: usize,
    ) {
        let ohw = self.oh * self.ow;
        for (jr, panel) in dst.chunks_exact_mut(kc_eff * gemm::NR).enumerate() {
            let cols_n = gemm::NR.min(nc_eff - jr * gemm::NR);
            let mut rows = [(0usize, 0usize, 0usize); gemm::NR];
            for (j, r) in rows.iter_mut().enumerate().take(cols_n) {
                *r = self.row_parts(jc + jr * gemm::NR + j);
            }
            for p in 0..kc_eff {
                let col = pc + p;
                let ni = col / ohw;
                let rem = col % ohw;
                let (oy, ox) = (rem / self.ow, rem % self.ow);
                let out = &mut panel[p * gemm::NR..(p + 1) * gemm::NR];
                for (o, &(ci, ky, kx)) in out.iter_mut().zip(&rows).take(cols_n) {
                    let iy = (oy * self.stride) as isize + ky as isize - self.pad;
                    let ix = (ox * self.stride) as isize + kx as isize - self.pad;
                    *o = if iy < 0 || iy >= self.h as isize || ix < 0 || ix >= self.w as isize {
                        0.0
                    } else {
                        data[((ni * self.c + ci) * self.h + iy as usize) * self.w + ix as usize]
                    };
                }
                out[cols_n..].fill(0.0);
            }
        }
    }
}

/// Fused 2-D convolution forward pass: im2col directly into the packed GEMM
/// panels, so the column matrix never exists in memory.
///
/// Takes the same operands as [`conv2d_forward`] and produces a bitwise
/// identical output tensor (asserted in debug builds for small problems);
/// it just skips materializing (and returning) `cols`. Pair it with
/// [`conv2d_backward_fused`], which re-derives the column entries from the
/// input instead of consuming a cached `cols`.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_forward_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
) -> Tensor {
    let s = input.shape();
    assert_eq!(s.len(), 4, "conv2d expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let k = spec.kernel;
    assert_eq!(
        weight.shape(),
        &[spec.out_channels, spec.in_channels * k * k],
        "weight shape mismatch"
    );
    assert_eq!(bias.numel(), spec.out_channels, "bias shape mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let o = spec.out_channels;
    let ckk = c * k * k;
    let cols_w = n * oh * ow;
    let ops = o * ckk * cols_w;
    if ops < gemm::PACK_OPS_MIN {
        // Tiny problem: the unfused path already uses the naive reference
        // matmul here, and packing traffic would dominate.
        let (out, cols) = conv2d_forward(input, weight, bias, spec);
        cols.recycle();
        return out;
    }
    let geom = ColsGeom::new(spec, h, w);
    let wdata = weight.data();
    let idata = input.data();
    let mut out_mat = Tensor::scratch(&[o, cols_w]);
    gemm::gemm_packed(
        o,
        ckk,
        cols_w,
        &|dst: &mut [f32], ic, mc_eff, pc, kc_eff| {
            gemm::pack_a_rowmajor(dst, wdata, ckk, ic, mc_eff, pc, kc_eff)
        },
        &|dst: &mut [f32], pc, kc_eff, jc, nc_eff| {
            geom.pack_cols_panels(idata, dst, pc, kc_eff, jc, nc_eff)
        },
        out_mat.data_mut(),
    );
    let hw = oh * ow;
    let mut out = Tensor::scratch(&[n, o, oh, ow]);
    assemble_output(out.data_mut(), out_mat.data(), bias.data(), n, o, hw);
    out_mat.recycle();
    #[cfg(debug_assertions)]
    if ops <= gemm::REF_CHECK_OPS_MAX {
        let (want, cols) = conv2d_forward(input, weight, bias, spec);
        cols.recycle();
        for (i, (g, r)) in out.data().iter().zip(want.data()).enumerate() {
            assert_eq!(
                g.to_bits(),
                r.to_bits(),
                "fused conv2d forward diverged from unfused at {i}: {g} vs {r}"
            );
        }
        want.recycle();
    }
    out
}

/// Fused 2-D convolution backward pass.
///
/// Unlike [`conv2d_backward`] it takes the forward `input` instead of the
/// cached im2col matrix: the grad-weight GEMM regenerates the column entries
/// (transposed) directly into its packed B panels. Gradients are bitwise
/// identical to the unfused path (asserted in debug builds for small
/// problems).
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_backward_fused(
    grad_out: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let s = grad_out.shape();
    assert_eq!(s.len(), 4, "grad_out must be [N,O,oh,ow]");
    let (n, o, oh, ow) = (s[0], s[1], s[2], s[3]);
    assert_eq!(o, spec.out_channels);
    let si = input.shape();
    assert_eq!(si.len(), 4, "input must be [N,C,H,W]");
    let (c, h, w) = (si[1], si[2], si[3]);
    assert_eq!(si[0], n, "batch mismatch");
    assert_eq!(c, spec.in_channels, "channel mismatch");
    assert_eq!(spec.out_size(h, w), (oh, ow), "conv geometry mismatch");
    let k = spec.kernel;
    let ckk = c * k * k;
    let hw = oh * ow;
    let cols_w = n * hw;
    let ops = o * cols_w * ckk;
    if ops < gemm::PACK_OPS_MIN {
        let cols = im2col(input, spec);
        let grads = conv2d_backward(grad_out, &cols, weight, spec, (h, w));
        cols.recycle();
        return grads;
    }
    let grad_mat = rearrange_grad(grad_out, n, o, hw);
    let geom = ColsGeom::new(spec, h, w);
    let gm = grad_mat.data();
    let idata = input.data();
    // grad_weight [O, CKK] = grad_mat [O, N*hw] · colsᵀ [N*hw, CKK].
    let mut grad_weight = Tensor::scratch(&[o, ckk]);
    gemm::gemm_packed(
        o,
        cols_w,
        ckk,
        &|dst: &mut [f32], ic, mc_eff, pc, kc_eff| {
            gemm::pack_a_rowmajor(dst, gm, cols_w, ic, mc_eff, pc, kc_eff)
        },
        &|dst: &mut [f32], pc, kc_eff, jc, nc_eff| {
            geom.pack_cols_t_panels(idata, dst, pc, kc_eff, jc, nc_eff)
        },
        grad_weight.data_mut(),
    );
    let grad_bias = bias_sums(&grad_mat, n, o, hw);
    let grad_cols = weight.matmul_tn(&grad_mat); // [CKK, N*oh*ow]
    let grad_input = col2im(&grad_cols, spec, n, h, w);
    grad_cols.recycle();
    grad_mat.recycle();
    #[cfg(debug_assertions)]
    if ops <= gemm::REF_CHECK_OPS_MAX {
        let cols = im2col(input, spec);
        let want = conv2d_backward(grad_out, &cols, weight, spec, (h, w));
        cols.recycle();
        for (what, got_t, want_t) in [
            ("input", &grad_input, &want.input),
            ("weight", &grad_weight, &want.weight),
            ("bias", &grad_bias, &want.bias),
        ] {
            for (i, (g, r)) in got_t.data().iter().zip(want_t.data()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "fused conv2d backward grad_{what} diverged at {i}: {g} vs {r}"
                );
            }
        }
    }
    Conv2dGrads {
        input: grad_input,
        weight: grad_weight,
        bias: grad_bias,
    }
}

/// Max-pooling forward. Returns `(output [N,C,oh,ow], argmax)` where `argmax`
/// stores, per output element, the flat index into `input`'s data of the
/// selected maximum (used by [`maxpool2d_backward`]).
///
/// # Panics
/// Panics if `input` is not rank 4.
pub fn maxpool2d_forward(input: &Tensor, spec: &PoolSpec) -> (Tensor, Vec<usize>) {
    let s = input.shape();
    assert_eq!(s.len(), 4, "maxpool expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let (oh, ow) = spec.out_size(h, w);
    let ohw = oh * ow;
    let mut out = Tensor::scratch(&[n, c, oh, ow]);
    let mut arg = vec![0usize; n * c * ohw];
    let data = input.data();
    // Each `[oh, ow]` plane of (out, arg) depends on one input plane only;
    // argmax selection per window is order-independent across planes.
    let pool_plane = |nc: usize, o_plane: &mut [f32], a_plane: &mut [usize]| {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = plane_base + oy * spec.stride * w + ox * spec.stride;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        let idx = plane_base + iy * w + ix;
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                o_plane[oy * ow + ox] = best;
                a_plane[oy * ow + ox] = best_idx;
            }
        }
    };
    let cost = ohw * spec.kernel * spec.kernel;
    let planes = out
        .data_mut()
        .chunks_mut(ohw)
        .zip(arg.chunks_mut(ohw))
        .enumerate();
    if apf_par::threads() <= 1 || (n * c).saturating_mul(cost) < PAR_OPS_MIN {
        for (nc, (op, ap)) in planes {
            pool_plane(nc, op, ap);
        }
    } else {
        apf_par::scope(|s| {
            let pool_plane = &pool_plane;
            for (nc, (op, ap)) in planes {
                s.spawn(move || pool_plane(nc, op, ap));
            }
        });
    }
    (out, arg)
}

/// Max-pooling backward: scatters `grad_out` to the argmax positions.
///
/// # Panics
/// Panics if `argmax` length differs from `grad_out`'s element count.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(grad_out.numel(), argmax.len(), "argmax length mismatch");
    let mut grad_in = Tensor::scratch(input_shape);
    let gi = grad_in.data_mut();
    for (&idx, &g) in argmax.iter().zip(grad_out.data()) {
        gi[idx] += g;
    }
    grad_in
}

/// Average-pooling forward over `[N,C,H,W]`.
///
/// # Panics
/// Panics if `input` is not rank 4.
pub fn avgpool2d_forward(input: &Tensor, spec: &PoolSpec) -> Tensor {
    let s = input.shape();
    assert_eq!(s.len(), 4, "avgpool expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let (oh, ow) = spec.out_size(h, w);
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut out_t = Tensor::scratch(&[n, c, oh, ow]);
    let out = out_t.data_mut();
    let data = input.data();
    for nc in 0..n * c {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        acc += data[plane_base + iy * w + ix];
                    }
                }
                out[nc * oh * ow + oy * ow + ox] = acc * inv;
            }
        }
    }
    out_t
}

/// Average-pooling backward: spreads each output gradient uniformly over its
/// window.
///
/// # Panics
/// Panics if shapes are inconsistent with `spec`.
pub fn avgpool2d_backward(grad_out: &Tensor, spec: &PoolSpec, input_shape: &[usize]) -> Tensor {
    let s = grad_out.shape();
    assert_eq!(s.len(), 4, "grad_out must be [N,C,oh,ow]");
    let (n, c, oh, ow) = (s[0], s[1], s[2], s[3]);
    let (h, w) = (input_shape[2], input_shape[3]);
    assert_eq!(spec.out_size(h, w), (oh, ow), "pool geometry mismatch");
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut grad_in = Tensor::scratch(input_shape);
    let gi = grad_in.data_mut();
    let g = grad_out.data();
    for nc in 0..n * c {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let gv = g[nc * oh * ow + oy * ow + ox] * inv;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        gi[plane_base + iy * w + ix] += gv;
                    }
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let s = input.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let k = spec.kernel;
        let (oh, ow) = spec.out_size(h, w);
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for ni in 0..n {
            for oi in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[oi];
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let iv = input.data()
                                        [((ni * c + ci) * h + iy as usize) * w + ix as usize];
                                    let wv =
                                        weight.data()[oi * c * k * k + ci * k * k + ky * k + kx];
                                    acc += iv * wv;
                                }
                            }
                        }
                        out.data_mut()[((ni * spec.out_channels + oi) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn det_input(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.1).collect(),
            shape,
        )
    }

    #[test]
    fn conv_forward_matches_naive_padded() {
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[2, 2, 5, 5]);
        let weight = det_input(&[3, 2 * 9]);
        let bias = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        let naive = naive_conv(&input, &weight, &bias, &spec);
        assert_eq!(out.shape(), naive.shape());
        for (a, b) in out.data().iter().zip(naive.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_forward_matches_naive_strided() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let input = det_input(&[1, 1, 6, 6]);
        let weight = det_input(&[2, 4]);
        let bias = Tensor::zeros(&[2]);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        let naive = naive_conv(&input, &weight, &bias, &spec);
        for (a, b) in out.data().iter().zip(naive.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of the adjoint, which is exactly what backward needs.
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = det_input(&[2, 2, 4, 4]);
        let cols = im2col(&x, &spec);
        let y = det_input(&[cols.shape()[0], cols.shape()[1]]);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 4, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_weight_matches_finite_difference() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[1, 1, 4, 4]);
        let mut weight = det_input(&[2, 9]);
        let bias = Tensor::zeros(&[2]);
        // Loss = sum(output); analytic gradient via backward with ones.
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (4, 4));
        let eps = 1e-3;
        for wi in [0usize, 5, 11, 17] {
            let orig = weight.data()[wi];
            weight.data_mut()[wi] = orig + eps;
            let (op, _) = conv2d_forward(&input, &weight, &bias, &spec);
            weight.data_mut()[wi] = orig - eps;
            let (om, _) = conv2d_forward(&input, &weight, &bias, &spec);
            weight.data_mut()[wi] = orig;
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.weight.data()[wi];
            assert!(
                (fd - an).abs() < 1e-2,
                "weight[{wi}]: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn conv_backward_input_matches_finite_difference() {
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let mut input = det_input(&[1, 2, 3, 3]);
        let weight = det_input(&[1, 8]);
        let bias = Tensor::zeros(&[1]);
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (3, 3));
        let eps = 1e-3;
        for xi in [0usize, 4, 9, 17] {
            let orig = input.data()[xi];
            input.data_mut()[xi] = orig + eps;
            let (op, _) = conv2d_forward(&input, &weight, &bias, &spec);
            input.data_mut()[xi] = orig - eps;
            let (om, _) = conv2d_forward(&input, &weight, &bias, &spec);
            input.data_mut()[xi] = orig;
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.input.data()[xi];
            assert!((fd - an).abs() < 1e-2, "input[{xi}]: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn conv_backward_bias_counts_positions() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[2, 1, 4, 4]);
        let weight = det_input(&[2, 9]);
        let bias = Tensor::zeros(&[2]);
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (4, 4));
        // d(sum out)/d(bias_o) = number of output positions = N * oh * ow.
        assert_eq!(grads.bias.data(), &[32.0, 32.0]);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 1.0, //
                0.0, 0.0, 9.0, 1.0, //
                1.0, 7.0, 1.0, 1.0,
            ],
            &[1, 1, 4, 4],
        );
        let spec = PoolSpec {
            kernel: 2,
            stride: 2,
        };
        let (out, arg) = maxpool2d_forward(&input, &spec);
        assert_eq!(out.data(), &[3.0, 5.0, 7.0, 9.0]);
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let grad_in = maxpool2d_backward(&grad_out, &arg, &[1, 1, 4, 4]);
        assert_eq!(grad_in.data()[4], 1.0); // the 3.0
        assert_eq!(grad_in.data()[2], 2.0); // the 5.0
        assert_eq!(grad_in.data()[13], 3.0); // the 7.0
        assert_eq!(grad_in.data()[10], 4.0); // the 9.0
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn avgpool_roundtrip_gradient_mass() {
        let input = det_input(&[2, 3, 4, 4]);
        let spec = PoolSpec {
            kernel: 2,
            stride: 2,
        };
        let out = avgpool2d_forward(&input, &spec);
        assert_eq!(out.shape(), &[2, 3, 2, 2]);
        // Mean is preserved by average pooling with exact tiling.
        assert!((out.mean() - input.mean()).abs() < 1e-5);
        let grad_out = Tensor::ones(out.shape());
        let grad_in = avgpool2d_backward(&grad_out, &spec, &[2, 3, 4, 4]);
        // Each input position receives 1/4 from exactly one window.
        assert!(grad_in.data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn fused_forward_is_bitwise_identical_to_unfused() {
        // Covers padded/strided geometry and a batch large enough that the
        // GEMM takes the packed path (ops >= PACK_OPS_MIN), across thread
        // counts. The debug-build parity assert inside the fused functions
        // double-checks every case too.
        for (spec, shape) in [
            (
                ConvSpec {
                    in_channels: 3,
                    out_channels: 5,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                [4usize, 3, 9, 9],
            ),
            (
                ConvSpec {
                    in_channels: 2,
                    out_channels: 4,
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                },
                [3, 2, 8, 8],
            ),
        ] {
            let input = det_input(&shape);
            let weight = det_input(&[
                spec.out_channels,
                spec.in_channels * spec.kernel * spec.kernel,
            ]);
            let bias = det_input(&[spec.out_channels]);
            let (want, cols) = conv2d_forward(&input, &weight, &bias, &spec);
            cols.recycle();
            for t in [1usize, 2, 7] {
                let got = apf_par::with_threads(t, || {
                    conv2d_forward_fused(&input, &weight, &bias, &spec)
                });
                assert_eq!(got.shape(), want.shape());
                for (g, r) in got.data().iter().zip(want.data()) {
                    assert_eq!(g.to_bits(), r.to_bits(), "threads={t}: {g} vs {r}");
                }
            }
        }
    }

    #[test]
    fn fused_backward_is_bitwise_identical_to_unfused() {
        let spec = ConvSpec {
            in_channels: 3,
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[3, 3, 8, 8]);
        let weight = det_input(&[4, 3 * 9]);
        let bias = det_input(&[4]);
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = det_input(out.shape());
        let want = conv2d_backward(&grad_out, &cols, &weight, &spec, (8, 8));
        cols.recycle();
        for t in [1usize, 2, 7] {
            let got = apf_par::with_threads(t, || {
                conv2d_backward_fused(&grad_out, &input, &weight, &spec)
            });
            for (what, g_t, w_t) in [
                ("input", &got.input, &want.input),
                ("weight", &got.weight, &want.weight),
                ("bias", &got.bias, &want.bias),
            ] {
                assert_eq!(g_t.shape(), w_t.shape(), "threads={t} grad_{what}");
                for (g, r) in g_t.data().iter().zip(w_t.data()) {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "threads={t} grad_{what}: {g} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_tiny_problem_takes_reference_path() {
        // Below PACK_OPS_MIN the fused entry points fall back to the unfused
        // implementation; results must still agree exactly.
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let input = det_input(&[1, 1, 3, 3]);
        let weight = det_input(&[1, 4]);
        let bias = det_input(&[1]);
        let (want, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let got = conv2d_forward_fused(&input, &weight, &bias, &spec);
        for (g, r) in got.data().iter().zip(want.data()) {
            assert_eq!(g.to_bits(), r.to_bits());
        }
        let grad_out = det_input(want.shape());
        let wantb = conv2d_backward(&grad_out, &cols, &weight, &spec, (3, 3));
        let gotb = conv2d_backward_fused(&grad_out, &input, &weight, &spec);
        for (g, r) in gotb.weight.data().iter().zip(wantb.weight.data()) {
            assert_eq!(g.to_bits(), r.to_bits());
        }
        cols.recycle();
    }

    #[test]
    fn out_size_math() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
            padding: 2,
        };
        assert_eq!(spec.out_size(16, 16), (16, 16));
        let spec2 = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(spec2.out_size(8, 8), (4, 4));
    }
}
