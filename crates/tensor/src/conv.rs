//! Convolution and pooling kernels (im2col-based), with full backward passes.
//!
//! Layout conventions: activations are `[N, C, H, W]`, convolution weights are
//! `[O, C * kh * kw]` (pre-flattened), and the im2col matrix is
//! `[C * kh * kw, N * out_h * out_w]` so that the forward pass is a single
//! matrix product `weight x cols`.
//!
//! The im2col/col2im transforms and the layout-shuffling assembly loops are
//! parallelized over contiguous row or plane blocks; within each block the
//! per-element operation order matches the serial code, so outputs are
//! bitwise identical at any `APF_PAR_THREADS`.

use crate::tensor::{rows_per_block, Tensor, PAR_OPS_MIN};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvSpec {
    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "input {h}x{w} (+pad {}) smaller than kernel {}",
            self.padding,
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Number of weight scalars: `out_channels * in_channels * kernel^2`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Square window side.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
}

impl PoolSpec {
    /// Output spatial size for an `h x w` input.
    ///
    /// # Panics
    /// Panics if the input is smaller than the window.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "input smaller than pool window"
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub input: Tensor,
    /// Gradient w.r.t. the flattened weight, `[O, C*kh*kw]`.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, `[O]`.
    pub bias: Tensor,
}

/// Unfolds `input` (`[N, C, H, W]`) into the im2col matrix
/// `[C*k*k, N*out_h*out_w]` for the given convolution geometry.
///
/// # Panics
/// Panics if `input` is not rank 4 or channels disagree with `spec`.
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    let s = input.shape();
    assert_eq!(s.len(), 4, "im2col expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let k = spec.kernel;
    let (oh, ow) = spec.out_size(h, w);
    let cols_w = n * oh * ow;
    let rows = c * k * k;
    let mut cols = vec![0.0f32; rows * cols_w];
    let data = input.data();
    let pad = spec.padding as isize;
    // Row-outer so each parallel chunk is a contiguous block of complete
    // matrix rows; every element is written at most once (pure gather), so
    // the result is independent of chunking.
    let rows_per = rows_per_block(rows, cols_w.max(1));
    apf_par::par_chunks_mut(&mut cols, rows_per * cols_w, |bi, block| {
        for (ri, cols_row) in block.chunks_mut(cols_w).enumerate() {
            let row = bi * rows_per + ri;
            let ci = row / (k * k);
            let ky = (row / k) % k;
            let kx = row % k;
            for ni in 0..n {
                let plane = &data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let row_base = ni * oh * ow;
                for oy in 0..oh {
                    let iy = (oy * spec.stride) as isize + ky as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    let out_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride) as isize + kx as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols_row[out_base + ox] = in_row[ix as usize];
                    }
                }
            }
        }
    });
    Tensor::from_vec(cols, &[rows, cols_w])
}

/// Folds an im2col-layout gradient back into an input-shaped tensor
/// (the adjoint of [`im2col`]): overlapping windows accumulate.
///
/// # Panics
/// Panics if `cols` does not have the layout produced by `im2col` for
/// `(n, h, w)` under `spec`.
pub fn col2im(cols: &Tensor, spec: &ConvSpec, n: usize, h: usize, w: usize) -> Tensor {
    let k = spec.kernel;
    let c = spec.in_channels;
    let (oh, ow) = spec.out_size(h, w);
    let cols_w = n * oh * ow;
    assert_eq!(cols.shape(), &[c * k * k, cols_w], "col2im layout mismatch");
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    let pad = spec.padding as isize;
    // Parallel over contiguous `[h, w]` planes. Overlapping windows only
    // accumulate *within* a plane, and the per-plane loop order (ky, kx, oy,
    // ox) matches the serial code exactly, so splitting across planes keeps
    // every float association identical.
    let hw = h * w;
    let planes_per = rows_per_block(n * c, k * k * oh * ow);
    apf_par::par_chunks_mut(&mut out, planes_per * hw, |bi, block| {
        for (pi, plane) in block.chunks_mut(hw).enumerate() {
            let nc = bi * planes_per + pi;
            let (ni, ci) = (nc / c, nc % c);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ci * k * k + ky * k + kx;
                    let row_base = row * cols_w + ni * oh * ow;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride) as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let out_base = iy as usize * w;
                        let in_base = row_base + oy * ow;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride) as isize + kx as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            plane[out_base + ix as usize] += data[in_base + ox];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, h, w])
}

/// 2-D convolution forward pass.
///
/// `input` is `[N, C, H, W]`, `weight` is `[O, C*k*k]`, `bias` is `[O]`.
/// Returns `(output [N, O, oh, ow], cols)` where `cols` is the im2col matrix
/// to be reused by [`conv2d_backward`].
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor) {
    let s = input.shape();
    assert_eq!(s.len(), 4, "conv2d expects [N,C,H,W]");
    let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
    let k = spec.kernel;
    assert_eq!(
        weight.shape(),
        &[spec.out_channels, spec.in_channels * k * k],
        "weight shape mismatch"
    );
    assert_eq!(bias.numel(), spec.out_channels, "bias shape mismatch");
    let (oh, ow) = spec.out_size(h, w);
    let cols = im2col(input, spec);
    // [O, CKK] x [CKK, N*oh*ow] -> [O, N*oh*ow]
    let out_mat = weight.matmul(&cols);
    let o = spec.out_channels;
    let hw = oh * ow;
    let mut out = vec![0.0f32; n * o * hw];
    let om = out_mat.data();
    let b = bias.data();
    // Assemble [O, N*oh*ow] -> [N, O, oh, ow] plane by plane; each output
    // plane is written exactly once (pure scatter + bias add).
    let planes_per = rows_per_block(n * o, hw.max(1));
    apf_par::par_chunks_mut(&mut out, planes_per * hw, |bi, block| {
        for (pi, dst) in block.chunks_mut(hw).enumerate() {
            let pl = bi * planes_per + pi;
            let (ni, oi) = (pl / o, pl % o);
            let src = &om[oi * n * hw + ni * hw..oi * n * hw + (ni + 1) * hw];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v + b[oi];
            }
        }
    });
    (Tensor::from_vec(out, &[n, o, oh, ow]), cols)
}

/// 2-D convolution backward pass.
///
/// `grad_out` is `[N, O, oh, ow]`; `cols` is the matrix returned by
/// [`conv2d_forward`]. Returns gradients for input, weight, and bias.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    spec: &ConvSpec,
    input_hw: (usize, usize),
) -> Conv2dGrads {
    let s = grad_out.shape();
    assert_eq!(s.len(), 4, "grad_out must be [N,O,oh,ow]");
    let (n, o, oh, ow) = (s[0], s[1], s[2], s[3]);
    assert_eq!(o, spec.out_channels);
    let hw = oh * ow;
    // Rearrange grad_out [N,O,oh,ow] into [O, N*oh*ow] to mirror the
    // forward; each destination plane is a disjoint copy.
    let mut gm = vec![0.0f32; o * n * hw];
    let g = grad_out.data();
    let planes_per = rows_per_block(o * n, hw.max(1));
    apf_par::par_chunks_mut(&mut gm, planes_per * hw, |bi, block| {
        for (pi, dst) in block.chunks_mut(hw).enumerate() {
            let pl = bi * planes_per + pi;
            let (oi, ni) = (pl / n, pl % n);
            let src = &g[(ni * o + oi) * hw..(ni * o + oi + 1) * hw];
            dst.copy_from_slice(src);
        }
    });
    let grad_mat = Tensor::from_vec(gm, &[o, n * hw]);
    let grad_weight = grad_mat.matmul_nt(cols); // [O, CKK]
    let grad_bias = {
        let mut b = vec![0.0f32; o];
        for (oi, bo) in b.iter_mut().enumerate() {
            *bo = grad_mat.data()[oi * n * hw..(oi + 1) * n * hw].iter().sum();
        }
        Tensor::from_vec(b, &[o])
    };
    let grad_cols = weight.matmul_tn(&grad_mat); // [CKK, N*oh*ow]
    let (h, w) = input_hw;
    let grad_input = col2im(&grad_cols, spec, n, h, w);
    Conv2dGrads {
        input: grad_input,
        weight: grad_weight,
        bias: grad_bias,
    }
}

/// Max-pooling forward. Returns `(output [N,C,oh,ow], argmax)` where `argmax`
/// stores, per output element, the flat index into `input`'s data of the
/// selected maximum (used by [`maxpool2d_backward`]).
///
/// # Panics
/// Panics if `input` is not rank 4.
pub fn maxpool2d_forward(input: &Tensor, spec: &PoolSpec) -> (Tensor, Vec<usize>) {
    let s = input.shape();
    assert_eq!(s.len(), 4, "maxpool expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let (oh, ow) = spec.out_size(h, w);
    let ohw = oh * ow;
    let mut out = vec![0.0f32; n * c * ohw];
    let mut arg = vec![0usize; n * c * ohw];
    let data = input.data();
    // Each `[oh, ow]` plane of (out, arg) depends on one input plane only;
    // argmax selection per window is order-independent across planes.
    let pool_plane = |nc: usize, o_plane: &mut [f32], a_plane: &mut [usize]| {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = plane_base + oy * spec.stride * w + ox * spec.stride;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        let idx = plane_base + iy * w + ix;
                        if data[idx] > best {
                            best = data[idx];
                            best_idx = idx;
                        }
                    }
                }
                o_plane[oy * ow + ox] = best;
                a_plane[oy * ow + ox] = best_idx;
            }
        }
    };
    let cost = ohw * spec.kernel * spec.kernel;
    let planes = out.chunks_mut(ohw).zip(arg.chunks_mut(ohw)).enumerate();
    if apf_par::threads() <= 1 || (n * c).saturating_mul(cost) < PAR_OPS_MIN {
        for (nc, (op, ap)) in planes {
            pool_plane(nc, op, ap);
        }
    } else {
        apf_par::scope(|s| {
            let pool_plane = &pool_plane;
            for (nc, (op, ap)) in planes {
                s.spawn(move || pool_plane(nc, op, ap));
            }
        });
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Max-pooling backward: scatters `grad_out` to the argmax positions.
///
/// # Panics
/// Panics if `argmax` length differs from `grad_out`'s element count.
pub fn maxpool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(grad_out.numel(), argmax.len(), "argmax length mismatch");
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    for (&idx, &g) in argmax.iter().zip(grad_out.data()) {
        gi[idx] += g;
    }
    grad_in
}

/// Average-pooling forward over `[N,C,H,W]`.
///
/// # Panics
/// Panics if `input` is not rank 4.
pub fn avgpool2d_forward(input: &Tensor, spec: &PoolSpec) -> Tensor {
    let s = input.shape();
    assert_eq!(s.len(), 4, "avgpool expects [N,C,H,W]");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let (oh, ow) = spec.out_size(h, w);
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let data = input.data();
    for nc in 0..n * c {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        acc += data[plane_base + iy * w + ix];
                    }
                }
                out[nc * oh * ow + oy * ow + ox] = acc * inv;
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Average-pooling backward: spreads each output gradient uniformly over its
/// window.
///
/// # Panics
/// Panics if shapes are inconsistent with `spec`.
pub fn avgpool2d_backward(grad_out: &Tensor, spec: &PoolSpec, input_shape: &[usize]) -> Tensor {
    let s = grad_out.shape();
    assert_eq!(s.len(), 4, "grad_out must be [N,C,oh,ow]");
    let (n, c, oh, ow) = (s[0], s[1], s[2], s[3]);
    let (h, w) = (input_shape[2], input_shape[3]);
    assert_eq!(spec.out_size(h, w), (oh, ow), "pool geometry mismatch");
    let inv = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    let gi = grad_in.data_mut();
    let g = grad_out.data();
    for nc in 0..n * c {
        let plane_base = nc * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let gv = g[nc * oh * ow + oy * ow + ox] * inv;
                for ky in 0..spec.kernel {
                    let iy = oy * spec.stride + ky;
                    for kx in 0..spec.kernel {
                        let ix = ox * spec.stride + kx;
                        gi[plane_base + iy * w + ix] += gv;
                    }
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let s = input.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let k = spec.kernel;
        let (oh, ow) = spec.out_size(h, w);
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for ni in 0..n {
            for oi in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[oi];
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let iv = input.data()
                                        [((ni * c + ci) * h + iy as usize) * w + ix as usize];
                                    let wv =
                                        weight.data()[oi * c * k * k + ci * k * k + ky * k + kx];
                                    acc += iv * wv;
                                }
                            }
                        }
                        out.data_mut()[((ni * spec.out_channels + oi) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn det_input(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.1).collect(),
            shape,
        )
    }

    #[test]
    fn conv_forward_matches_naive_padded() {
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[2, 2, 5, 5]);
        let weight = det_input(&[3, 2 * 9]);
        let bias = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        let naive = naive_conv(&input, &weight, &bias, &spec);
        assert_eq!(out.shape(), naive.shape());
        for (a, b) in out.data().iter().zip(naive.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_forward_matches_naive_strided() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 2,
            stride: 2,
            padding: 0,
        };
        let input = det_input(&[1, 1, 6, 6]);
        let weight = det_input(&[2, 4]);
        let bias = Tensor::zeros(&[2]);
        let (out, _) = conv2d_forward(&input, &weight, &bias, &spec);
        let naive = naive_conv(&input, &weight, &bias, &spec);
        for (a, b) in out.data().iter().zip(naive.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
        // property of the adjoint, which is exactly what backward needs.
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let x = det_input(&[2, 2, 4, 4]);
        let cols = im2col(&x, &spec);
        let y = det_input(&[cols.shape()[0], cols.shape()[1]]);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 2, 4, 4);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_weight_matches_finite_difference() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[1, 1, 4, 4]);
        let mut weight = det_input(&[2, 9]);
        let bias = Tensor::zeros(&[2]);
        // Loss = sum(output); analytic gradient via backward with ones.
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (4, 4));
        let eps = 1e-3;
        for wi in [0usize, 5, 11, 17] {
            let orig = weight.data()[wi];
            weight.data_mut()[wi] = orig + eps;
            let (op, _) = conv2d_forward(&input, &weight, &bias, &spec);
            weight.data_mut()[wi] = orig - eps;
            let (om, _) = conv2d_forward(&input, &weight, &bias, &spec);
            weight.data_mut()[wi] = orig;
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.weight.data()[wi];
            assert!(
                (fd - an).abs() < 1e-2,
                "weight[{wi}]: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn conv_backward_input_matches_finite_difference() {
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 1,
            kernel: 2,
            stride: 1,
            padding: 0,
        };
        let mut input = det_input(&[1, 2, 3, 3]);
        let weight = det_input(&[1, 8]);
        let bias = Tensor::zeros(&[1]);
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (3, 3));
        let eps = 1e-3;
        for xi in [0usize, 4, 9, 17] {
            let orig = input.data()[xi];
            input.data_mut()[xi] = orig + eps;
            let (op, _) = conv2d_forward(&input, &weight, &bias, &spec);
            input.data_mut()[xi] = orig - eps;
            let (om, _) = conv2d_forward(&input, &weight, &bias, &spec);
            input.data_mut()[xi] = orig;
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.input.data()[xi];
            assert!((fd - an).abs() < 1e-2, "input[{xi}]: fd={fd} analytic={an}");
        }
    }

    #[test]
    fn conv_backward_bias_counts_positions() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = det_input(&[2, 1, 4, 4]);
        let weight = det_input(&[2, 9]);
        let bias = Tensor::zeros(&[2]);
        let (out, cols) = conv2d_forward(&input, &weight, &bias, &spec);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&grad_out, &cols, &weight, &spec, (4, 4));
        // d(sum out)/d(bias_o) = number of output positions = N * oh * ow.
        assert_eq!(grads.bias.data(), &[32.0, 32.0]);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 1.0, //
                0.0, 0.0, 9.0, 1.0, //
                1.0, 7.0, 1.0, 1.0,
            ],
            &[1, 1, 4, 4],
        );
        let spec = PoolSpec {
            kernel: 2,
            stride: 2,
        };
        let (out, arg) = maxpool2d_forward(&input, &spec);
        assert_eq!(out.data(), &[3.0, 5.0, 7.0, 9.0]);
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let grad_in = maxpool2d_backward(&grad_out, &arg, &[1, 1, 4, 4]);
        assert_eq!(grad_in.data()[4], 1.0); // the 3.0
        assert_eq!(grad_in.data()[2], 2.0); // the 5.0
        assert_eq!(grad_in.data()[13], 3.0); // the 7.0
        assert_eq!(grad_in.data()[10], 4.0); // the 9.0
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn avgpool_roundtrip_gradient_mass() {
        let input = det_input(&[2, 3, 4, 4]);
        let spec = PoolSpec {
            kernel: 2,
            stride: 2,
        };
        let out = avgpool2d_forward(&input, &spec);
        assert_eq!(out.shape(), &[2, 3, 2, 2]);
        // Mean is preserved by average pooling with exact tiling.
        assert!((out.mean() - input.mean()).abs() < 1e-5);
        let grad_out = Tensor::ones(out.shape());
        let grad_in = avgpool2d_backward(&grad_out, &spec, &[2, 3, 4, 4]);
        // Each input position receives 1/4 from exactly one window.
        assert!(grad_in.data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn out_size_math() {
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 5,
            stride: 1,
            padding: 2,
        };
        assert_eq!(spec.out_size(16, 16), (16, 16));
        let spec2 = ConvSpec {
            in_channels: 1,
            out_channels: 1,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(spec2.out_size(8, 8), (4, 4));
    }
}
