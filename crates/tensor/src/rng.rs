//! Deterministic seeded RNG helpers.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed so
//! that experiments are reproducible bit-for-bit, and so that the APF#/APF++
//! randomized freezing masks can be derived *identically on every client*
//! without transmitting them (§6.2 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 mixing function.
///
/// Used both as a tiny standalone PRNG and to derive independent child seeds
/// from a base seed plus a salt.
///
/// # Example
/// ```
/// let a = apf_tensor::splitmix64(42);
/// let b = apf_tensor::splitmix64(42);
/// assert_eq!(a, b);
/// assert_ne!(a, apf_tensor::splitmix64(43));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from `(base, salt)`.
///
/// Distinct salts yield (with overwhelming probability) unrelated streams, so
/// e.g. client `i`'s data shuffling can use `derive_seed(seed, i as u64)`.
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ splitmix64(salt.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Builds a [`StdRng`] from a `u64` seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_salt_sensitive() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
    }

    #[test]
    fn derive_seed_children_differ() {
        let s = 12345;
        let kids: Vec<u64> = (0..16).map(|i| derive_seed(s, i)).collect();
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                assert_ne!(kids[i], kids[j], "children {i} and {j} collide");
            }
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
