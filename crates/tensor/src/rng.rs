//! Deterministic seeded RNG: the workspace's only source of randomness.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed so
//! that experiments are reproducible bit-for-bit, and so that the APF#/APF++
//! randomized freezing masks can be derived *identically on every client*
//! without transmitting them (§6.2 of the paper).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small, fast,
//! entirely in-tree (the workspace builds with zero external dependencies),
//! and with a fixed output stream that will never change underneath the
//! golden tests.

use std::ops::Range;

/// One step of the SplitMix64 mixing function.
///
/// Used both as a tiny standalone PRNG and to derive independent child seeds
/// from a base seed plus a salt.
///
/// # Example
/// ```
/// let a = apf_tensor::splitmix64(42);
/// let b = apf_tensor::splitmix64(42);
/// assert_eq!(a, b);
/// assert_ne!(a, apf_tensor::splitmix64(43));
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent child seed from `(base, salt)`.
///
/// Distinct salts yield (with overwhelming probability) unrelated streams, so
/// e.g. client `i`'s data shuffling can use `derive_seed(seed, i as u64)`.
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    splitmix64(base ^ splitmix64(salt.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// The 256-bit state is expanded from a `u64` seed with SplitMix64, so every
/// seed (including 0) yields a well-mixed state. The same seed always
/// produces the same stream, on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            let out = splitmix64(sm);
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            out
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a value of type `T` from its natural distribution: floats are
    /// uniform on `[0, 1)`, integers uniform over the full type, `bool` fair.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// One standard-normal sample (Box–Muller, `f32`).
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = self.gen_range(f32::EPSILON..1.0);
        let u2 = self.gen_range(0.0f32..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// One standard-normal sample (Box–Muller, `f64`).
    pub fn normal_f64(&mut self) -> f64 {
        let u1 = self.gen_range(f64::EPSILON..1.0);
        let u2 = self.gen_range(0.0f64..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }

    /// Forks off an independent child generator (advances this one).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// The raw 256-bit generator state, for compact suspend/resume of a
    /// stream (e.g. a dormant client's shuffle RNG in the population
    /// simulator).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`],
    /// continuing the stream exactly where it left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }
}

/// Types [`Rng::gen`] can draw.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng) -> u32 {
        rng.next_u32()
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f32 {
    /// Uniform on `[0, 1)` using the top 24 bits.
    fn sample(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    /// Uniform on `[0, 1)` using the top 53 bits.
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Uniform draw from `lo..hi`.
    fn sample_range(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(rng: &mut Rng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Modulo bias is < span / 2^64: irrelevant at our spans.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for f32 {
    fn sample_range(rng: &mut Rng, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range in gen_range");
        let v = lo + rng.gen::<f32>() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleRange for f64 {
    fn sample_range(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range in gen_range");
        let v = lo + rng.gen::<f64>() * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
}

/// `rand`-style shuffle/choose methods on slices, for call sites that read
/// more naturally as `xs.shuffle(&mut rng)`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut Rng);
    /// A uniformly chosen element, or `None` if empty.
    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        rng.shuffle(self);
    }

    fn choose<'a>(&'a self, rng: &mut Rng) -> Option<&'a T> {
        rng.choose(self)
    }
}

/// Builds an [`Rng`] from a `u64` seed.
///
/// (Alias for [`Rng::new`]; the historical entry point used throughout the
/// workspace.)
pub fn seeded_rng(seed: u64) -> Rng {
    Rng::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_salt_sensitive() {
        assert_eq!(splitmix64(7), splitmix64(7));
        assert_ne!(splitmix64(7), splitmix64(8));
    }

    #[test]
    fn derive_seed_children_differ() {
        let s = 12345;
        let kids: Vec<u64> = (0..16).map(|i| derive_seed(s, i)).collect();
        for i in 0..kids.len() {
            for j in (i + 1)..kids.len() {
                assert_ne!(kids[i], kids[j], "children {i} and {j} collide");
            }
        }
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the SplitMix64(0)-expanded state.
        // Pinned so the stream can never silently change: every golden test
        // in the workspace depends on it.
        let mut r = Rng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = Rng::new(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(got, again);
        assert_ne!(got[0], got[1]);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let x = r.gen::<f32>();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y = r.gen::<f64>();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::new(2);
        for _ in 0..10_000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let n = r.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut r = Rng::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(4);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::new(6);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = r.choose(&xs).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(r.choose::<i32>(&[]).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::new(7);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = Rng::new(11);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::new(8);
        let mut a = parent.split();
        let mut b = parent.split();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
