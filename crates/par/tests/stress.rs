//! Pool stress tests: nested scopes, panic-in-task propagation, zero-work
//! ranges, and many concurrent small scopes. `scripts/verify.sh` runs this
//! suite explicitly under several `APF_PAR_THREADS` values.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use apf_par::{map_reduce, par_chunks_mut, parallel_for, scope, with_threads};

#[test]
fn nested_scopes_do_not_deadlock() {
    for t in [1usize, 2, 4] {
        with_threads(t, || {
            let total = AtomicUsize::new(0);
            // Outer tasks each open an inner scope: with a naive blocking
            // join this deadlocks as soon as tasks outnumber workers.
            scope(|outer| {
                for _ in 0..16 {
                    let total = &total;
                    outer.spawn(move || {
                        scope(|inner| {
                            for _ in 0..8 {
                                inner.spawn(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 16 * 8, "threads={t}");
        });
    }
}

#[test]
fn deeply_nested_parallel_for() {
    with_threads(4, || {
        let hits = AtomicUsize::new(0);
        parallel_for(0..64, 4, |outer| {
            for _ in outer {
                parallel_for(0..32, 4, |inner| {
                    hits.fetch_add(inner.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64 * 32);
    });
}

#[test]
fn panic_in_task_propagates_after_siblings_finish() {
    for t in [1usize, 2, 4] {
        with_threads(t, || {
            let finished = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                scope(|s| {
                    for i in 0..32 {
                        let finished = &finished;
                        s.spawn(move || {
                            if i == 13 {
                                panic!("task 13 exploded");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            let payload = result.expect_err("scope must re-raise the task panic");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(msg.contains("task 13"), "threads={t}: got {msg:?}");
            // Pooled execution joins every sibling before re-raising; the
            // serial fallback matches a plain loop, stopping at the panic.
            let expect = if t == 1 { 13 } else { 31 };
            assert_eq!(finished.load(Ordering::Relaxed), expect, "threads={t}");
        });
    }
}

#[test]
fn panic_in_scope_closure_propagates() {
    with_threads(2, || {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                panic!("closure itself panics");
            });
        }));
        assert!(result.is_err());
        // The spawned task was still joined before the panic propagated.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn pool_survives_panics() {
    with_threads(2, || {
        for round in 0..8 {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                scope(|s| {
                    s.spawn(|| panic!("round {round}"));
                });
            }));
        }
        // After eight panicking scopes the pool still computes correctly.
        let n = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                let n = &n;
                s.spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 64);
    });
}

#[test]
fn zero_work_everywhere() {
    for t in [1usize, 4] {
        with_threads(t, || {
            parallel_for(0..0, 8, |_| panic!("no work expected"));
            parallel_for(10..10, 1, |_| panic!("no work expected"));
            par_chunks_mut(&mut [] as &mut [u8], 4, |_, _| panic!("no chunks"));
            assert_eq!(map_reduce(0..0, 4, |_| 1u64, |a, b| a + b), None);
            scope(|_| { /* no spawns at all */ });
        });
    }
}

#[test]
fn many_small_scopes_from_many_threads() {
    // Hammer the shared queue from several OS threads at once.
    std::thread::scope(|ts| {
        for _ in 0..4 {
            ts.spawn(|| {
                with_threads(3, || {
                    for _ in 0..50 {
                        let mut data = vec![1u32; 64];
                        par_chunks_mut(&mut data, 8, |_, c| {
                            for x in c {
                                *x += 1;
                            }
                        });
                        assert!(data.iter().all(|&x| x == 2));
                    }
                });
            });
        }
    });
}

#[test]
fn results_identical_across_thread_counts() {
    let run = |t: usize| {
        with_threads(t, || {
            let mut out = vec![0f32; 4096];
            par_chunks_mut(&mut out, 100, |i, c| {
                for (j, x) in c.iter_mut().enumerate() {
                    let idx = i * 100 + j;
                    *x = (idx as f32 * 0.01).sin();
                }
            });
            let sum = map_reduce(
                0..out.len(),
                512,
                |r| out[r].iter().sum::<f32>(),
                |a, b| a + b,
            )
            .unwrap();
            (out, sum)
        })
    };
    let (base_out, base_sum) = run(1);
    for t in [2usize, 5, 8] {
        let (out, sum) = run(t);
        assert_eq!(base_out, out, "threads={t}");
        assert_eq!(base_sum.to_bits(), sum.to_bits(), "threads={t}");
    }
}
