//! **`apf-par`** — a zero-dependency scoped thread pool with chunked data
//! parallelism for the APF workspace.
//!
//! The workspace is hermetic (no registry crates, see DESIGN.md), so
//! `rayon` is off the table. This crate supplies the subset the numerical
//! kernels actually need, built only on `std::thread`, channels-free
//! mutex/condvar queues, and atomics:
//!
//! * **A global worker pool** — lazily started, sized by `APF_PAR_THREADS`
//!   (default: [`std::thread::available_parallelism`]). Workers live for the
//!   process; idle workers cost nothing but their stacks.
//! * **[`scope`]** — structured concurrency: spawn borrowing closures, all
//!   joined before `scope` returns. Panics inside tasks propagate to the
//!   caller. Nested scopes are supported (a worker running a task that opens
//!   its own scope helps drain the shared queue instead of blocking, so the
//!   pool cannot deadlock on nesting).
//! * **[`parallel_for`]** — chunked iteration over an index range.
//! * **[`parallel_for_each`]** — one task per index, for caller-sized work
//!   units (the packed GEMM's cache panels).
//! * **[`par_chunks_mut`]** — disjoint `&mut` chunks of a slice dispatched
//!   across the pool (the backbone of the row-blocked tensor kernels).
//! * **[`map_reduce`]** — chunked map-reduce whose chunk boundaries depend
//!   only on the requested grain, **never** on the thread count, and whose
//!   reduction folds partial results in ascending chunk order. Floating
//!   point reductions are therefore bitwise identical at any
//!   `APF_PAR_THREADS` value.
//!
//! # Determinism contract
//!
//! `threads() == 1` is an *exact serial fallback*: every task runs inline on
//! the calling thread, in spawn order, with no pool involvement. For
//! `threads() > 1` the primitives guarantee that what is computed (and, for
//! [`map_reduce`], the association order of the reduction) does not depend
//! on the thread count — only *where* each chunk executes varies. Kernels
//! built on these primitives (see `apf-tensor`) produce bitwise-identical
//! results at any thread count.
//!
//! # Configuration
//!
//! * `APF_PAR_THREADS=N` — pool parallelism (read once, at first use;
//!   `1` disables the pool entirely).
//! * [`set_threads`] — runtime override of the global parallelism.
//! * [`with_threads`] — thread-local scoped override, used by tests and
//!   benches to compare thread counts inside one process without racing
//!   other threads.
//!
//! # Example
//!
//! ```
//! // Square 10k numbers across the pool, then reduce deterministically.
//! let mut xs: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
//! apf_par::par_chunks_mut(&mut xs, 1024, |_chunk_idx, chunk| {
//!     for x in chunk {
//!         *x = *x * *x;
//!     }
//! });
//! let total = apf_par::map_reduce(0..xs.len(), 4096, |r| {
//!     xs[r].iter().sum::<f32>()
//! }, |a, b| a + b)
//! .unwrap_or(0.0);
//! assert!(total > 0.0);
//! ```

mod ops;
mod pool;

pub use ops::{map_reduce, par_chunks_mut, parallel_for, parallel_for_each};
pub use pool::{scope, set_threads, threads, with_threads, Scope};

/// A reasonable per-task chunk length for `len` items of roughly uniform
/// cost: aims at ~4 chunks per pool thread (so stragglers rebalance) while
/// never going below one item.
///
/// Chunk boundaries produced from this value depend on the *current* thread
/// count; use it only for element-independent work (e.g. disjoint output
/// blocks), never to fix reduction boundaries — [`map_reduce`] handles that
/// itself from its grain.
pub fn chunk_len(len: usize) -> usize {
    len.div_ceil(4 * threads().max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_is_positive_and_covers() {
        for len in [0usize, 1, 7, 1000] {
            let c = chunk_len(len);
            assert!(c >= 1);
            assert!(c * 4 * threads() + c >= len);
        }
    }
}
