//! The global worker pool and structured [`scope`] primitive.
//!
//! Architecture: one process-global injector queue (mutex + condvar) drained
//! by lazily-spawned workers. A [`scope`] tracks its spawned tasks with an
//! atomic counter; while waiting for them the *caller also drains the
//! queue* ("helping"), which is what makes nested scopes deadlock-free — a
//! worker blocked on an inner scope keeps executing queued tasks, so every
//! queued task is always runnable by somebody.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Pool {
    queue: Arc<Queue>,
    /// Configured global parallelism (always >= 1).
    threads: AtomicUsize,
    /// Workers actually spawned so far (grows, never shrinks).
    spawned: Mutex<usize>,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Per-thread parallelism override (0 = none). See [`with_threads`].
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn env_threads() -> usize {
    match std::env::var("APF_PAR_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(default_parallelism),
        Err(_) => default_parallelism(),
    }
}

fn pool() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool {
        queue: Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }),
        threads: AtomicUsize::new(env_threads()),
        spawned: Mutex::new(0),
    })
}

fn worker_loop(queue: Arc<Queue>) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                jobs = queue.ready.wait(jobs).expect("pool queue poisoned");
            }
        };
        // Jobs are panic-wrapped at spawn; running one cannot unwind here.
        job();
    }
}

impl Pool {
    /// Ensures at least `wanted` workers exist (callers help too, so a
    /// parallelism of `t` needs `t - 1` workers).
    fn ensure_workers(&self, wanted: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn lock poisoned");
        while *spawned < wanted {
            let queue = Arc::clone(&self.queue);
            std::thread::Builder::new()
                .name(format!("apf-par-{spawned}"))
                .spawn(move || worker_loop(queue))
                .expect("failed to spawn apf-par worker");
            *spawned += 1;
        }
    }

    fn push(&self, job: Job) {
        self.queue
            .jobs
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.queue.ready.notify_one();
    }

    /// Runs queued jobs on the calling thread until `state` has no pending
    /// tasks. May execute tasks belonging to *other* scopes — they are all
    /// independent panic-wrapped closures, so this only helps throughput.
    fn help_until_done(&self, state: &ScopeState) {
        while state.pending.load(Ordering::Acquire) != 0 {
            let job = self
                .queue
                .jobs
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            match job {
                Some(j) => j(),
                None => {
                    let guard = state.wait_lock.lock().expect("scope lock poisoned");
                    if state.pending.load(Ordering::Acquire) != 0 {
                        // Timed wait: a job pushed by an unrelated scope can
                        // race the notify; the timeout bounds that window.
                        let _ = state
                            .done
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("scope lock poisoned");
                    }
                }
            }
        }
    }
}

/// The current effective parallelism: the innermost [`with_threads`]
/// override on this thread, else the global setting.
pub fn threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o != 0 {
        return o;
    }
    pool().threads.load(Ordering::Relaxed)
}

/// Sets the global pool parallelism (clamped to >= 1) and pre-spawns the
/// workers it needs. `1` routes all subsequent work through the exact
/// serial fallback path.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let p = pool();
    p.threads.store(n, Ordering::Relaxed);
    p.ensure_workers(n - 1);
}

/// Runs `f` with the parallelism seen *by this thread* overridden to `n`,
/// restoring the previous value afterwards (also on panic).
///
/// The override is thread-local: concurrent tests comparing thread counts
/// do not race each other. Work dispatched to pool workers from inside `f`
/// observes the global setting again, which is fine for the kernels built
/// on this crate — their results are thread-count independent by contract.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.max(1);
    pool().ensure_workers(n - 1);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n)));
    f()
}

struct ScopeState {
    pending: AtomicUsize,
    wait_lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            wait_lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// Handle passed to the closure of [`scope`]; lets it spawn borrowing tasks.
///
/// The lifetime `'s` is invariant: spawned closures may borrow anything that
/// outlives the `scope` call, including disjoint `&mut` chunks of a local
/// slice.
pub struct Scope<'s> {
    state: Arc<ScopeState>,
    inline: bool,
    _lifetime: PhantomData<&'s mut &'s ()>,
}

impl<'s> Scope<'s> {
    /// Spawns `f` onto the pool (or runs it immediately, in spawn order,
    /// when the effective parallelism is 1 — the exact serial fallback).
    ///
    /// A panicking task does not tear down the pool: the payload is carried
    /// back and re-raised from [`scope`] after all sibling tasks finished.
    /// When several tasks panic, the first recorded payload wins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 's,
    {
        if self.inline {
            f();
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 's> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.wait_lock.lock().expect("scope lock poisoned");
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` does not return before `pending` reaches zero —
        // help_until_done runs even when the scope closure unwinds — so the
        // job (and everything it borrows, bounded by 's) cannot outlive the
        // borrowed data. Extending the lifetime to 'static is therefore
        // sound; this is the classic scoped-pool erasure.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 's>, Box<dyn FnOnce() + Send>>(job)
        };
        pool().push(job);
    }
}

/// Structured fork-join: `f` receives a [`Scope`] to spawn borrowing tasks;
/// all of them are complete when `scope` returns.
///
/// Semantics:
/// * effective parallelism 1 → every spawn runs inline, in order (exact
///   serial execution, no pool);
/// * the caller helps drain the queue while waiting, so nesting scopes
///   (tasks that themselves call `scope`) cannot deadlock;
/// * panics — from `f` itself or from any spawned task — propagate to the
///   caller after all tasks completed; a task panic never leaks a detached
///   task.
pub fn scope<'s, R>(f: impl FnOnce(&Scope<'s>) -> R) -> R {
    let t = threads();
    let inline = t <= 1;
    if !inline {
        pool().ensure_workers(t - 1);
    }
    let s = Scope {
        state: Arc::new(ScopeState::new()),
        inline,
        _lifetime: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    if !inline {
        pool().help_until_done(&s.state);
    }
    let task_panic = s
        .state
        .panic
        .lock()
        .expect("scope panic slot poisoned")
        .take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = task_panic {
                resume_unwind(payload);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = threads();
        with_threads(3, || assert_eq!(threads(), 3));
        assert_eq!(threads(), before);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = threads();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("boom"));
        }));
        assert_eq!(threads(), before);
    }

    #[test]
    fn scope_joins_all_tasks() {
        for t in [1usize, 2, 4] {
            with_threads(t, || {
                let counter = AtomicUsize::new(0);
                scope(|s| {
                    for _ in 0..64 {
                        s.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(counter.load(Ordering::Relaxed), 64, "threads={t}");
            });
        }
    }

    #[test]
    fn scope_borrows_disjoint_chunks() {
        with_threads(4, || {
            let mut data = vec![0u64; 100];
            scope(|s| {
                for (i, chunk) in data.chunks_mut(7).enumerate() {
                    s.spawn(move || {
                        for x in chunk {
                            *x = i as u64;
                        }
                    });
                }
            });
            for (j, &x) in data.iter().enumerate() {
                assert_eq!(x, (j / 7) as u64);
            }
        });
    }
}
