//! Chunked data-parallel primitives built on [`scope`](crate::scope).

use std::ops::Range;

use crate::pool::{scope, threads};

/// Number of chunks targeted per pool thread: a little oversubscription so
/// an unlucky slow chunk rebalances across the pool.
const CHUNKS_PER_THREAD: usize = 4;

/// Runs `f` over disjoint sub-ranges covering `range`.
///
/// `grain` is the minimum items per chunk; work at or below one grain (or
/// with parallelism 1) runs inline as a single `f(range)` call. `f` must be
/// safe to call concurrently on disjoint ranges; per-element results must
/// not depend on the chunk boundaries (all kernels in this workspace write
/// disjoint outputs, so this holds trivially).
pub fn parallel_for<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let grain = grain.max(1);
    let t = threads();
    if t <= 1 || len <= grain {
        f(range);
        return;
    }
    let chunks = len.div_ceil(grain).min(t * CHUNKS_PER_THREAD);
    let chunk = len.div_ceil(chunks);
    scope(|s| {
        let f = &f;
        let mut start = range.start;
        while start < range.end {
            let end = (start + chunk).min(range.end);
            s.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Splits `data` into chunks of `chunk` items (the last may be shorter) and
/// runs `f(chunk_index, chunk)` for each across the pool.
///
/// With parallelism 1 the chunks run inline in ascending index order — the
/// exact serial fallback. Chunk `i` starts at element `i * chunk`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    if threads() <= 1 || data.len() <= chunk {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    scope(|s| {
        let f = &f;
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            s.spawn(move || f(i, c));
        }
    });
}

/// Runs `f(i)` for every `i in 0..count`, one pool task per index.
///
/// This is the panel-granularity primitive used by the packed GEMM: each
/// index is one fixed-size panel of work whose boundaries are chosen by the
/// *caller* (from cache-blocking constants), so the work decomposition is
/// identical at any thread count — only where each panel executes varies.
/// With parallelism 1 (or a single panel) the panels run inline in ascending
/// index order, the exact serial fallback.
///
/// Prefer [`parallel_for`] when per-index work is small and a grain should
/// merge indices into chunks; use this when each index is already a
/// substantial, deliberately-sized block.
pub fn parallel_for_each<F>(count: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads() <= 1 || count <= 1 {
        for i in 0..count {
            f(i);
        }
        return;
    }
    scope(|s| {
        let f = &f;
        for i in 0..count {
            s.spawn(move || f(i));
        }
    });
}

/// Deterministic chunked map-reduce over an index range.
///
/// The range is cut into `ceil(len / grain)` chunks whose boundaries depend
/// **only on `grain`** — never on the thread count — and the chunk results
/// are folded left-to-right in ascending chunk order. A floating-point
/// reduction therefore associates identically at any `APF_PAR_THREADS`,
/// making the result bitwise reproducible across thread counts (though not
/// necessarily equal to a single unchunked serial fold — pick `grain`
/// larger than common sizes where that distinction matters).
///
/// Returns `None` for an empty range.
pub fn map_reduce<A, M, R>(range: Range<usize>, grain: usize, map: M, reduce: R) -> Option<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return None;
    }
    let grain = grain.max(1);
    let chunks = len.div_ceil(grain);
    let mut slots: Vec<Option<A>> = Vec::with_capacity(chunks);
    slots.resize_with(chunks, || None);
    par_chunks_mut(&mut slots, 1, |i, slot| {
        let start = range.start + i * grain;
        let end = (start + grain).min(range.end);
        slot[0] = Some(map(start..end));
    });
    slots
        .into_iter()
        .map(|s| s.expect("map_reduce chunk not computed"))
        .reduce(reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::with_threads;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        for t in [1usize, 2, 4] {
            with_threads(t, || {
                let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
                parallel_for(0..hits.len(), 16, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        parallel_for(5..5, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_each_runs_every_index_once() {
        for t in [1usize, 2, 7] {
            with_threads(t, || {
                let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
                parallel_for_each(hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
        parallel_for_each(0, |_| panic!("must not be called"));
    }

    #[test]
    fn par_chunks_mut_indices_match_offsets() {
        for t in [1usize, 3] {
            with_threads(t, || {
                let mut data = vec![0usize; 100];
                par_chunks_mut(&mut data, 7, |i, c| {
                    for (j, x) in c.iter_mut().enumerate() {
                        *x = i * 7 + j;
                    }
                });
                for (i, &x) in data.iter().enumerate() {
                    assert_eq!(x, i);
                }
            });
        }
    }

    #[test]
    fn map_reduce_is_thread_count_independent() {
        let xs: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.37).sin()).collect();
        let sum_at = |t: usize| {
            with_threads(t, || {
                map_reduce(
                    0..xs.len(),
                    128,
                    |r| xs[r].iter().sum::<f32>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let s1 = sum_at(1);
        for t in [2usize, 3, 7] {
            assert_eq!(s1.to_bits(), sum_at(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn map_reduce_empty_is_none() {
        assert_eq!(map_reduce(3..3, 4, |_| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn map_reduce_single_chunk_equals_plain_fold() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
        let serial: f32 = xs.iter().sum();
        let chunked = with_threads(4, || {
            map_reduce(
                0..xs.len(),
                1000,
                |r| xs[r].iter().sum::<f32>(),
                |a, b| a + b,
            )
            .unwrap()
        });
        assert_eq!(serial.to_bits(), chunked.to_bits());
    }
}
