//! Property-based tests for the quantization codecs (on `apf-testkit`).

use apf_quant::{
    f16_bits_to_f32, f16_decode, f16_encode, f32_to_f16_bits, qsgd_decode, qsgd_encode,
    ternary_decode, ternary_encode,
};
use apf_testkit::{f32s, prop_assert, prop_assert_eq, property, u64s, u8s, usizes, vecs};

property! {
    fn f16_roundtrip_error_bound(x in f32s(-60000.0..60000.0)) {
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        // Relative error <= 2^-11 for normals; absolute bound 2^-24 near zero.
        let bound = (x.abs() / 2048.0).max(2.0f32.powi(-24));
        prop_assert!((back - x).abs() <= bound, "x={} back={}", x, back);
    }

    fn f16_idempotent(x in f32s(-60000.0..60000.0)) {
        // Quantizing an already-quantized value changes nothing.
        let once = f16_bits_to_f32(f32_to_f16_bits(x));
        let twice = f16_bits_to_f32(f32_to_f16_bits(once));
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    fn f16_order_preserving(a in f32s(-1000.0..1000.0), b in f32s(-1000.0..1000.0)) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let qlo = f16_bits_to_f32(f32_to_f16_bits(lo));
        let qhi = f16_bits_to_f32(f32_to_f16_bits(hi));
        prop_assert!(qlo <= qhi);
    }

    fn f16_slice_roundtrip(xs in vecs(f32s(-100.0..100.0), 0..64)) {
        let back = f16_decode(&f16_encode(&xs));
        prop_assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6);
        }
    }

    fn qsgd_error_bounded_by_norm(
        xs in vecs(f32s(-10.0..10.0), 1..64),
        s in u8s(1..16),
        seed in u64s(0..100),
    ) {
        let p = qsgd_encode(&xs, s, seed);
        let back = qsgd_decode(&p);
        let norm = xs.iter().map(|x| x * x).sum::<f32>().sqrt();
        for (a, b) in xs.iter().zip(&back) {
            // Each element's quantization error is at most one level: norm/s.
            prop_assert!((a - b).abs() <= norm / f32::from(s) + 1e-5);
        }
    }

    fn ternary_zero_codes_iff_no_signal(
        xs in vecs(f32s(-10.0..10.0), 1..64),
        seed in u64s(0..100),
    ) {
        let p = ternary_encode(&xs, seed);
        let back = ternary_decode(&p);
        for (a, b) in xs.iter().zip(&back) {
            // Reconstruction magnitude never exceeds the scale.
            prop_assert!(b.abs() <= p.scale + 1e-6);
            // Nonzero reconstruction keeps the sign.
            if *b != 0.0 {
                prop_assert_eq!(a.signum(), b.signum());
            }
        }
    }

    fn payload_wire_sizes_beat_f32(
        n in usizes(64..512),
    ) {
        let xs = vec![0.5f32; n];
        let q = qsgd_encode(&xs, 4, 0);
        let t = ternary_encode(&xs, 0);
        prop_assert!(q.wire_bytes() < 4 * n as u64);
        prop_assert!(t.wire_bytes() < 4 * n as u64);
        prop_assert!(t.wire_bytes() <= q.wire_bytes());
    }
}
