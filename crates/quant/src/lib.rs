//! Quantization substrate for the APF reproduction.
//!
//! §7.7 of the paper stacks a `Quantization_Manager` on top of the
//! `APF_Manager`: after APF filters out the frozen scalars, the surviving
//! values are compressed to IEEE binary16 (`Tensor.half()`), halving wire
//! size again. This crate provides that binary16 codec ([`f16_encode`] /
//! [`f16_decode`]) plus two classic gradient quantizers kept as extra
//! baselines: [`qsgd_encode`] (Alistarh et al.) and [`ternary_encode`]
//! (TernGrad, Wen et al.).
//!
//! # Example
//!
//! ```
//! use apf_quant::{f16_encode, f16_decode};
//!
//! let xs = vec![0.5f32, -1.25, 3.0];
//! let wire = f16_encode(&xs);
//! let back = f16_decode(&wire);
//! assert_eq!(back, xs); // these values are exactly representable
//! ```

mod ema;
mod f16;
mod qsgd;
mod ternary;

pub use ema::{EmaCodec, EmaCodecError};
pub use f16::{f16_bits_to_f32, f16_decode, f16_encode, f16_roundtrip_in_place, f32_to_f16_bits};
pub use qsgd::{qsgd_decode, qsgd_encode, QsgdPayload};
pub use ternary::{ternary_decode, ternary_encode, TernaryPayload};
