//! Byte codecs for EMA stability trajectories.
//!
//! The population simulator keeps APF stability state (the Eq. 17 effective
//! perturbation EMAs) in *dormant* form between rounds: a byte blob per
//! registry entry instead of live `Vec<f32>`s. [`EmaCodec`] picks the
//! encoding — [`EmaCodec::Dense`] stores raw little-endian `f32` bits
//! (bit-exact, used whenever golden parity matters) and [`EmaCodec::F16`]
//! stores binary16 bits (half the bytes, bounded relative error, for
//! memory-bound populations). Both are fixed-stride, so a blob's length
//! determines its element count.

use crate::f16::{f16_bits_to_f32, f32_to_f16_bits};

/// Errors decoding an EMA blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmaCodecError {
    /// Blob length is not a multiple of the codec's stride.
    BadLength {
        /// The offending blob length in bytes.
        len: usize,
        /// The codec's element stride in bytes.
        stride: usize,
    },
}

impl std::fmt::Display for EmaCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmaCodecError::BadLength { len, stride } => {
                write!(f, "blob length {len} is not a multiple of stride {stride}")
            }
        }
    }
}

impl std::error::Error for EmaCodecError {}

/// How an EMA trajectory is serialized to bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmaCodec {
    /// Raw little-endian `f32` bits — bit-exact round-trip.
    #[default]
    Dense,
    /// IEEE binary16 bits — half the bytes, relative error ≤ 2⁻¹¹ for
    /// normal values.
    F16,
}

impl EmaCodec {
    /// Bytes per encoded element.
    pub fn stride(self) -> usize {
        match self {
            EmaCodec::Dense => 4,
            EmaCodec::F16 => 2,
        }
    }

    /// Encoded size of an `n`-element trajectory.
    pub fn encoded_len(self, n: usize) -> usize {
        n * self.stride()
    }

    /// The codec's spec-string name (`dense` / `f16`).
    pub fn name(self) -> &'static str {
        match self {
            EmaCodec::Dense => "dense",
            EmaCodec::F16 => "f16",
        }
    }

    /// Parses a spec-string name back to a codec.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "dense" => Some(EmaCodec::Dense),
            "f16" => Some(EmaCodec::F16),
            _ => None,
        }
    }

    /// Appends the encoding of `vals` to `out`.
    pub fn encode_into(self, vals: &[f32], out: &mut Vec<u8>) {
        match self {
            EmaCodec::Dense => {
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            EmaCodec::F16 => {
                for &v in vals {
                    out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
            }
        }
    }

    /// Encodes `vals` to a fresh blob.
    pub fn encode(self, vals: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len(vals.len()));
        self.encode_into(vals, &mut out);
        out
    }

    /// Decodes a blob produced by [`EmaCodec::encode`], appending to `out`.
    ///
    /// # Errors
    /// Returns [`EmaCodecError::BadLength`] when `bytes` is not a whole
    /// number of elements.
    pub fn decode_into(self, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), EmaCodecError> {
        let stride = self.stride();
        if !bytes.len().is_multiple_of(stride) {
            return Err(EmaCodecError::BadLength {
                len: bytes.len(),
                stride,
            });
        }
        match self {
            EmaCodec::Dense => {
                for c in bytes.chunks_exact(4) {
                    out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
                }
            }
            EmaCodec::F16 => {
                for c in bytes.chunks_exact(2) {
                    out.push(f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])));
                }
            }
        }
        Ok(())
    }

    /// Decodes a blob to a fresh vector.
    ///
    /// # Errors
    /// Returns [`EmaCodecError::BadLength`] when `bytes` is not a whole
    /// number of elements.
    pub fn decode(self, bytes: &[u8]) -> Result<Vec<f32>, EmaCodecError> {
        let mut out = Vec::with_capacity(bytes.len() / self.stride());
        self.decode_into(bytes, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory() -> Vec<f32> {
        (0..300)
            .map(|i| ((i as f32) * 0.13 - 20.0).sin() * 3.0)
            .collect()
    }

    #[test]
    fn dense_roundtrip_is_bit_exact() {
        let xs = trajectory();
        let blob = EmaCodec::Dense.encode(&xs);
        assert_eq!(blob.len(), EmaCodec::Dense.encoded_len(xs.len()));
        let back = EmaCodec::Dense.decode(&blob).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f16_roundtrip_matches_the_wire_projection() {
        let xs = trajectory();
        let blob = EmaCodec::F16.encode(&xs);
        assert_eq!(blob.len(), xs.len() * 2);
        let back = EmaCodec::F16.decode(&blob).unwrap();
        let expected = crate::f16_decode(&crate::f16_encode(&xs));
        assert_eq!(back, expected);
    }

    #[test]
    fn bad_length_is_rejected() {
        assert!(matches!(
            EmaCodec::Dense.decode(&[0, 1, 2]),
            Err(EmaCodecError::BadLength { len: 3, stride: 4 })
        ));
        assert!(matches!(
            EmaCodec::F16.decode(&[0]),
            Err(EmaCodecError::BadLength { len: 1, stride: 2 })
        ));
    }

    #[test]
    fn names_parse_back() {
        for codec in [EmaCodec::Dense, EmaCodec::F16] {
            assert_eq!(EmaCodec::parse(codec.name()), Some(codec));
        }
        assert_eq!(EmaCodec::parse("q8"), None);
    }

    #[test]
    fn encode_into_appends() {
        let mut out = vec![0xFFu8];
        EmaCodec::F16.encode_into(&[1.0], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 0xFF);
    }
}
