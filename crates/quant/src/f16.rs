//! IEEE 754 binary16 conversion, bit-exact with hardware `f16` semantics
//! (round-to-nearest-even, gradual underflow, Inf/NaN preservation).

/// Converts one `f32` to its binary16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf or NaN; keep a nonzero mantissa bit for NaN.
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent in f16 terms.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> Inf
    }
    if unbiased >= -14 {
        // Normal f16: 10-bit mantissa with round-to-nearest-even.
        let mant = frac >> 13;
        let round_bits = frac & 0x1FFF;
        let mut h = sign | (((unbiased + 15) as u16) << 10) | mant as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant & 1) == 1) {
            h += 1; // may carry into the exponent, which is still correct
        }
        return h;
    }
    if unbiased >= -24 {
        // Subnormal f16: target mantissa counts units of 2^-24, and the
        // input significand `full` has weight 2^(unbiased - 23), so drop
        // `(-unbiased - 1)` low bits (14 at the subnormal boundary, 23 at
        // the smallest subnormal).
        let full = frac | 0x80_0000; // implicit leading 1
        let shift = (-unbiased - 1) as u32;
        let mant = full >> shift;
        let rem = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut h = sign | mant as u16;
        if rem > half || (rem == half && (mant & 1) == 1) {
            h += 1;
        }
        return h;
    }
    sign // underflow to signed zero
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let frac = u32::from(h & 0x3FF);
    let bits = if exp == 0x1F {
        // Inf / NaN.
        sign | 0x7F80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = -14i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x3FF;
            sign | (((e + 127) as u32) << 23) | (f << 13)
        }
    } else {
        sign | ((u32::from(exp) + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Quantizes a slice to binary16 wire format.
pub fn f16_encode(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| f32_to_f16_bits(x)).collect()
}

/// Restores `f32` values from binary16 wire format.
pub fn f16_decode(wire: &[u16]) -> Vec<f32> {
    wire.iter().map(|&h| f16_bits_to_f32(h)).collect()
}

/// Round-trips `xs` through binary16 in place — the value projection a
/// binary16 wire hop applies, without materializing the intermediate `u16`
/// buffer. Bitwise equal to `f16_decode(&f16_encode(xs))`.
pub fn f16_roundtrip_in_place(xs: &mut [f32]) {
    for x in xs {
        *x = f16_bits_to_f32(f32_to_f16_bits(*x));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_place_roundtrip_matches_encode_decode() {
        let xs: Vec<f32> = (0..257).map(|i| ((i as f32) * 0.37 - 40.0).tan()).collect();
        let expected = f16_decode(&f16_encode(&xs));
        let mut got = xs;
        f16_roundtrip_in_place(&mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn exact_values_roundtrip() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 1024.0, 0.125, -3.75, 65504.0,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back, x, "{x} -> {back}");
            assert_eq!(back.is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // binary16 has 11 significand bits: relative error <= 2^-11.
        let mut x = 1e-3f32;
        while x < 6e4 {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            let rel = ((back - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0 + 1e-7, "x={x} back={back} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn tiny_values_underflow_to_zero() {
        let tiny = 1e-30f32;
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tiny)), 0.0);
        assert!(f16_bits_to_f32(f32_to_f16_bits(-tiny)).is_sign_negative());
    }

    #[test]
    fn subnormals_representable() {
        // 2^-24 is the smallest positive subnormal f16.
        let x = 2.0f32.powi(-24);
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        assert_eq!(back, x);
        // 2^-20 is subnormal but representable exactly.
        let y = 2.0f32.powi(-20);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(y)), y);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: rounds to even (1.0).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(x)), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(y)), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn slice_codec_shapes() {
        let xs: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.37).collect();
        let wire = f16_encode(&xs);
        assert_eq!(wire.len(), xs.len());
        let back = f16_decode(&wire);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() / 1024.0 + 1e-6);
        }
    }
}
