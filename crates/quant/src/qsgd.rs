//! QSGD-style stochastic quantization (Alistarh et al., NeurIPS 2017).
//!
//! Each value is represented as `norm * sign * (l / s)` where `l` is an
//! integer level in `0..=s` chosen stochastically so the quantizer is
//! unbiased. We keep the levels unpacked (one byte per value for `s <= 255`)
//! and report the *information-theoretic* wire size separately — the paper
//! family's byte accounting conventions live in the simulator.

use apf_tensor::seeded_rng;

/// A QSGD-quantized vector.
#[derive(Debug, Clone, PartialEq)]
pub struct QsgdPayload {
    /// L2 norm of the original vector.
    pub norm: f32,
    /// Quantization levels `s`.
    pub levels: u8,
    /// Per-value signed level in `-s..=s`.
    pub codes: Vec<i16>,
}

impl QsgdPayload {
    /// Wire size in bytes: the norm plus `ceil(log2(2s+1))` bits per value.
    pub fn wire_bytes(&self) -> u64 {
        let states = 2 * u32::from(self.levels) + 1;
        let bits_per_value = 32 - (states - 1).leading_zeros();
        4 + (u64::from(bits_per_value) * self.codes.len() as u64).div_ceil(8)
    }
}

/// Stochastically quantizes `xs` to `s` levels; unbiased in expectation.
///
/// # Panics
/// Panics if `s` is zero.
pub fn qsgd_encode(xs: &[f32], s: u8, seed: u64) -> QsgdPayload {
    assert!(s > 0, "need at least one level");
    let norm = xs.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let mut rng = seeded_rng(seed);
    let codes = xs
        .iter()
        .map(|&x| {
            if norm == 0.0 {
                return 0;
            }
            let ratio = x.abs() / norm * f32::from(s);
            let floor = ratio.floor();
            let frac = ratio - floor;
            let level = floor as i16 + i16::from(rng.gen::<f32>() < frac);
            level.min(i16::from(s)) * if x < 0.0 { -1 } else { 1 }
        })
        .collect();
    QsgdPayload {
        norm,
        levels: s,
        codes,
    }
}

/// Reconstructs the (unbiased) estimate from a QSGD payload.
pub fn qsgd_decode(p: &QsgdPayload) -> Vec<f32> {
    let scale = p.norm / f32::from(p.levels);
    p.codes.iter().map(|&c| f32::from(c) * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector_roundtrips() {
        let p = qsgd_encode(&[0.0, 0.0], 4, 0);
        assert_eq!(qsgd_decode(&p), vec![0.0, 0.0]);
    }

    #[test]
    fn estimator_is_unbiased() {
        let xs = vec![0.3f32, -0.7, 0.05, 0.9];
        let trials = 4000;
        let mut acc = vec![0.0f64; xs.len()];
        for t in 0..trials {
            let p = qsgd_encode(&xs, 2, t as u64);
            for (a, v) in acc.iter_mut().zip(qsgd_decode(&p)) {
                *a += f64::from(v);
            }
        }
        for (a, &x) in acc.iter().zip(&xs) {
            let mean = a / f64::from(trials);
            assert!((mean - f64::from(x)).abs() < 0.05, "mean {mean} vs {x}");
        }
    }

    #[test]
    fn codes_bounded_by_levels() {
        let xs: Vec<f32> = (0..64).map(|i| ((i * 37) % 13) as f32 - 6.0).collect();
        let p = qsgd_encode(&xs, 4, 9);
        assert!(p.codes.iter().all(|&c| c.unsigned_abs() <= 4));
    }

    #[test]
    fn signs_preserved() {
        let xs = vec![5.0f32, -5.0];
        let p = qsgd_encode(&xs, 8, 1);
        let back = qsgd_decode(&p);
        assert!(back[0] > 0.0);
        assert!(back[1] < 0.0);
    }

    #[test]
    fn wire_bytes_smaller_than_f32() {
        let xs = vec![1.0f32; 1000];
        let p = qsgd_encode(&xs, 4, 0);
        // 2s+1 = 9 states -> 4 bits per value -> ~500 bytes + 4 << 4000.
        assert!(p.wire_bytes() < 600, "{}", p.wire_bytes());
    }
}
