//! TernGrad-style ternary quantization (Wen et al., NeurIPS 2017): values
//! become `s_max * b` with `b ∈ {-1, 0, 1}`, stochastically rounded so the
//! estimator is unbiased.

use apf_tensor::seeded_rng;

/// A ternary-quantized vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TernaryPayload {
    /// The scale `max |x|`.
    pub scale: f32,
    /// Per-value ternary code.
    pub codes: Vec<i8>,
}

impl TernaryPayload {
    /// Wire size in bytes: scale + 2 bits per value.
    pub fn wire_bytes(&self) -> u64 {
        4 + (2 * self.codes.len() as u64).div_ceil(8)
    }
}

/// Quantizes `xs` to `{-1, 0, +1} * max|x|`, unbiased in expectation.
pub fn ternary_encode(xs: &[f32], seed: u64) -> TernaryPayload {
    let scale = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let mut rng = seeded_rng(seed);
    let codes = xs
        .iter()
        .map(|&x| {
            if scale == 0.0 {
                return 0;
            }
            let p = x.abs() / scale;
            if rng.gen::<f32>() < p {
                if x < 0.0 {
                    -1
                } else {
                    1
                }
            } else {
                0
            }
        })
        .collect();
    TernaryPayload { scale, codes }
}

/// Reconstructs the estimate from a ternary payload.
pub fn ternary_decode(p: &TernaryPayload) -> Vec<f32> {
    p.codes.iter().map(|&c| f32::from(c) * p.scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_three_levels() {
        let xs: Vec<f32> = (0..50).map(|i| (i as f32 * 0.7).sin()).collect();
        let p = ternary_encode(&xs, 3);
        assert!(p.codes.iter().all(|&c| (-1..=1).contains(&c)));
    }

    #[test]
    fn estimator_is_unbiased() {
        let xs = vec![0.5f32, -0.25, 1.0, 0.0];
        let trials = 4000;
        let mut acc = vec![0.0f64; xs.len()];
        for t in 0..trials {
            let p = ternary_encode(&xs, t as u64);
            for (a, v) in acc.iter_mut().zip(ternary_decode(&p)) {
                *a += f64::from(v);
            }
        }
        for (a, &x) in acc.iter().zip(&xs) {
            let mean = a / f64::from(trials);
            assert!((mean - f64::from(x)).abs() < 0.05, "mean {mean} vs {x}");
        }
    }

    #[test]
    fn max_magnitude_always_sent() {
        let xs = vec![0.1f32, -2.0, 0.3];
        let p = ternary_encode(&xs, 0);
        assert_eq!(p.codes[1], -1, "the max-magnitude element has p=1");
        assert_eq!(p.scale, 2.0);
    }

    #[test]
    fn wire_bytes_quarter_byte_per_value() {
        let xs = vec![1.0f32; 1024];
        let p = ternary_encode(&xs, 0);
        assert_eq!(p.wire_bytes(), 4 + 256);
    }

    #[test]
    fn zero_vector() {
        let p = ternary_encode(&[0.0, 0.0, 0.0], 0);
        assert_eq!(ternary_decode(&p), vec![0.0, 0.0, 0.0]);
    }
}
