//! Zero-allocation guarantees for the networked hot path.
//!
//! The net crate's round loop is instrumented with spans, events, trace
//! contexts, and pre-resolved metric handles. With tracing disabled
//! (this process never calls `init`) every instrumentation site must cost
//! one relaxed atomic load and touch the allocator **zero** times, and the
//! metric-update path must stay allocation-free even when metrics are live
//! (handles are resolved once per run; updates are pure atomics). A
//! counting global allocator enforces both (own test binary: the allocator
//! and the trace level are process-global).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use apf_trace::metrics::{counter, gauge, histogram};
use apf_trace::{current_context, event, span, Level, Role, TraceContext};

// Per-thread counting so libtest harness threads cannot pollute the
// measurement; const-initialized thread_local never allocates, so reading
// it inside the allocator is safe.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

fn bump() {
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// The exact span/event shapes `server.rs`/`client.rs` emit each round,
/// run with tracing disabled.
fn net_instrumentation_workload(iters: u64) -> u64 {
    let mut acc = 0u64;
    for round in 0..iters {
        let mut round_span = span!(Level::Info, target: "net.server", "round",
            round = round);
        let mut sp = span!(Level::Debug, target: "net.server", "push_read",
            round = round, client = 1usize);
        sp.record("bytes_wire", 4096u64);
        drop(sp);
        event!(Level::Debug, target: "net.comm", "transfer",
            round = round, client = 1usize, dir = "up", bytes = 2048u64);
        let _sp = span!(Level::Debug, target: "net.server", "reduce",
            round = round, alive = 3usize);
        event!(Level::Debug, target: "net.server", "round_bytes",
            round = round, bytes_up = 100u64, bytes_down = 100u64,
            cum_bytes = 12345u64, alive = 3usize);
        round_span.record("alive", 3usize);
        acc = acc.wrapping_add(std::hint::black_box(round_span.id()));
    }
    acc
}

#[test]
fn disabled_net_instrumentation_does_not_allocate() {
    // Warm-up excludes any lazy runtime setup from the measurement.
    std::hint::black_box(net_instrumentation_workload(10));
    let before = allocs();
    std::hint::black_box(net_instrumentation_workload(50_000));
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "disabled net spans/events must not allocate (got {})",
        after - before
    );
}

#[test]
fn trace_context_wire_path_does_not_allocate() {
    // Per-frame context work on the wire path: construct, link, encode,
    // decode, read the ambient context. All fixed-size, all stack-only.
    let ctx = TraceContext::new(0xfeed_beef, Role::Client(2));
    std::hint::black_box(ctx.with_link(7).to_wire());
    let before = allocs();
    let mut acc = 0u64;
    for i in 0..50_000u64 {
        let linked = ctx.with_link(i);
        let wire = linked.to_wire();
        let back = TraceContext::from_wire(std::hint::black_box(&wire)).unwrap();
        acc = acc.wrapping_add(back.link_span) ^ current_context().run_id;
    }
    std::hint::black_box(acc);
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "TraceContext encode/decode must not allocate (got {})",
        after - before
    );
}

#[test]
fn metric_updates_through_resolved_handles_do_not_allocate() {
    // Resolving a handle interns the name (allocates, once per run) —
    // updating through it afterwards is the per-round path and must not.
    let c = counter("alloc_test.wire_bytes");
    let g = gauge("alloc_test.clients_alive");
    let h = histogram("alloc_test.round_us", &[10.0, 100.0, 1000.0]);
    c.add(1);
    g.set(1.0);
    h.record(5.0);
    let before = allocs();
    for i in 0..50_000u64 {
        c.add(i);
        g.set(i as f64);
        h.record((i % 1500) as f64);
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "metric updates must not allocate (got {})",
        after - before
    );
}
