//! Property tests for the wire format: random frames round-trip exactly,
//! the encoded size of a masked transfer is pinned to the ledger accounting
//! formula, and truncated/corrupted/oversized input always produces a typed
//! [`WireError`] — never a panic, never an allocation driven by a hostile
//! length prefix.

use apf::masked_transfer_bytes;
use apf_net::{read_frame, Frame, MaskedPayload, WireError, CTX_WIRE_LEN, MAX_FRAME};
use apf_quant::{f16_bits_to_f32, f32_to_f16_bits};
use apf_testkit::{f32s, prop_assert, prop_assert_eq, property, u32s, u64s, u8s, usizes, vecs};
use apf_trace::{Role, TraceContext};

/// A representative context for frames under test (the trailer is fixed
/// width, so any value exercises the same code paths).
fn ctx_from(run_id: u64, client: u32, link: u64) -> TraceContext {
    TraceContext {
        run_id,
        pid: 4321,
        role: Role::Client(client),
        link_span: link,
    }
}

/// Builds a random-but-valid masked payload from raw generator output.
fn payload_from(mask_bits: &[u8], raw_values: &[f32], f16: bool) -> MaskedPayload {
    let mask = apf::FreezeMask::from_fn(mask_bits.len(), |j| mask_bits[j] & 1 == 1);
    let unfrozen = mask.unfrozen_count();
    let mut values: Vec<f32> = raw_values.iter().cycle().take(unfrozen).copied().collect();
    if f16 {
        // Pre-narrow so wire narrowing is lossless and round-trips compare
        // equal (the protocol itself narrows exactly once, server-side).
        for v in &mut values {
            *v = f16_bits_to_f32(f32_to_f16_bits(*v));
        }
    }
    MaskedPayload::new(mask, values, f16).expect("consistent by construction")
}

property! {
    fn push_frames_roundtrip(
        round in u64s(0..1_000_000),
        client_id in u32s(0..64),
        mask_bits in vecs(u8s(0..2), 1..96),
        raw in vecs(f32s(-100.0..100.0), 1..8),
        f16_flag in u8s(0..2),
        loss in f32s(0.0..10.0)
    ) {
        let payload = payload_from(&mask_bits, &raw, f16_flag == 1);
        let frame = Frame::Push {
            round,
            client_id,
            loss_bits: loss.to_bits(),
            payload,
            ctx: ctx_from(round ^ 0xabcd, client_id, round.wrapping_mul(3)),
        };
        let bytes = frame.encode().unwrap();
        let (back, n) = read_frame(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(n as usize, bytes.len());
        prop_assert_eq!(back, frame);
    }

    fn pull_frames_roundtrip(
        round in u64s(0..1_000_000),
        mask_bits in vecs(u8s(0..2), 1..96),
        raw in vecs(f32s(-5.0..5.0), 1..8)
    ) {
        let frame = Frame::Pull {
            round,
            payload: payload_from(&mask_bits, &raw, false),
            ctx: ctx_from(round, 0, round),
        };
        let bytes = frame.encode().unwrap();
        let (back, _) = read_frame(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back, frame);
    }

    // Satellite regression: the ledger's masked-transfer byte formula IS the
    // wire encoding's size — bitmap bytes + packed unfrozen values — so the
    // run ledger charges exactly what a real frame would carry.
    fn encoded_size_matches_ledger_accounting(
        mask_bits in vecs(u8s(0..2), 1..256),
        f16_flag in u8s(0..2)
    ) {
        let payload = payload_from(&mask_bits, &[0.25], f16_flag == 1);
        let total = payload.mask.len();
        let unfrozen = payload.values.len();
        let bps = payload.bytes_per_scalar();
        prop_assert_eq!(
            payload.encoded_len(),
            5 + masked_transfer_bytes(total, unfrozen, bps)
        );
        // And the full Pull frame is exactly header + round + payload +
        // the fixed trace-context trailer (framing, not ledger bytes).
        let frame = Frame::Pull { round: 1, payload, ctx: ctx_from(7, 0, 0) };
        prop_assert_eq!(
            frame.encode().unwrap().len() as u64,
            10 + 8 + 5 + masked_transfer_bytes(total, unfrozen, bps) + CTX_WIRE_LEN as u64
        );
    }

    // Every strict prefix of a valid frame is a typed error, not a panic.
    fn truncation_always_yields_typed_errors(
        mask_bits in vecs(u8s(0..2), 1..64),
        cut_seed in usizes(0..10_000)
    ) {
        let frame = Frame::Push {
            round: 9,
            client_id: 3,
            loss_bits: 0x3f80_0000,
            payload: payload_from(&mask_bits, &[1.5, -2.0], false),
            ctx: ctx_from(11, 3, 99),
        };
        let bytes = frame.encode().unwrap();
        let cut = cut_seed % bytes.len();
        let result = read_frame(&mut &bytes[..cut]);
        prop_assert!(
            matches!(result, Err(WireError::Truncated { .. })),
            "prefix of {cut} bytes gave {result:?}"
        );
    }

    // Flipping any single byte of a valid frame either still decodes (the
    // flip landed in a value) or fails with a typed error — never a panic.
    fn corruption_never_panics(
        mask_bits in vecs(u8s(0..2), 1..48),
        pos_seed in usizes(0..10_000),
        flip in u8s(1..255)
    ) {
        let frame = Frame::Push {
            round: 2,
            client_id: 0,
            loss_bits: 0,
            payload: payload_from(&mask_bits, &[0.5], false),
            ctx: ctx_from(5, 0, 1),
        };
        let mut bytes = frame.encode().unwrap();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let _ = read_frame(&mut bytes.as_slice()); // must not panic
    }

    // A hostile declared length is rejected before any payload allocation;
    // an under-cap lie larger than the actual body reads as truncation.
    fn hostile_length_prefixes_are_bounded(declared in u32s(0..u32::MAX)) {
        let mut bytes = Frame::Done.encode().unwrap();
        bytes[6..10].copy_from_slice(&declared.to_le_bytes());
        match read_frame(&mut bytes.as_slice()) {
            Ok((Frame::Done, _)) => prop_assert_eq!(declared, 0),
            Err(WireError::Oversized { len }) => {
                prop_assert!(len > MAX_FRAME, "cap misfired at {len}");
            }
            Err(WireError::Truncated { got, .. }) => {
                // Bounded: nothing was buffered beyond the actual body.
                prop_assert!(declared <= MAX_FRAME && got == 0);
            }
            other => prop_assert!(false, "unexpected: {other:?}"),
        }
    }
}

#[test]
fn oversized_frames_refuse_to_encode() {
    let frame = Frame::Welcome {
        spec: String::new(),
        init: vec![0.0; (MAX_FRAME as usize) / 4 + 8],
        ctx: TraceContext::NONE,
    };
    assert!(matches!(frame.encode(), Err(WireError::Oversized { .. })));
}
