//! Net-vs-sim parity and fault-path tests: an in-process server plus client
//! threads over real TCP must reproduce the simulator's golden run bit for
//! bit, and must degrade gracefully — never hang — when peers misbehave.
//! The multi-process variant of the parity check (separate OS processes via
//! the `apf-server`/`apf-client` binaries) lives in `scripts/verify.sh`.

use std::time::{Duration, Instant};

use apf_fedsim::{RunSpec, SpecStrategy, Trajectory};
use apf_net::{run_client, ClientOpts, NetError, NetServer, ServerOpts};
use apf_testkit::golden::run_recorded;

fn opts(spec: RunSpec) -> ServerOpts {
    ServerOpts {
        addr: "127.0.0.1:0".to_owned(),
        spec,
        join_timeout: Duration::from_secs(20),
        io_timeout: Duration::from_secs(20),
        ..ServerOpts::default()
    }
}

/// Runs a full networked round-trip: one server, `spec.clients` client
/// threads, with per-client option tweaks applied through `tweak`.
fn run_networked(
    spec: &RunSpec,
    tweak: impl Fn(&mut ClientOpts),
) -> (
    apf_net::ServerOutcome,
    Vec<Result<apf_net::ClientOutcome, NetError>>,
) {
    let server = NetServer::bind(opts(spec.clone())).expect("bind");
    let addr = server.addr();
    let handles: Vec<_> = (0..spec.clients as u32)
        .map(|id| {
            let tweak = &tweak;
            let mut copts = ClientOpts::new(addr, id);
            tweak(&mut copts);
            std::thread::spawn(move || run_client(&copts))
        })
        .collect();
    let outcome = server.serve().expect("server run");
    let clients = handles.into_iter().map(|h| h.join().unwrap()).collect();
    (outcome, clients)
}

#[test]
fn networked_golden_run_is_bitwise_identical_to_simulator() {
    let spec = RunSpec::golden();
    let (outcome, clients) = run_networked(&spec, |_| {});
    for c in &clients {
        assert!(c.is_ok(), "client failed: {:?}", c.as_ref().err());
    }
    assert!(outcome.lost_clients.is_empty());

    let golden = run_recorded(&spec);
    let net_traj = Trajectory::from_log(&outcome.log);
    if let Some(diff) = golden.trajectory().diff(&net_traj) {
        panic!("net and sim trajectories diverge: {diff}");
    }
    let net_global_bits: Vec<u32> = outcome.global.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        golden.global_bits(),
        net_global_bits,
        "final global models diverge"
    );
    // The real framing overhead must be accounted for and strictly exceed
    // the logical masked-transfer bytes it wraps.
    assert!(outcome.wire_bytes > outcome.log.total_bytes() / 2);
}

#[test]
fn networked_f16_run_is_bitwise_identical_to_simulator() {
    let spec = RunSpec {
        rounds: 3,
        strategy: SpecStrategy::Apf {
            check_every: 1,
            threshold: 0.1,
            ema_alpha: 0.9,
            f16: true,
        },
        ..RunSpec::golden()
    };
    let (outcome, clients) = run_networked(&spec, |_| {});
    assert!(clients.iter().all(Result::is_ok));
    let golden = run_recorded(&spec);
    if let Some(diff) = golden
        .trajectory()
        .diff(&Trajectory::from_log(&outcome.log))
    {
        panic!("f16 net and sim trajectories diverge: {diff}");
    }
    let net_global_bits: Vec<u32> = outcome.global.iter().map(|v| v.to_bits()).collect();
    assert_eq!(golden.global_bits(), net_global_bits);
}

#[test]
fn client_killed_mid_round_degrades_gracefully() {
    let spec = RunSpec::golden();
    let (outcome, clients) = run_networked(&spec, |c| {
        if c.id == 2 {
            c.fail_before_push_round = Some(2);
        }
    });
    // The victim reports its injected fault; the others finish.
    assert!(clients[2].as_ref().unwrap().injected_fault);
    assert!(clients[0].as_ref().unwrap().rounds_done == spec.rounds as u64);
    assert!(clients[1].as_ref().unwrap().rounds_done == spec.rounds as u64);
    // The server completes every round with the survivors.
    assert_eq!(outcome.lost_clients, vec![2]);
    assert_eq!(outcome.log.records.len(), spec.rounds);
    assert!(outcome.log.records.iter().all(|r| r.loss.is_finite()));
    // Byte accounting reflects the shrunken fleet after the fault.
    let before = &outcome.log.records[1];
    let after = &outcome.log.records[2];
    assert_eq!(before.bytes_up % 3, 0);
    assert_eq!(after.bytes_up % 2, 0);
}

#[test]
fn garbage_handshake_is_tolerated_during_join() {
    let spec = RunSpec {
        clients: 1,
        rounds: 2,
        ..RunSpec::golden()
    };
    let server = NetServer::bind(opts(spec.clone())).expect("bind");
    let addr = server.addr();
    // A hostile/broken peer: wrong magic, then a truncated real header.
    let vandal = std::thread::spawn(move || {
        use std::io::Write;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"GET / HTTP/1.1\r\n\r\n");
        drop(s);
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let _ = s.write_all(b"APFW"); // header cut short
        drop(s);
    });
    let real = std::thread::spawn(move || run_client(&ClientOpts::new(addr, 0)));
    let outcome = server.serve().expect("server survives garbage joiners");
    vandal.join().unwrap();
    assert!(real.join().unwrap().is_ok());
    assert_eq!(outcome.log.records.len(), 2);
    assert!(outcome.lost_clients.is_empty());
}

#[test]
fn join_timeout_returns_typed_error_without_hanging() {
    let spec = RunSpec::golden();
    let server = NetServer::bind(ServerOpts {
        join_timeout: Duration::from_millis(300),
        ..opts(spec)
    })
    .expect("bind");
    let t0 = Instant::now();
    match server.serve() {
        Err(NetError::JoinTimeout { joined, expected }) => {
            assert_eq!((joined, expected), (0, 3));
        }
        other => panic!("expected JoinTimeout, got {other:?}"),
    }
    assert!(t0.elapsed() < Duration::from_secs(10), "join phase hung");
}

#[test]
fn connect_timeout_errors_promptly() {
    // Bind-then-drop guarantees a port with nothing listening.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let t0 = Instant::now();
    let result = run_client(&ClientOpts {
        connect_timeout: Duration::from_millis(300),
        ..ClientOpts::new(dead_addr, 0)
    });
    assert!(matches!(result, Err(NetError::Io(_))), "{result:?}");
    assert!(t0.elapsed() < Duration::from_secs(10), "connect retry hung");
}

#[test]
fn fedavg_spec_is_rejected_as_unsupported() {
    let spec = RunSpec {
        strategy: SpecStrategy::Fedavg,
        ..RunSpec::golden()
    };
    match NetServer::bind(opts(spec)) {
        Err(NetError::Unsupported(_)) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
