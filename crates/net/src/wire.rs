//! The APF wire protocol: length-prefixed binary frames carrying
//! bitmap-compressed masked parameter transfers.
//!
//! Every frame is a 10-byte header — magic `APFW`, version, frame type,
//! little-endian payload length — followed by the payload. The payload
//! length is capped at [`MAX_FRAME`] and read in bounded chunks, so a
//! hostile length prefix can neither trigger a giant up-front allocation
//! nor make the reader buffer more than the peer actually sent.
//!
//! Masked transfers use the same encoding the byte accounting in
//! `apf::masked_transfer_bytes` charges for: a packed freeze bitmap
//! (1 bit per scalar, LSB-first, `apf::FreezeMask::packed_bytes` — the
//! same bytes `apf::pack_mask` produces) followed by the unfrozen values as
//! little-endian f32 — or binary16 bit patterns when the f16 flag is set,
//! exactly the `apf-quant` conversion the simulator applies to quantized
//! uploads. The mask stays bit-packed end to end: it is built packed by the
//! APF manager, copied verbatim onto the wire, and decoded back into a
//! [`FreezeMask`] without ever materializing a `Vec<bool>`. `crates/net/tests/wire_proptests.rs` pins the
//! equality between encoded payload sizes and the ledger formula.
//!
//! Since protocol version 2, the handshake and round frames
//! (`Join`/`Welcome`/`Push`/`Pull`) end with a fixed
//! [`CTX_WIRE_LEN`]-byte [`TraceContext`] so both processes of an exchange
//! stamp their trace records with the same run id and can link their spans
//! across the process boundary. The context rides *outside* the masked
//! payload, so the ledger's logical byte accounting
//! (`payload.encoded_len()`) is unchanged; only the framing overhead grew.

use std::io::{Read, Write};

use apf::{mask_bytes, masked_transfer_bytes, FreezeMask};
use apf_quant::{f16_bits_to_f32, f32_to_f16_bits};
use apf_trace::{span, Level, TraceContext};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"APFW";
/// Protocol version carried in every header. v2 added the trailing
/// [`TraceContext`] on Join/Welcome/Push/Pull.
pub const VERSION: u8 = 2;
/// Bytes of the [`TraceContext`] trailer on Join/Welcome/Push/Pull frames.
pub const CTX_WIRE_LEN: usize = TraceContext::WIRE_LEN;
/// Hard cap on a frame's payload length. A header declaring more is
/// rejected as [`WireError::Oversized`] before any payload allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Header size: magic (4) + version (1) + type (1) + payload length (4).
pub const HEADER_LEN: usize = 10;

/// Incremental payload read granularity; also bounds how far allocation can
/// run ahead of bytes actually received.
const READ_CHUNK: usize = 64 * 1024;

/// A typed wire failure. Every decode path returns one of these — malformed
/// or hostile input must never panic or allocate unboundedly.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport error (timeouts, resets, ...).
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// The hostile declared length.
        len: u32,
    },
    /// The stream ended before the declared length was delivered.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// Structurally invalid payload (bad counts, bad UTF-8, trailing bytes).
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversized { len } => {
                write!(f, "declared payload {len} exceeds cap {MAX_FRAME}")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// A masked parameter transfer: the freeze bitmap plus the unfrozen values.
///
/// A set mask bit means the scalar is frozen and carries no value; `values`
/// holds exactly one f32 per unfrozen scalar, in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedPayload {
    /// Per-scalar freeze mask (set bit = frozen, absent from `values`).
    pub mask: FreezeMask,
    /// The unfrozen scalars, in index order.
    pub values: Vec<f32>,
    /// Encode values as binary16 bit patterns (2 bytes/scalar) on the wire.
    pub f16: bool,
}

impl MaskedPayload {
    /// Builds a payload, checking that `values` has exactly one entry per
    /// unfrozen scalar.
    ///
    /// # Errors
    /// Returns [`WireError::Corrupt`] on a count mismatch.
    pub fn new(mask: FreezeMask, values: Vec<f32>, f16: bool) -> Result<MaskedPayload, WireError> {
        let unfrozen = mask.unfrozen_count();
        if values.len() != unfrozen {
            return Err(WireError::Corrupt(format!(
                "{} values for {unfrozen} unfrozen scalars",
                values.len()
            )));
        }
        Ok(MaskedPayload { mask, values, f16 })
    }

    /// Bytes per encoded value: 2 under f16, 4 otherwise.
    pub fn bytes_per_scalar(&self) -> u64 {
        if self.f16 {
            2
        } else {
            4
        }
    }

    /// Exact encoded size: 5 fixed bytes (total + flags) plus the masked
    /// transfer (bitmap + packed values) the ledger accounting charges for.
    pub fn encoded_len(&self) -> u64 {
        5 + masked_transfer_bytes(self.mask.len(), self.values.len(), self.bytes_per_scalar())
    }

    fn write_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.mask.len() as u32).to_le_bytes());
        out.push(u8::from(self.f16));
        out.extend_from_slice(&self.mask.packed_bytes());
        if self.f16 {
            for &v in &self.values {
                out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
            }
        } else {
            for &v in &self.values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn read_from(c: &mut Cursor<'_>) -> Result<MaskedPayload, WireError> {
        let total = c.take_u32()? as usize;
        let flags = c.take_u8()?;
        if flags & !1 != 0 {
            return Err(WireError::Corrupt(format!(
                "unknown payload flags {flags:#x}"
            )));
        }
        let f16 = flags & 1 != 0;
        let mask = FreezeMask::from_packed(c.take(mask_bytes(total))?, total)
            .ok_or_else(|| WireError::Corrupt("bitmap has set trailing bits".to_owned()))?;
        let unfrozen = mask.unfrozen_count();
        let values = if f16 {
            c.take(unfrozen * 2)?
                .chunks_exact(2)
                .map(|b| f16_bits_to_f32(u16::from_le_bytes([b[0], b[1]])))
                .collect()
        } else {
            c.take(unfrozen * 4)?
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect()
        };
        Ok(MaskedPayload { mask, values, f16 })
    }
}

/// Frame type bytes on the wire.
mod ty {
    pub const JOIN: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const PUSH: u8 = 3;
    pub const PULL: u8 = 4;
    pub const DONE: u8 = 5;
    pub const ABORT: u8 = 6;
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: request to participate as `client_id`.
    Join {
        /// The claimed client slot.
        client_id: u32,
        /// Sender's trace identity (run id still 0: the server mints it).
        ctx: TraceContext,
    },
    /// Server → client: the run spec (canonical string) plus the initial
    /// model distribution.
    Welcome {
        /// `RunSpec::canonical()` of the run.
        spec: String,
        /// The initial flat model every participant starts from.
        init: Vec<f32>,
        /// The server's trace identity; its `run_id` names the whole run and
        /// every participant adopts it.
        ctx: TraceContext,
    },
    /// Client → server: one round's masked local update.
    Push {
        /// Round index.
        round: u64,
        /// Sender's client slot.
        client_id: u32,
        /// The round's mean local loss, as f32 bits.
        loss_bits: u32,
        /// Freeze bitmap + unfrozen local values.
        payload: MaskedPayload,
        /// Sender's trace identity; `link_span` is the client's round span.
        ctx: TraceContext,
    },
    /// Server → client: the round's aggregated unfrozen scalars.
    Pull {
        /// Round index.
        round: u64,
        /// Freeze bitmap + aggregated unfrozen values.
        payload: MaskedPayload,
        /// Sender's trace identity; `link_span` is the server's round span.
        ctx: TraceContext,
    },
    /// Server → client: the run completed.
    Done,
    /// Either direction: fatal protocol-level rejection.
    Abort {
        /// Human-readable reason.
        reason: String,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Join { .. } => ty::JOIN,
            Frame::Welcome { .. } => ty::WELCOME,
            Frame::Push { .. } => ty::PUSH,
            Frame::Pull { .. } => ty::PULL,
            Frame::Done => ty::DONE,
            Frame::Abort { .. } => ty::ABORT,
        }
    }

    fn payload_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Join { client_id, ctx } => {
                out.extend_from_slice(&client_id.to_le_bytes());
                out.extend_from_slice(&ctx.to_wire());
            }
            Frame::Welcome { spec, init, ctx } => {
                out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
                out.extend_from_slice(spec.as_bytes());
                out.extend_from_slice(&(init.len() as u32).to_le_bytes());
                for &v in init {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&ctx.to_wire());
            }
            Frame::Push {
                round,
                client_id,
                loss_bits,
                payload,
                ctx,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&client_id.to_le_bytes());
                out.extend_from_slice(&loss_bits.to_le_bytes());
                payload.write_into(&mut out);
                out.extend_from_slice(&ctx.to_wire());
            }
            Frame::Pull {
                round,
                payload,
                ctx,
            } => {
                out.extend_from_slice(&round.to_le_bytes());
                payload.write_into(&mut out);
                out.extend_from_slice(&ctx.to_wire());
            }
            Frame::Done => {}
            Frame::Abort { reason } => {
                out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
                out.extend_from_slice(reason.as_bytes());
            }
        }
        out
    }

    /// Serializes the frame (header + payload).
    ///
    /// # Errors
    /// Returns [`WireError::Oversized`] when the payload would exceed
    /// [`MAX_FRAME`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let payload = self.payload_bytes();
        if payload.len() > MAX_FRAME as usize {
            return Err(WireError::Oversized {
                len: payload.len().min(u32::MAX as usize) as u32,
            });
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(WireError::Truncated {
                expected: n,
                got: remaining,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt("string is not UTF-8".to_owned()))
    }

    fn take_ctx(&mut self) -> Result<TraceContext, WireError> {
        TraceContext::from_wire(self.take(CTX_WIRE_LEN)?)
            .ok_or_else(|| WireError::Corrupt("unknown trace-context role tag".to_owned()))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn decode_payload(frame_type: u8, buf: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(buf);
    let frame = match frame_type {
        ty::JOIN => Frame::Join {
            client_id: c.take_u32()?,
            ctx: c.take_ctx()?,
        },
        ty::WELCOME => {
            let spec = c.take_str()?;
            let n = c.take_u32()? as usize;
            let init = c
                .take(
                    n.checked_mul(4)
                        .ok_or(WireError::Oversized { len: u32::MAX })?,
                )?
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect();
            Frame::Welcome {
                spec,
                init,
                ctx: c.take_ctx()?,
            }
        }
        ty::PUSH => Frame::Push {
            round: c.take_u64()?,
            client_id: c.take_u32()?,
            loss_bits: c.take_u32()?,
            payload: MaskedPayload::read_from(&mut c)?,
            ctx: c.take_ctx()?,
        },
        ty::PULL => Frame::Pull {
            round: c.take_u64()?,
            payload: MaskedPayload::read_from(&mut c)?,
            ctx: c.take_ctx()?,
        },
        ty::DONE => Frame::Done,
        ty::ABORT => Frame::Abort {
            reason: c.take_str()?,
        },
        other => return Err(WireError::UnknownType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Writes one frame; returns the bytes put on the wire.
///
/// # Errors
/// Returns [`WireError::Oversized`] for a too-large frame and
/// [`WireError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<u64, WireError> {
    let bytes = {
        let mut sp = span!(Level::Debug, target: "net.wire", "encode");
        let bytes = frame.encode()?;
        sp.record("bytes", bytes.len());
        bytes
    };
    {
        let mut sp = span!(Level::Debug, target: "net.wire", "write");
        sp.record("bytes", bytes.len());
        w.write_all(&bytes)?;
        w.flush()?;
    }
    Ok(bytes.len() as u64)
}

/// Reads exactly `n` bytes in bounded chunks; never allocates ahead of what
/// the stream actually delivers by more than [`READ_CHUNK`].
fn read_bounded(r: &mut impl Read, n: usize) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(n.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    while out.len() < n {
        let want = (n - out.len()).min(READ_CHUNK);
        match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: n,
                    got: out.len(),
                })
            }
            Ok(k) => out.extend_from_slice(&chunk[..k]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(out)
}

/// Reads one frame; returns it with the bytes consumed off the wire.
///
/// # Errors
/// Returns the typed [`WireError`] describing exactly how the input was
/// malformed; hostile input never panics.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, u64), WireError> {
    // The read span covers blocking on the peer, so its duration is
    // wait-for-peer plus actual transfer; callers name the surrounding
    // phase (`push_read`, `pull_wait`) to say which dominates.
    let mut sp = span!(Level::Debug, target: "net.wire", "read");
    let header = read_bounded(r, HEADER_LEN)?;
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let frame_type = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let payload = read_bounded(r, len as usize)?;
    sp.record("bytes", HEADER_LEN + payload.len());
    drop(sp);
    let frame = {
        let _sp = span!(Level::Debug, target: "net.wire", "decode");
        decode_payload(frame_type, &payload)?
    };
    Ok((frame, (HEADER_LEN + payload.len()) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_trace::Role;

    fn roundtrip(f: &Frame) -> Frame {
        let bytes = f.encode().unwrap();
        let (back, n) = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(n as usize, bytes.len());
        back
    }

    #[test]
    fn simple_frames_roundtrip() {
        for f in [
            Frame::Join {
                client_id: 7,
                ctx: TraceContext::NONE,
            },
            Frame::Done,
            Frame::Abort {
                reason: "busy".to_owned(),
            },
            Frame::Welcome {
                spec: "apf-spec-v1;seed=3".to_owned(),
                init: vec![1.0, -2.5, 0.0],
                ctx: TraceContext::new(0x1234, Role::Server).with_link(5),
            },
        ] {
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn masked_frames_roundtrip_and_match_accounting() {
        let mask =
            FreezeMask::from_bools(&[true, false, false, true, false, true, true, false, false]);
        let payload = MaskedPayload::new(mask, vec![0.5, -1.0, 2.0, 3.5, -0.25], false).unwrap();
        assert_eq!(payload.encoded_len(), 5 + 2 + 5 * 4);
        let f = Frame::Push {
            round: 3,
            client_id: 1,
            loss_bits: 0.75f32.to_bits(),
            payload,
            ctx: TraceContext::new(9, Role::Client(1)).with_link(42),
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn context_trailer_survives_the_wire_exactly() {
        let ctx = TraceContext {
            run_id: u64::MAX,
            pid: 77,
            role: Role::Client(63),
            link_span: 1 << 40,
        };
        let f = Frame::Pull {
            round: 12,
            payload: MaskedPayload::new(FreezeMask::all_unfrozen(4), vec![0.0; 4], false).unwrap(),
            ctx,
        };
        match roundtrip(&f) {
            Frame::Pull { ctx: back, .. } => assert_eq!(back, ctx),
            other => panic!("wrong frame back: {other:?}"),
        }
    }

    #[test]
    fn corrupt_context_role_tag_is_typed() {
        let f = Frame::Join {
            client_id: 0,
            ctx: TraceContext::NONE,
        };
        let mut bytes = f.encode().unwrap();
        // The role tag is byte 20 of the trailing context.
        let tag_at = bytes.len() - CTX_WIRE_LEN + 20;
        bytes[tag_at] = 200;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn payload_rejects_count_mismatch() {
        assert!(matches!(
            MaskedPayload::new(
                FreezeMask::from_bools(&[false, true]),
                vec![1.0, 2.0],
                false
            ),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = Frame::Done.encode().unwrap();
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Oversized { len: u32::MAX })
        ));
    }

    #[test]
    fn header_corruption_is_typed() {
        let good = Frame::Join {
            client_id: 0,
            ctx: TraceContext::NONE,
        }
        .encode()
        .unwrap();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice()),
            Err(WireError::BadMagic(_))
        ));
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut bad_version.as_slice()),
            Err(WireError::BadVersion(9))
        ));
        let mut bad_type = good.clone();
        bad_type[5] = 42;
        assert!(matches!(
            read_frame(&mut bad_type.as_slice()),
            Err(WireError::UnknownType(42))
        ));
    }
}
