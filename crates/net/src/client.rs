//! The APF edge client: joins a parameter server, trains locally from the
//! shared [`RunSpec`], and exchanges bitmap-compressed masked deltas.
//!
//! The client reconstructs everything deterministic — dataset shard, model
//! init, optimizer, its own [`ApfManager`] — from the spec string the
//! server's Welcome frame carries, so the only state on the wire is the
//! masked parameter traffic itself. Because freezing decisions are pure
//! functions of the synchronized model (§6.2), the client's manager and the
//! server's replica never disagree about which scalars a round transfers.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use apf::{Aimd, ApfManager};
use apf_fedsim::RunSpec;
use apf_trace::{event, span, Level, Role, TraceContext};

use crate::server::NetError;
use crate::wire::{read_frame, write_frame, Frame, MaskedPayload};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// The server to join.
    pub server: SocketAddr,
    /// This client's slot (must be `< spec.clients` and unique).
    pub id: u32,
    /// Total budget for the connect-retry loop.
    pub connect_timeout: Duration,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Fault injection for tests: exit (dropping the connection) right
    /// before pushing this round's update.
    pub fail_before_push_round: Option<u64>,
}

impl ClientOpts {
    /// Standard options for joining `server` as client `id`.
    pub fn new(server: SocketAddr, id: u32) -> ClientOpts {
        ClientOpts {
            server,
            id,
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(30),
            fail_before_push_round: None,
        }
    }
}

/// What a client run produced.
#[derive(Debug)]
pub struct ClientOutcome {
    /// Rounds fully completed (push + pull applied).
    pub rounds_done: u64,
    /// Actual bytes moved on the wire, both directions, including framing.
    pub wire_bytes: u64,
    /// Set when the run ended early on purpose (injected fault).
    pub injected_fault: bool,
}

/// Connects with retries until `connect_timeout` elapses — the server may
/// still be binding (or its addr file may just have appeared) when the
/// client process starts.
fn connect_retry(addr: SocketAddr, budget: Duration) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + budget;
    loop {
        let left = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| {
                NetError::Io(std::io::Error::new(
                    ErrorKind::TimedOut,
                    format!("could not connect to {addr} within {budget:?}"),
                ))
            })?;
        let attempt = left.min(Duration::from_millis(500));
        match TcpStream::connect_timeout(&addr, attempt) {
            Ok(stream) => return Ok(stream),
            Err(_) => std::thread::sleep(Duration::from_millis(25).min(left)),
        }
    }
}

/// Joins the server and runs the client side of the full round loop.
///
/// # Errors
/// Propagates connect/wire failures, a server [`Frame::Abort`] as
/// [`NetError::Protocol`], and a malformed Welcome spec as
/// [`NetError::Spec`].
pub fn run_client(opts: &ClientOpts) -> Result<ClientOutcome, NetError> {
    apf_trace::init_from_env();
    let mut stream = connect_retry(opts.server, opts.connect_timeout)?;
    stream.set_read_timeout(Some(opts.io_timeout))?;
    stream.set_write_timeout(Some(opts.io_timeout))?;
    stream.set_nodelay(true)?;
    let mut wire_bytes = 0u64;

    // The Join context announces who we are; the run id is still unknown
    // (the server mints it and hands it back in the Welcome).
    wire_bytes += write_frame(
        &mut stream,
        &Frame::Join {
            client_id: opts.id,
            ctx: TraceContext::new(0, Role::Client(opts.id)),
        },
    )?;
    let (welcome, k) = read_frame(&mut stream)?;
    wire_bytes += k;
    let (spec_text, init, server_ctx) = match welcome {
        Frame::Welcome { spec, init, ctx } => (spec, init, ctx),
        Frame::Abort { reason } => return Err(NetError::Protocol(format!("rejected: {reason}"))),
        other => {
            return Err(NetError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };
    // Adopt the server's run id so every record this process emits merges
    // into the same logical trace; `welcome_recv` (paired with the server's
    // `welcome_sent`) anchors cross-process clock alignment.
    let client_ctx = TraceContext::new(server_ctx.run_id, Role::Client(opts.id));
    // Set even with tracing off: the stamp also tags `apf-prof` profile
    // headers, so `trace-report flame` can merge per-process profiles.
    apf_trace::set_thread_context(client_ctx);
    if apf_trace::enabled(Level::Info) {
        apf_trace::emit_header(&spec_text);
        event!(Level::Info, target: "net.client", "welcome_recv",
            client = opts.id, bytes_wire = k, peer_pid = server_ctx.pid,
            peer_span = server_ctx.link_span);
    }
    let spec = RunSpec::parse(&spec_text).map_err(|e| NetError::Spec(e.to_string()))?;
    if opts.id as usize >= spec.clients {
        return Err(NetError::Spec(format!(
            "client id {} out of range for {} clients",
            opts.id, spec.clients
        )));
    }
    let cfg = spec
        .apf_config()
        .ok_or_else(|| NetError::Unsupported("spec strategy has no masked wire form".to_owned()))?;
    if init.len() != spec.init_params().len() {
        return Err(NetError::Protocol(format!(
            "initial model has {} scalars, spec implies {}",
            init.len(),
            spec.init_params().len()
        )));
    }
    let mut client = spec.make_client(opts.id as usize);
    client.load_flat(&init);
    let mut manager = ApfManager::new(&init, cfg, Box::new(Aimd::default()))
        .map_err(|e| NetError::Spec(e.to_string()))?;
    let wire_f16 = spec.wire_f16();

    let mut session = span!(Level::Info, target: "net.client", "session",
        client = opts.id, rounds = spec.rounds);
    for round in 0..spec.rounds as u64 {
        let round_span = span!(Level::Info, target: "net.client", "round",
            round = round, client = opts.id);
        // Local training with the per-iteration rollback hook (Alg. 1
        // line 2) — identical to the simulator's post_local_iteration.
        // The `local_train` span covers everything compute-side before the
        // push: training iterations, rollback, and update selection.
        let (loss, mut l, up, mask) = {
            let _sp = span!(Level::Debug, target: "net.client", "local_train",
                round = round);
            let mgr = &manager;
            let hook = move |p: &mut [f32]| mgr.rollback(p, round);
            let loss = client.local_round(spec.local_iters, &hook);
            let mut l = client.flat_params();
            manager.rollback(&mut l, round);
            let up = manager.select_unfrozen(&l, round);
            let mask = manager.frozen_mask_packed(round);
            (loss, l, up, mask)
        };

        if opts.fail_before_push_round == Some(round) {
            // Injected fault: vanish mid-round, connection and all.
            return Ok(ClientOutcome {
                rounds_done: round,
                wire_bytes,
                injected_fault: true,
            });
        }
        {
            let mut sp = span!(Level::Debug, target: "net.client", "push",
                round = round);
            let k = write_frame(
                &mut stream,
                &Frame::Push {
                    round,
                    client_id: opts.id,
                    loss_bits: loss.to_bits(),
                    payload: MaskedPayload::new(mask.clone(), up, wire_f16)?,
                    ctx: client_ctx.with_link(round_span.id()),
                },
            )?;
            sp.record("bytes_wire", k);
            wire_bytes += k;
        }

        // `pull_wait` spans both waiting for the server (everyone else's
        // pushes plus the reduce) and the downlink transfer itself;
        // trace-report splits the two against the server's `pull_write`.
        let (frame, k) = {
            let mut sp = span!(Level::Debug, target: "net.client", "pull_wait",
                round = round);
            let (frame, k) = read_frame(&mut stream)?;
            sp.record("bytes_wire", k);
            if let Frame::Pull { ctx, .. } = &frame {
                if ctx.link_span != 0 {
                    sp.record("peer_span", ctx.link_span);
                }
            }
            (frame, k)
        };
        wire_bytes += k;
        let agg = match frame {
            Frame::Pull {
                round: r, payload, ..
            } if r == round && payload.mask == mask => payload.values,
            Frame::Abort { reason } => {
                return Err(NetError::Protocol(format!("server aborted: {reason}")))
            }
            other => {
                return Err(NetError::Protocol(format!(
                    "expected Pull for round {round}, got {other:?}"
                )))
            }
        };
        {
            let _sp = span!(Level::Debug, target: "net.client", "apply",
                round = round);
            manager.apply_aggregate(&mut l, &agg, round);
            manager.finish_round(&l, round);
            client.load_flat(&l);
        }
    }

    // The server's Done is a courtesy; the round count already told us the
    // run is over, so a missing/failed Done is not an error.
    if let Ok((Frame::Done, k)) = read_frame(&mut stream) {
        wire_bytes += k;
    }
    session.record("wire_bytes", wire_bytes);
    drop(session);
    Ok(ClientOutcome {
        rounds_done: spec.rounds as u64,
        wire_bytes,
        injected_fault: false,
    })
}
