//! `apf-net`: APF over TCP — a parameter server, an edge client, and the
//! length-prefixed masked-delta wire protocol between them.
//!
//! The crate turns the in-process simulator's synchronization round into a
//! real client/server exchange while keeping one invariant absolute: a
//! networked run of a [`RunSpec`] is **bitwise identical** to
//! `RunSpec::build_runner()` on the same spec — same loss, frozen-ratio,
//! and accuracy bit patterns, same logical byte accounting, same final
//! global model. `crates/net/tests/parity.rs` enforces this in-process and
//! `scripts/verify.sh` re-proves it across OS processes with the
//! `apf-server` / `apf-client` binaries.
//!
//! Module map:
//! - [`wire`] — frames, the masked payload encoding, typed [`WireError`]s;
//! - [`server`] — [`NetServer`]: join phase, deterministic round loop,
//!   graceful degradation when clients die;
//! - [`client`] — [`run_client`]: spec-driven local training against a live
//!   server.
//!
//! [`RunSpec`]: apf_fedsim::RunSpec

//! Distributed tracing: since wire v2 every handshake and round frame
//! carries an `apf_trace::TraceContext`, so a traced run (`APF_TRACE=debug`
//! plus `--trace-file` on the binaries) produces per-process JSONL traces
//! that share one run id and link spans across the wire. `trace-report
//! timeline` merges them into a per-round compute/transfer/wait breakdown;
//! with tracing disabled the instrumentation is a relaxed atomic load per
//! site and allocates nothing (`crates/net/tests/alloc.rs`).

pub mod client;
pub mod server;
pub mod wire;

mod telemetry;

pub use client::{run_client, ClientOpts, ClientOutcome};
pub use server::{NetError, NetServer, ServerOpts, ServerOutcome};
pub use wire::{read_frame, write_frame, Frame, MaskedPayload, WireError, CTX_WIRE_LEN, MAX_FRAME};
