//! The APF parameter server: owns the global model and the per-scalar
//! freeze state, aggregates masked client deltas, and replays the exact
//! arithmetic of the in-process simulator so a networked run is bitwise
//! identical to `RunSpec::build_runner()` on the same spec.
//!
//! Determinism notes (each mirrors a line of `ApfStrategy::sync_round` /
//! `FlRunner::run_round`):
//! - Pushes are consumed in client-id order, so the weighted mean sums
//!   uploads in exactly the simulator's client-index order.
//! - Under f16, uploads arrive as binary16 bit patterns and are widened on
//!   decode, which equals the simulator's `f16_decode(f16_encode(..))`
//!   roundtrip; the aggregate is narrowed the same way before it is applied
//!   anywhere.
//! - The server keeps one [`ApfManager`] replica; because APF freezing
//!   decisions are pure functions of the synchronized parameters (§6.2),
//!   this replica stays in lockstep with every client's manager.
//!
//! Fault handling: a client that disconnects, times out, or violates the
//! protocol is dropped from the round (aggregation weight 0) and all later
//! rounds; the run continues with the survivors and only fails with
//! [`NetError::AllClientsLost`] when nobody is left.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apf::{Aimd, ApfManager};
use apf_fedsim::{ExperimentLog, RoundRecord, RunSpec};
use apf_obs::{Acceptor, ObsState, RunInfo};
use apf_quant::f16_roundtrip_in_place;
use apf_trace::{event, span, Level, Role, TraceContext};

use crate::telemetry::{mint_run_id, NetMetrics};
use crate::wire::{read_frame, write_frame, Frame, MaskedPayload, WireError};

/// Parameter-server configuration.
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The run to serve. Must be an APF spec (the wire protocol transfers
    /// masked deltas; FedAvg has no mask to speak of).
    pub spec: RunSpec,
    /// How long to wait for all clients to join before giving up.
    pub join_timeout: Duration,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Optional observability state fed per round (the `/snapshot` backing
    /// store when an `ObsServer` is bound alongside).
    pub obs: Option<Arc<ObsState>>,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            addr: "127.0.0.1:0".to_owned(),
            spec: RunSpec::golden(),
            join_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            obs: None,
        }
    }
}

/// What a completed (possibly degraded) networked run produced.
#[derive(Debug)]
pub struct ServerOutcome {
    /// The per-round metric log, same semantics as the simulator's.
    pub log: ExperimentLog,
    /// The final global flat model.
    pub global: Vec<f32>,
    /// Actual bytes moved on the wire, both directions, including framing.
    pub wire_bytes: u64,
    /// Clients dropped mid-run (id order).
    pub lost_clients: Vec<u32>,
}

/// A networked-runtime failure.
#[derive(Debug)]
pub enum NetError {
    /// Wire-level failure on a connection the run could not survive losing.
    Wire(WireError),
    /// Listener/transport failure.
    Io(std::io::Error),
    /// Not all clients joined within the join timeout.
    JoinTimeout {
        /// Clients that did join.
        joined: usize,
        /// Clients the spec requires.
        expected: usize,
    },
    /// Every client was lost before the run completed.
    AllClientsLost {
        /// The round during which the last client died.
        round: u64,
    },
    /// The spec cannot run over this protocol (e.g. FedAvg).
    Unsupported(String),
    /// A peer violated the protocol state machine.
    Protocol(String),
    /// The run spec failed to parse or validate.
    Spec(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::JoinTimeout { joined, expected } => {
                write!(f, "join timeout: {joined}/{expected} clients joined")
            }
            NetError::AllClientsLost { round } => {
                write!(f, "all clients lost by round {round}")
            }
            NetError::Unsupported(why) => write!(f, "unsupported spec: {why}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Spec(why) => write!(f, "bad spec: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// Weighted elementwise mean, operation-for-operation identical to the
/// simulator's aggregation (sum `w * x` in index order, then divide by the
/// weight total) so the result is bitwise equal.
fn weighted_mean(vecs: &[Vec<f32>], weights: &[f32]) -> Option<Vec<f32>> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || vecs.is_empty() {
        return None;
    }
    let n = vecs[0].len();
    let mut out = vec![0.0f32; n];
    for (v, &w) in vecs.iter().zip(weights) {
        if w == 0.0 {
            continue;
        }
        debug_assert_eq!(v.len(), n);
        for (o, &x) in out.iter_mut().zip(v) {
            *o += w * x;
        }
    }
    for o in &mut out {
        *o /= total;
    }
    Some(out)
}

/// A bound, not-yet-serving parameter server. Two-phase so callers can learn
/// the ephemeral port (and e.g. write an addr file) before blocking in
/// [`NetServer::serve`].
pub struct NetServer {
    opts: ServerOpts,
    acceptor: Acceptor,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.acceptor.addr())
            .finish()
    }
}

impl NetServer {
    /// Binds the listen address and validates the spec.
    ///
    /// # Errors
    /// [`NetError::Unsupported`] for a non-APF spec, [`NetError::Io`] on
    /// bind failure.
    pub fn bind(opts: ServerOpts) -> Result<NetServer, NetError> {
        apf_trace::init_from_env();
        if opts.spec.apf_config().is_none() {
            return Err(NetError::Unsupported(
                "the wire protocol carries masked APF deltas; use an apf strategy".to_owned(),
            ));
        }
        let acceptor = Acceptor::bind(opts.addr.as_str(), opts.io_timeout, 64)?;
        Ok(NetServer { opts, acceptor })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.acceptor.addr()
    }

    /// Runs the join phase and the full round loop to completion.
    ///
    /// # Errors
    /// [`NetError::JoinTimeout`] when the fleet never assembles,
    /// [`NetError::AllClientsLost`] when every client dies mid-run.
    pub fn serve(mut self) -> Result<ServerOutcome, NetError> {
        let spec = self.opts.spec.clone();
        let n = spec.clients;
        let canonical = spec.canonical();
        let run_id = mint_run_id(&canonical);
        let server_ctx = TraceContext::new(run_id, Role::Server);
        // The context stamp is one TLS store and also tags `apf-prof`
        // profile headers, so it is set even with tracing off; only the
        // trace header record stays gated on the level.
        apf_trace::set_thread_context(server_ctx);
        if apf_trace::enabled(Level::Info) {
            apf_trace::emit_header(&canonical);
        }
        let metrics = NetMetrics::new(n);
        if let Some(obs) = &self.opts.obs {
            obs.configure_run(RunInfo {
                name: spec.run_name(),
                model: "m".to_owned(),
                strategy: spec.strategy_name(),
                rounds_total: spec.rounds as u64,
                threads: 1,
                host_parallelism: std::thread::available_parallelism()
                    .map_or(1, |p| p.get() as u64),
            });
        }
        let mut root = span!(Level::Info, target: "net.server", "serve",
            clients = n, rounds = spec.rounds);

        let mut wire_bytes = 0u64;
        let mut streams = self.join_phase(n, &mut wire_bytes, &metrics)?;

        let init = spec.init_params();
        let cfg = spec.apf_config().expect("validated at bind");
        let mut manager = ApfManager::new(&init, cfg, Box::new(Aimd::default()))
            .map_err(|e| NetError::Spec(e.to_string()))?;
        let wire_f16 = spec.wire_f16();

        // Initial model distribution. The context's link is the serve span,
        // and the per-client `welcome_sent` events (paired with each
        // client's `welcome_recv`) are the clock-alignment anchor
        // trace-report uses to put all processes on the server's timeline.
        let welcome = Frame::Welcome {
            spec: canonical.clone(),
            init: init.clone(),
            ctx: server_ctx.with_link(root.id()),
        };
        for (i, slot) in streams.iter_mut().enumerate() {
            let Some(stream) = slot else { continue };
            match write_frame(stream, &welcome) {
                Ok(k) => {
                    wire_bytes += k;
                    metrics.wire_tx_bytes.add(k);
                    metrics.clients[i].wire_bytes.add(k);
                    event!(Level::Info, target: "net.server", "welcome_sent",
                        client = i, bytes_wire = k);
                }
                Err(_) => *slot = None,
            }
        }

        let mut g = init.clone();
        let mut eval = spec.eval_setup();
        let mut log = ExperimentLog::new(&spec.run_name());
        let model_bytes = init.len() as u64 * 4;
        let mut cum_bytes = 0u64;
        let mut best_accuracy = 0.0f32;
        let mut lost_clients: Vec<u32> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i as u32)
            .collect();

        for round in 0..spec.rounds as u64 {
            let round_t0 = Instant::now();
            let mut round_span = span!(Level::Info, target: "net.server", "round",
                round = round);
            if round == 0 {
                // Same accounting as the simulator: round 0 charges the
                // initial broadcast for the whole fleet.
                cum_bytes += model_bytes * n as u64;
                event!(Level::Debug, target: "net.comm", "init_broadcast",
                    bytes = model_bytes * n as u64, clients = n);
            }
            let mask = manager.frozen_mask_packed(round);
            let unfrozen = mask.unfrozen_count();

            // Collect pushes in client-id order (the aggregation order the
            // simulator uses). A client that fails here is dropped for good.
            let mut uploads: Vec<Vec<f32>> = vec![vec![0.0; unfrozen]; n];
            let mut weights = vec![0.0f32; n];
            let mut losses = vec![0.0f32; n];
            for i in 0..n {
                let Some(stream) = &mut streams[i] else {
                    continue;
                };
                let push_t0 = Instant::now();
                let mut sp = span!(Level::Debug, target: "net.server", "push_read",
                    round = round, client = i);
                match read_frame(stream) {
                    Ok((
                        Frame::Push {
                            round: r,
                            client_id,
                            loss_bits,
                            payload,
                            ctx,
                        },
                        k,
                    )) if r == round
                        && client_id as usize == i
                        && payload.f16 == wire_f16
                        && payload.mask == mask =>
                    {
                        sp.record("bytes_wire", k);
                        if ctx.link_span != 0 {
                            sp.record("peer_span", ctx.link_span);
                        }
                        wire_bytes += k;
                        metrics.wire_rx_bytes.add(k);
                        metrics.clients[i].wire_bytes.add(k);
                        metrics
                            .push_wait_us
                            .record(push_t0.elapsed().as_micros() as f64);
                        metrics.clients[i]
                            .round_us
                            .record(round_t0.elapsed().as_micros() as f64);
                        // Logical masked-transfer bytes (the ledger formula),
                        // not framing: reconcile sums these against the run
                        // ledger.
                        event!(Level::Debug, target: "net.comm", "transfer",
                            round = round, client = i, dir = "up",
                            bytes = payload.encoded_len() - 5);
                        uploads[i] = payload.values;
                        weights[i] = 1.0;
                        losses[i] = f32::from_bits(loss_bits);
                    }
                    _ => {
                        sp.record("lost", true);
                        streams[i] = None;
                        lost_clients.push(i as u32);
                        event!(Level::Warn, target: "net.server", "client_lost",
                            round = round, client = i);
                    }
                }
            }
            let alive = weights.iter().filter(|&&w| w > 0.0).count();
            metrics.clients_alive.set(alive as f64);
            if alive == 0 {
                self.abort_all(&mut streams, "all peers lost");
                return Err(NetError::AllClientsLost { round });
            }

            let agg = {
                let _sp = span!(Level::Debug, target: "net.server", "reduce",
                    round = round, alive = alive);
                let mut agg = weighted_mean(&uploads, &weights).expect("alive > 0");
                if wire_f16 {
                    // Matches the simulator's narrowing of the aggregate
                    // before it is applied or re-broadcast.
                    f16_roundtrip_in_place(&mut agg);
                }
                agg
            };

            // Broadcast the aggregate; send failures drop the client.
            let pull_payload = MaskedPayload::new(mask.clone(), agg.clone(), wire_f16)?;
            let down_logical = pull_payload.encoded_len() - 5;
            let pull = Frame::Pull {
                round,
                payload: pull_payload,
                ctx: server_ctx.with_link(round_span.id()),
            };
            for (i, slot) in streams.iter_mut().enumerate() {
                let Some(stream) = slot else {
                    continue;
                };
                let mut sp = span!(Level::Debug, target: "net.server", "pull_write",
                    round = round, client = i);
                match write_frame(stream, &pull) {
                    Ok(k) => {
                        sp.record("bytes_wire", k);
                        wire_bytes += k;
                        metrics.wire_tx_bytes.add(k);
                        metrics.clients[i].wire_bytes.add(k);
                        event!(Level::Debug, target: "net.comm", "transfer",
                            round = round, client = i, dir = "down",
                            bytes = down_logical);
                    }
                    Err(_) => {
                        sp.record("lost", true);
                        *slot = None;
                        lost_clients.push(i as u32);
                    }
                }
            }

            // Advance the server replica exactly as every client does.
            manager.apply_aggregate(&mut g, &agg, round);
            let rep = manager.finish_round(&g, round);

            let accuracy = if spec.evaluates_at(round) {
                let acc = eval.accuracy(&g);
                best_accuracy = best_accuracy.max(acc);
                Some(acc)
            } else {
                None
            };
            // Logical (ledger) bytes: one masked transfer per surviving
            // client each way — identical to the simulator when nobody died.
            let bytes_up = alive as u64 * rep.bytes_up;
            let bytes_down = alive as u64 * rep.bytes_down;
            cum_bytes += bytes_up + bytes_down;
            let loss = losses.iter().sum::<f32>() / alive as f32;
            // The per-round accounting record reconcile checks against the
            // per-client transfer events and the run ledger.
            event!(Level::Debug, target: "net.server", "round_bytes",
                round = round, bytes_up = bytes_up, bytes_down = bytes_down,
                cum_bytes = cum_bytes, alive = alive);
            metrics.rounds.inc();
            metrics
                .round_us
                .record(round_t0.elapsed().as_micros() as f64);
            round_span.record("alive", alive);
            if let Some(obs) = &self.opts.obs {
                obs.record_round(
                    round,
                    &[
                        ("net.loss", f64::from(loss)),
                        ("net.frozen_ratio", f64::from(rep.frozen_ratio())),
                        ("net.cum_bytes", cum_bytes as f64),
                        ("net.clients_alive", alive as f64),
                    ],
                    Vec::new(),
                );
            }
            log.push(RoundRecord {
                round,
                loss,
                accuracy,
                best_accuracy,
                frozen_ratio: rep.frozen_ratio(),
                bytes_up,
                bytes_down,
                cum_bytes,
                compute_secs: 0.0,
                comm_secs: 0.0,
                cum_secs: 0.0,
            });
        }

        for stream in streams.iter_mut().flatten() {
            if let Ok(k) = write_frame(stream, &Frame::Done) {
                wire_bytes += k;
                metrics.wire_tx_bytes.add(k);
            }
            let _ = stream.flush();
        }
        self.acceptor.shutdown();
        lost_clients.sort_unstable();
        lost_clients.dedup();
        if let Some(obs) = &self.opts.obs {
            obs.mark_completed();
        }
        root.record("wire_bytes", wire_bytes);
        root.record("lost", lost_clients.len());
        Ok(ServerOutcome {
            log,
            global: g,
            wire_bytes,
            lost_clients,
        })
    }

    /// Accepts connections until every client slot has joined or the join
    /// timeout elapses. Connections that fail the handshake (bad frame,
    /// duplicate or out-of-range id) are rejected and do not consume a slot.
    fn join_phase(
        &mut self,
        n: usize,
        wire_bytes: &mut u64,
        metrics: &NetMetrics,
    ) -> Result<Vec<Option<TcpStream>>, NetError> {
        let _sp = span!(Level::Info, target: "net.server", "join_phase", expected = n);
        let deadline = Instant::now() + self.opts.join_timeout;
        let queue = self.acceptor.queue();
        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut joined = 0usize;
        while joined < n {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            let Some(mut stream) = queue.pop_timeout(left) else {
                break;
            };
            match read_frame(&mut stream) {
                Ok((Frame::Join { client_id, ctx }, k)) => {
                    *wire_bytes += k;
                    metrics.wire_rx_bytes.add(k);
                    let id = client_id as usize;
                    if id >= n || streams[id].is_some() {
                        let _ = write_frame(
                            &mut stream,
                            &Frame::Abort {
                                reason: format!("client id {client_id} invalid or taken"),
                            },
                        );
                        continue;
                    }
                    event!(Level::Info, target: "net.server", "join",
                        client = id, peer_pid = ctx.pid);
                    streams[id] = Some(stream);
                    joined += 1;
                }
                // Garbage or truncated handshake: drop the connection and
                // keep waiting for real clients.
                _ => drop(stream),
            }
        }
        if joined < n {
            self.abort_all(&mut streams, "join phase incomplete");
            return Err(NetError::JoinTimeout {
                joined,
                expected: n,
            });
        }
        Ok(streams)
    }

    fn abort_all(&mut self, streams: &mut [Option<TcpStream>], reason: &str) {
        for slot in streams.iter_mut() {
            if let Some(stream) = slot {
                let _ = write_frame(
                    stream,
                    &Frame::Abort {
                        reason: reason.to_owned(),
                    },
                );
            }
            *slot = None;
        }
        self.acceptor.shutdown();
    }
}
