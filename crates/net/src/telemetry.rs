//! Server-side metrics for the networked path: pre-resolved handles into
//! the `apf_trace::metrics` registry, so per-round updates are pure atomic
//! operations (no name lookup, no allocation) and everything surfaces
//! through `apf-obs`'s `/metrics` endpoint automatically.
//!
//! Metric names:
//! - `net.server.wire_tx_bytes` / `net.server.wire_rx_bytes` — counters of
//!   actual framed bytes sent/received (framing overhead included);
//! - `net.server.rounds` — completed rounds;
//! - `net.server.clients_alive` — gauge, survivors after the latest round;
//! - `net.server.round_us` — histogram of full round latency;
//! - `net.server.push_wait_us` — histogram of per-client time spent in
//!   `read_frame` waiting for (plus receiving) a Push;
//! - `net.server.client.<k>.round_us` — per-client histogram, join-to-push
//!   latency of each round as seen by the server;
//! - `net.server.client.<k>.wire_bytes` — per-client counter of framed
//!   bytes exchanged with that client.

use std::sync::Arc;
use std::time::UNIX_EPOCH;

use apf_trace::metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};

/// Round/latency histogram bounds in microseconds: 100µs to 30s, roughly
/// 1-3-10 spaced.
const US_BOUNDS: [f64; 12] = [
    100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7,
];

/// Per-client metric handles.
pub(crate) struct ClientMetrics {
    /// Server-observed per-round latency for this client (µs).
    pub round_us: Arc<Histogram>,
    /// Framed bytes exchanged with this client, both directions.
    pub wire_bytes: Counter,
}

/// All server-side handles, resolved once per run.
pub(crate) struct NetMetrics {
    pub wire_tx_bytes: Counter,
    pub wire_rx_bytes: Counter,
    pub rounds: Counter,
    pub clients_alive: Gauge,
    pub round_us: Arc<Histogram>,
    pub push_wait_us: Arc<Histogram>,
    pub clients: Vec<ClientMetrics>,
}

impl NetMetrics {
    /// Resolves every handle for a fleet of `n` clients. The lookups lock
    /// the registry (and allocate names) — exactly once, here; every later
    /// update is lock- and allocation-free.
    pub fn new(n: usize) -> NetMetrics {
        NetMetrics {
            wire_tx_bytes: counter("net.server.wire_tx_bytes"),
            wire_rx_bytes: counter("net.server.wire_rx_bytes"),
            rounds: counter("net.server.rounds"),
            clients_alive: gauge("net.server.clients_alive"),
            round_us: histogram("net.server.round_us", &US_BOUNDS),
            push_wait_us: histogram("net.server.push_wait_us", &US_BOUNDS),
            clients: (0..n)
                .map(|k| ClientMetrics {
                    round_us: histogram(&format!("net.server.client.{k}.round_us"), &US_BOUNDS),
                    wire_bytes: counter(&format!("net.server.client.{k}.wire_bytes")),
                })
                .collect(),
        }
    }
}

/// Mints a run id: a nonzero FNV-1a mix of the canonical spec, the pid, and
/// the wall clock, so concurrent and repeated runs of the same spec get
/// distinct ids while one run's processes all share the one the server
/// hands out in its Welcome frames.
pub(crate) fn mint_run_id(seed: &str) -> u64 {
    let nanos = UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let bytes = seed
        .bytes()
        .chain(std::process::id().to_le_bytes())
        .chain(nanos.to_le_bytes());
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_nonzero_and_distinct_over_time() {
        let a = mint_run_id("spec");
        let b = mint_run_id("spec");
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        // Nanosecond clock means two mints virtually never collide.
        assert_ne!(a, b);
    }

    #[test]
    fn handles_resolve_per_client() {
        let m = NetMetrics::new(3);
        assert_eq!(m.clients.len(), 3);
        m.clients[2].wire_bytes.add(10);
        assert!(counter("net.server.client.2.wire_bytes").get() >= 10);
    }
}
