//! `apf-client`: one networked APF edge client.
//!
//! ```text
//! apf-client --id N (--server HOST:PORT | --addr-file PATH)
//!            [--connect-timeout-secs N] [--io-timeout-secs N]
//!            [--fail-before-push ROUND] [--trace-file PATH]
//!            [--prof-file PATH]
//! ```
//!
//! Joins the server, receives the run spec in the Welcome frame, and runs
//! local training + masked push/pull until the run completes. With
//! `--addr-file` the client polls for the file the server writes (so
//! scripts can launch both sides without knowing the ephemeral port).
//! `--fail-before-push` injects a mid-round crash for fault-path testing:
//! the process exits, dropping its connection, right before pushing that
//! round's update.
//!
//! `--trace-file` enables JSONL tracing to the given path (level from
//! `APF_TRACE`, defaulting to `debug`). The trace adopts the run id from
//! the server's Welcome frame, so `trace-report` can merge it with the
//! server's trace and the other clients'.
//!
//! `--prof-file` samples the client with `apf-prof` and writes folded
//! flamegraph stacks there on exit (the CLI twin of
//! `APF_PROF=1 APF_PROF_FILE=...`; `APF_PROF=alloc` additionally
//! attributes allocations to spans). The profile header carries the same
//! run id as the trace, so `trace-report flame` can merge it with the
//! server's profile.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

/// Allocation-site attribution capability (inert one-load passthrough
/// unless `APF_PROF=alloc` turns attribution on).
#[global_allocator]
static ALLOC: apf_prof::alloc::ProfAlloc = apf_prof::alloc::ProfAlloc;
use std::time::{Duration, Instant};

use apf_net::{run_client, ClientOpts};

fn usage() -> &'static str {
    "usage: apf-client --id N (--server HOST:PORT | --addr-file PATH) \
     [--connect-timeout-secs N] [--io-timeout-secs N] [--fail-before-push ROUND] \
     [--trace-file PATH] [--prof-file PATH]"
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("{addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: no addresses"))
}

/// Polls for the server's addr file until it appears (bounded by the
/// connect budget) and parses the address inside.
fn addr_from_file(path: &str, budget: Duration) -> Result<SocketAddr, String> {
    let deadline = Instant::now() + budget;
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) if !text.trim().is_empty() => return resolve(text.trim()),
            _ if Instant::now() >= deadline => {
                return Err(format!("{path}: no server address within {budget:?}"))
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Enables JSONL tracing to `path`; level from `APF_TRACE`, default `debug`
/// (mirrors `apf-server --trace-file`).
fn init_tracing(path: &str) -> Result<(), String> {
    let level = std::env::var("APF_TRACE")
        .ok()
        .and_then(|v| apf_trace::Level::parse(&v))
        .flatten()
        .unwrap_or(apf_trace::Level::Debug);
    let sink = apf_trace::FileSink::create(path).map_err(|e| format!("{path}: {e}"))?;
    apf_trace::init(level, std::sync::Arc::new(sink));
    Ok(())
}

fn run() -> Result<(), String> {
    let mut id: Option<u32> = None;
    let mut server: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut connect_timeout = Duration::from_secs(10);
    let mut io_timeout = Duration::from_secs(30);
    let mut fail_before_push: Option<u64> = None;
    let mut trace_file: Option<String> = None;
    let mut prof_file: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--id" => id = Some(value()?.parse().map_err(|_| "bad --id")?),
            "--server" => server = Some(value()?),
            "--addr-file" => addr_file = Some(value()?),
            "--connect-timeout-secs" => {
                connect_timeout = Duration::from_secs(
                    value()?.parse().map_err(|_| "bad --connect-timeout-secs")?,
                );
            }
            "--io-timeout-secs" => {
                io_timeout =
                    Duration::from_secs(value()?.parse().map_err(|_| "bad --io-timeout-secs")?);
            }
            "--fail-before-push" => {
                fail_before_push = Some(value()?.parse().map_err(|_| "bad --fail-before-push")?);
            }
            "--trace-file" => trace_file = Some(value()?),
            "--prof-file" => prof_file = Some(value()?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let id = id.ok_or_else(|| format!("--id is required\n{}", usage()))?;
    match &trace_file {
        Some(path) => init_tracing(path)?,
        None => apf_trace::init_from_env(),
    }
    let prof_owned = match &prof_file {
        Some(path) => apf_prof::start_with(
            apf_prof::env_interval(),
            Some(path.clone()),
            apf_prof::env_wants_alloc(),
        ),
        None => apf_prof::init_from_env(),
    };
    let addr = match (server, addr_file) {
        (Some(addr), None) => resolve(&addr)?,
        (None, Some(path)) => addr_from_file(&path, connect_timeout)?,
        _ => {
            return Err(format!(
                "need exactly one of --server/--addr-file\n{}",
                usage()
            ))
        }
    };
    let outcome = run_client(&ClientOpts {
        server: addr,
        id,
        connect_timeout,
        io_timeout,
        fail_before_push_round: fail_before_push,
    })
    .map_err(|e| e.to_string())?;
    if prof_owned {
        let _ = apf_prof::finish();
    }
    apf_trace::flush();
    eprintln!(
        "client {id}: {} rounds, {} wire bytes{}",
        outcome.rounds_done,
        outcome.wire_bytes,
        if outcome.injected_fault {
            " (injected fault)"
        } else {
            ""
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("apf-client: {e}");
            ExitCode::FAILURE
        }
    }
}
