//! `apf-server`: the networked APF parameter server.
//!
//! ```text
//! apf-server [--addr HOST:PORT] [--addr-file PATH] [--spec CANONICAL]
//!            [--trajectory-out PATH] [--ledger PATH] [--trace-file PATH]
//!            [--prof-file PATH] [--join-timeout-secs N]
//!            [--io-timeout-secs N] [--sim]
//! ```
//!
//! Serves one federated run described by `--spec` (a `RunSpec` canonical
//! string; defaults to the golden fixture) and exits. With `--addr-file`
//! the actually-bound address is written there so scripts can bind port 0
//! and still point clients at the server. `--trajectory-out` writes the
//! bit-exact run trajectory; `--ledger` appends a run-ledger record with
//! the same config digest a simulator run of the spec gets, so
//! `ledger-report diff` pairs the two.
//!
//! `--sim` runs the spec through the in-process simulator instead of
//! serving — same outputs, no sockets — which is how the verify harness
//! produces the baseline a networked run must match byte for byte.
//!
//! `--trace-file` enables JSONL tracing to the given path (the CLI twin of
//! `APF_TRACE_FILE`; the level comes from `APF_TRACE`, defaulting to
//! `debug` when only the flag is given). The first record is a header
//! carrying role/pid/spec so `trace-report` can merge the file with the
//! clients' traces. With `APF_OBS_ADDR` set, a live `/metrics`+`/snapshot`
//! endpoint serves the run's server-side counters.
//!
//! `--prof-file` samples the run with `apf-prof` and writes folded
//! flamegraph stacks there on exit (the CLI twin of
//! `APF_PROF=1 APF_PROF_FILE=...`; `APF_PROF=alloc` additionally
//! attributes allocations to spans — this binary installs the attributing
//! allocator). `trace-report flame` merges the output with the clients'
//! profiles by run id.

use std::process::ExitCode;

/// Allocation-site attribution capability (inert one-load passthrough
/// unless `APF_PROF=alloc` turns attribution on).
#[global_allocator]
static ALLOC: apf_prof::alloc::ProfAlloc = apf_prof::alloc::ProfAlloc;
use std::time::{Duration, Instant};

use apf_fedsim::{ExperimentLog, LedgerRecord, RunSpec, Trajectory};
use apf_net::{NetServer, ServerOpts};
use apf_obs::{ObsServer, ObsState};

struct Args {
    addr: String,
    addr_file: Option<String>,
    spec: RunSpec,
    trajectory_out: Option<String>,
    ledger: Option<String>,
    trace_file: Option<String>,
    prof_file: Option<String>,
    join_timeout: Duration,
    io_timeout: Duration,
    sim: bool,
}

fn usage() -> &'static str {
    "usage: apf-server [--addr HOST:PORT] [--addr-file PATH] [--spec CANONICAL] \
     [--trajectory-out PATH] [--ledger PATH] [--trace-file PATH] \
     [--prof-file PATH] [--join-timeout-secs N] [--io-timeout-secs N] [--sim]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_owned(),
        addr_file: None,
        spec: RunSpec::golden(),
        trajectory_out: None,
        ledger: None,
        trace_file: None,
        prof_file: None,
        join_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_secs(10),
        sim: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value()?,
            "--addr-file" => args.addr_file = Some(value()?),
            "--spec" => {
                args.spec = RunSpec::parse(&value()?).map_err(|e| e.to_string())?;
            }
            "--trajectory-out" => args.trajectory_out = Some(value()?),
            "--ledger" => args.ledger = Some(value()?),
            "--trace-file" => args.trace_file = Some(value()?),
            "--prof-file" => args.prof_file = Some(value()?),
            "--join-timeout-secs" => {
                args.join_timeout =
                    Duration::from_secs(value()?.parse().map_err(|_| "bad --join-timeout-secs")?);
            }
            "--io-timeout-secs" => {
                args.io_timeout =
                    Duration::from_secs(value()?.parse().map_err(|_| "bad --io-timeout-secs")?);
            }
            "--sim" => args.sim = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn write_outputs(
    args: &Args,
    log: &ExperimentLog,
    wire_bytes: Option<u64>,
    wall_secs: f64,
) -> Result<(), String> {
    if let Some(path) = &args.trajectory_out {
        let mut text = Trajectory::from_log(log).encode();
        if let Some(bytes) = wire_bytes {
            // Real framing bytes ride along as a comment: informative, but
            // invisible to the byte-for-byte trajectory comparison.
            text.push_str(&format!("# wire_bytes={bytes}\n"));
        }
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &args.ledger {
        let record = LedgerRecord::from_log(
            log,
            "m",
            &args.spec.strategy_name(),
            args.spec.config_digest(),
            wall_secs,
        );
        record.append_to(path).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Enables JSONL tracing to `path`: level from `APF_TRACE` when set
/// (and not `off`), else `debug` — asking for a trace file means wanting
/// the per-round phase spans in it.
fn init_tracing(path: &str) -> Result<(), String> {
    let level = std::env::var("APF_TRACE")
        .ok()
        .and_then(|v| apf_trace::Level::parse(&v))
        .flatten()
        .unwrap_or(apf_trace::Level::Debug);
    let sink = apf_trace::FileSink::create(path).map_err(|e| format!("{path}: {e}"))?;
    apf_trace::init(level, std::sync::Arc::new(sink));
    Ok(())
}

/// Starts a profiler session for `--prof-file` (or defers to `APF_PROF`);
/// returns whether this process owns the session and must finish it.
fn init_profiling(prof_file: &Option<String>) -> bool {
    match prof_file {
        Some(path) => apf_prof::start_with(
            apf_prof::env_interval(),
            Some(path.clone()),
            apf_prof::env_wants_alloc(),
        ),
        None => apf_prof::init_from_env(),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match &args.trace_file {
        Some(path) => init_tracing(path)?,
        None => apf_trace::init_from_env(),
    }
    let prof_owned = init_profiling(&args.prof_file);
    let t0 = Instant::now();
    if args.sim {
        let mut runner = args.spec.build_runner();
        runner.run();
        let log = runner.log().clone();
        if prof_owned {
            let _ = apf_prof::finish();
        }
        write_outputs(&args, &log, None, t0.elapsed().as_secs_f64())?;
        eprintln!(
            "sim run complete: {} rounds, best accuracy {:.4}, {} bytes",
            log.records.len(),
            log.best_accuracy(),
            log.total_bytes()
        );
        return Ok(());
    }
    // Live telemetry is opt-in via APF_OBS_ADDR, mirroring the simulator
    // runner; the listener lives until the run completes.
    let mut obs_server: Option<ObsServer> = None;
    let obs_state = std::env::var("APF_OBS_ADDR")
        .ok()
        .filter(|s| !s.is_empty())
        .and_then(|addr| {
            let state = ObsState::new();
            match ObsServer::bind(addr.as_str(), std::sync::Arc::clone(&state)) {
                Ok(server) => {
                    if let Ok(path) = std::env::var("APF_OBS_ADDR_FILE") {
                        if !path.is_empty() {
                            let _ = std::fs::write(&path, server.addr().to_string());
                        }
                    }
                    obs_server = Some(server);
                    Some(state)
                }
                Err(e) => {
                    eprintln!("apf-server: obs bind failed: {e}");
                    None
                }
            }
        });
    let server = NetServer::bind(ServerOpts {
        addr: args.addr.clone(),
        spec: args.spec.clone(),
        join_timeout: args.join_timeout,
        io_timeout: args.io_timeout,
        obs: obs_state,
    })
    .map_err(|e| e.to_string())?;
    let addr = server.addr();
    if let Some(path) = &args.addr_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!("serving {} clients on {addr}", args.spec.clients);
    let outcome = server.serve().map_err(|e| e.to_string())?;
    if prof_owned {
        let _ = apf_prof::finish();
    }
    write_outputs(
        &args,
        &outcome.log,
        Some(outcome.wire_bytes),
        t0.elapsed().as_secs_f64(),
    )?;
    apf_trace::flush();
    drop(obs_server);
    eprintln!(
        "run complete: {} rounds, best accuracy {:.4}, {} logical bytes, {} wire bytes, {} client(s) lost",
        outcome.log.records.len(),
        outcome.log.best_accuracy(),
        outcome.log.total_bytes(),
        outcome.wire_bytes,
        outcome.lost_clients.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("apf-server: {e}");
            ExitCode::FAILURE
        }
    }
}
