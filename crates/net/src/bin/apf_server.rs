//! `apf-server`: the networked APF parameter server.
//!
//! ```text
//! apf-server [--addr HOST:PORT] [--addr-file PATH] [--spec CANONICAL]
//!            [--trajectory-out PATH] [--ledger PATH]
//!            [--join-timeout-secs N] [--io-timeout-secs N] [--sim]
//! ```
//!
//! Serves one federated run described by `--spec` (a `RunSpec` canonical
//! string; defaults to the golden fixture) and exits. With `--addr-file`
//! the actually-bound address is written there so scripts can bind port 0
//! and still point clients at the server. `--trajectory-out` writes the
//! bit-exact run trajectory; `--ledger` appends a run-ledger record with
//! the same config digest a simulator run of the spec gets, so
//! `ledger-report diff` pairs the two.
//!
//! `--sim` runs the spec through the in-process simulator instead of
//! serving — same outputs, no sockets — which is how the verify harness
//! produces the baseline a networked run must match byte for byte.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use apf_fedsim::{ExperimentLog, LedgerRecord, RunSpec, Trajectory};
use apf_net::{NetServer, ServerOpts};

struct Args {
    addr: String,
    addr_file: Option<String>,
    spec: RunSpec,
    trajectory_out: Option<String>,
    ledger: Option<String>,
    join_timeout: Duration,
    io_timeout: Duration,
    sim: bool,
}

fn usage() -> &'static str {
    "usage: apf-server [--addr HOST:PORT] [--addr-file PATH] [--spec CANONICAL] \
     [--trajectory-out PATH] [--ledger PATH] [--join-timeout-secs N] \
     [--io-timeout-secs N] [--sim]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_owned(),
        addr_file: None,
        spec: RunSpec::golden(),
        trajectory_out: None,
        ledger: None,
        join_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_secs(10),
        sim: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value()?,
            "--addr-file" => args.addr_file = Some(value()?),
            "--spec" => {
                args.spec = RunSpec::parse(&value()?).map_err(|e| e.to_string())?;
            }
            "--trajectory-out" => args.trajectory_out = Some(value()?),
            "--ledger" => args.ledger = Some(value()?),
            "--join-timeout-secs" => {
                args.join_timeout =
                    Duration::from_secs(value()?.parse().map_err(|_| "bad --join-timeout-secs")?);
            }
            "--io-timeout-secs" => {
                args.io_timeout =
                    Duration::from_secs(value()?.parse().map_err(|_| "bad --io-timeout-secs")?);
            }
            "--sim" => args.sim = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn write_outputs(
    args: &Args,
    log: &ExperimentLog,
    wire_bytes: Option<u64>,
    wall_secs: f64,
) -> Result<(), String> {
    if let Some(path) = &args.trajectory_out {
        let mut text = Trajectory::from_log(log).encode();
        if let Some(bytes) = wire_bytes {
            // Real framing bytes ride along as a comment: informative, but
            // invisible to the byte-for-byte trajectory comparison.
            text.push_str(&format!("# wire_bytes={bytes}\n"));
        }
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &args.ledger {
        let record = LedgerRecord::from_log(
            log,
            "m",
            &args.spec.strategy_name(),
            args.spec.config_digest(),
            wall_secs,
        );
        record.append_to(path).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let t0 = Instant::now();
    if args.sim {
        let mut runner = args.spec.build_runner();
        runner.run();
        let log = runner.log().clone();
        write_outputs(&args, &log, None, t0.elapsed().as_secs_f64())?;
        eprintln!(
            "sim run complete: {} rounds, best accuracy {:.4}, {} bytes",
            log.records.len(),
            log.best_accuracy(),
            log.total_bytes()
        );
        return Ok(());
    }
    let server = NetServer::bind(ServerOpts {
        addr: args.addr.clone(),
        spec: args.spec.clone(),
        join_timeout: args.join_timeout,
        io_timeout: args.io_timeout,
    })
    .map_err(|e| e.to_string())?;
    let addr = server.addr();
    if let Some(path) = &args.addr_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!("serving {} clients on {addr}", args.spec.clients);
    let outcome = server.serve().map_err(|e| e.to_string())?;
    write_outputs(
        &args,
        &outcome.log,
        Some(outcome.wire_bytes),
        t0.elapsed().as_secs_f64(),
    )?;
    eprintln!(
        "run complete: {} rounds, best accuracy {:.4}, {} logical bytes, {} wire bytes, {} client(s) lost",
        outcome.log.records.len(),
        outcome.log.best_accuracy(),
        outcome.log.total_bytes(),
        outcome.wire_bytes,
        outcome.lost_clients.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("apf-server: {e}");
            ExitCode::FAILURE
        }
    }
}
