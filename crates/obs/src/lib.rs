//! **`apf-obs`** — zero-dependency live telemetry for APF runs.
//!
//! The workspace is hermetic (no registry crates), so this crate implements
//! the whole observability path on `std` alone:
//!
//! * [`ObsServer`] — a minimal HTTP/1.1 server on `std::net::TcpListener`
//!   with a bounded worker pool (sized from the `apf-par` configuration),
//!   per-connection timeouts, and graceful shutdown. Endpoints: `/healthz`,
//!   `/metrics` (Prometheus text exposition of the `apf-trace` registry),
//!   `/snapshot` (JSON run state), `/series?name=...` (ring-buffered
//!   history).
//! * [`SeriesStore`] — the in-memory time-series store: fixed-capacity ring
//!   buffers keyed by metric name, bounded in both points-per-series and
//!   series count.
//! * [`ObsState`] — the shared state the server reads and the fedsim runner
//!   writes (run metadata, latest round sample, per-layer freeze ratios).
//! * [`SeriesSink`] — an `apf-trace` sink tee that folds counter/gauge
//!   events into the store.
//! * [`prometheus`] — the exposition renderer plus a validating parser the
//!   integration tests use to prove scrapes are well-formed.
//!
//! Serving is strictly opt-in: nothing in this crate binds a socket unless
//! [`ObsServer::bind`] is called (the fedsim runner gates that behind
//! `APF_OBS_ADDR` / `FlRunnerBuilder::serve`). With no server, the rest of
//! the workspace pays nothing.

pub mod prometheus;

mod conn;
mod http;
mod sink;
mod state;
pub mod store;

pub use conn::{Acceptor, ConnQueue};
pub use http::{http_get, ObsServer};
pub use sink::SeriesSink;
pub use state::{ObsState, RunInfo};
pub use store::SeriesStore;
