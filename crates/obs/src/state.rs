//! The shared observable state behind the HTTP endpoints: run metadata, the
//! latest per-round sample, per-layer freeze ratios, and the time-series
//! store.
//!
//! Producers (the fedsim runner) call [`ObsState::configure_run`] once and
//! [`ObsState::record_round`] at each round boundary; the HTTP handlers only
//! read. All JSON is rendered here with a tiny hand-rolled writer (the crate
//! is std-only); consumers round-trip it through the workspace's in-tree
//! JSON parser in the integration tests.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::store::SeriesStore;

/// Run metadata shown in `/snapshot`.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// Experiment label, e.g. `"lenet5/apf"`.
    pub name: String,
    /// Model name, e.g. `"lenet5"`.
    pub model: String,
    /// Strategy label, e.g. `"apf"`.
    pub strategy: String,
    /// Configured total rounds.
    pub rounds_total: u64,
    /// `apf-par` pool parallelism serving the run.
    pub threads: u64,
    /// Host's available parallelism.
    pub host_parallelism: u64,
}

#[derive(Debug, Default)]
struct Latest {
    round: Option<u64>,
    fields: BTreeMap<String, f64>,
    layers: Vec<(String, f64)>,
    completed: bool,
}

/// Shared observable state; one per served run, behind an `Arc`.
#[derive(Debug, Default)]
pub struct ObsState {
    store: SeriesStore,
    info: Mutex<RunInfo>,
    latest: Mutex<Latest>,
}

/// Escapes `s` as a JSON string (with quotes) onto `out`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number (`null` for non-finite values).
fn push_json_num(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

impl ObsState {
    /// A fresh state with default store bounds.
    pub fn new() -> Arc<ObsState> {
        Arc::new(ObsState::default())
    }

    /// The underlying time-series store.
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Sets the run metadata (once, at build time).
    pub fn configure_run(&self, info: RunInfo) {
        if let Ok(mut i) = self.info.lock() {
            *i = info;
        }
    }

    /// Records one round boundary: every `(name, value)` field updates the
    /// latest-sample view *and* appends to its ring-buffered series (x =
    /// `round`); `layers` replaces the per-layer frozen-ratio view.
    pub fn record_round(&self, round: u64, fields: &[(&str, f64)], layers: Vec<(String, f64)>) {
        for (name, value) in fields {
            self.store.record(name, round as f64, *value);
        }
        if let Ok(mut l) = self.latest.lock() {
            l.round = Some(round);
            for (name, value) in fields {
                l.fields.insert((*name).to_owned(), *value);
            }
            if !layers.is_empty() {
                l.layers = layers;
            }
        }
    }

    /// Marks the run finished (surfaced as `"completed": true`).
    pub fn mark_completed(&self) {
        if let Ok(mut l) = self.latest.lock() {
            l.completed = true;
        }
    }

    /// Renders the `/snapshot` JSON document.
    pub fn snapshot_json(&self) -> String {
        let info = self.info.lock().map(|i| i.clone()).unwrap_or_default();
        let (round, fields, layers, completed) = self
            .latest
            .lock()
            .map(|l| (l.round, l.fields.clone(), l.layers.clone(), l.completed))
            .unwrap_or_default();
        let mut out = String::with_capacity(512);
        out.push_str("{\"run\":{\"name\":");
        push_json_str(&mut out, &info.name);
        out.push_str(",\"model\":");
        push_json_str(&mut out, &info.model);
        out.push_str(",\"strategy\":");
        push_json_str(&mut out, &info.strategy);
        out.push_str(&format!(",\"rounds_total\":{}}}", info.rounds_total));
        out.push_str(&format!(
            ",\"pool\":{{\"threads\":{},\"host_parallelism\":{}}}",
            info.threads, info.host_parallelism
        ));
        match round {
            Some(r) => out.push_str(&format!(",\"round\":{r}")),
            None => out.push_str(",\"round\":null"),
        }
        out.push_str(&format!(
            ",\"completed\":{}",
            if completed { "true" } else { "false" }
        ));
        out.push_str(",\"latest\":{");
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_num(&mut out, *value);
        }
        out.push_str("},\"layer_frozen_ratio\":{");
        for (i, (name, value)) in layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            push_json_num(&mut out, *value);
        }
        out.push_str("}}");
        out
    }

    /// Renders the `/series?name=...` JSON document; `None` for an unknown
    /// series.
    pub fn series_json(&self, name: &str) -> Option<String> {
        let points = self.store.series(name)?;
        let mut out = String::with_capacity(32 + points.len() * 16);
        out.push_str("{\"name\":");
        push_json_str(&mut out, name);
        out.push_str(",\"points\":[");
        for (i, (x, v)) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_json_num(&mut out, *x);
            out.push(',');
            push_json_num(&mut out, *v);
            out.push(']');
        }
        out.push_str("]}");
        Some(out)
    }

    /// Renders the series index (`/series` without a name).
    pub fn series_index_json(&self) -> String {
        let names = self.store.names();
        let mut out = String::from("{\"series\":[");
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_latest_round() {
        let s = ObsState::new();
        s.configure_run(RunInfo {
            name: "mlp/apf".to_owned(),
            model: "mlp".to_owned(),
            strategy: "apf".to_owned(),
            rounds_total: 10,
            threads: 2,
            host_parallelism: 4,
        });
        s.record_round(
            0,
            &[("fedsim.loss", 2.0), ("fedsim.frozen_ratio", 0.0)],
            vec![("fc1.w".to_owned(), 0.0)],
        );
        s.record_round(
            1,
            &[("fedsim.loss", 1.5), ("fedsim.frozen_ratio", 0.25)],
            vec![("fc1.w".to_owned(), 0.25)],
        );
        let json = s.snapshot_json();
        assert!(json.contains("\"round\":1"), "{json}");
        assert!(json.contains("\"fedsim.loss\":1.5"), "{json}");
        assert!(json.contains("\"fc1.w\":0.25"), "{json}");
        assert!(json.contains("\"completed\":false"), "{json}");
        s.mark_completed();
        assert!(s.snapshot_json().contains("\"completed\":true"));
        // Both rounds live in the series store.
        assert_eq!(
            s.series_json("fedsim.loss").unwrap(),
            "{\"name\":\"fedsim.loss\",\"points\":[[0,2],[1,1.5]]}"
        );
        assert!(s.series_json("nope").is_none());
        assert!(s.series_index_json().contains("fedsim.loss"));
    }

    #[test]
    fn non_finite_values_render_as_null() {
        let s = ObsState::new();
        s.record_round(0, &[("x", f64::NAN)], Vec::new());
        assert!(s.snapshot_json().contains("\"x\":null"));
    }
}
