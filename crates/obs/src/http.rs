//! The `/metrics` HTTP/1.1 server: `std::net::TcpListener`, a bounded
//! connection queue drained by a small set of worker threads (sized from the
//! `apf-par` pool configuration), per-connection read/write timeouts, and a
//! graceful shutdown handle.
//!
//! Endpoints:
//!
//! | Path               | Content                                             |
//! |--------------------|-----------------------------------------------------|
//! | `/healthz`         | `ok` (text) — liveness                              |
//! | `/metrics`         | Prometheus text exposition of the metrics registry  |
//! | `/snapshot`        | JSON: run info, latest round sample, layer ratios   |
//! | `/series?name=N`   | JSON: ring-buffered history of one series           |
//! | `/series`          | JSON: index of known series names                   |
//! | `/profile?seconds=N` | folded flamegraph stacks from an N-second sample  |
//!
//! `/profile` runs an inline `apf-prof` sampling window on the worker
//! thread (seconds clamped to 1–30, default 2) and returns
//! `flamegraph.pl`-ready folded output — a live profiler with no restart
//! and no files. It composes with a background profiling session: stack
//! tracking is reference-counted, so sampling a run that is already being
//! profiled neither disturbs nor is disturbed by it.
//!
//! The server is deliberately minimal: `GET` only, `Connection: close` on
//! every response, no keep-alive, no TLS. Malformed or oversized requests
//! get a 4xx and the connection is closed; handler panics are confined to
//! the worker thread and never take the process down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use apf_trace::{event, Level};

use crate::conn::{Acceptor, ConnQueue};
use crate::prometheus;
use crate::state::ObsState;

/// Per-connection socket timeout (read and write).
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Maximum bytes of request head we will read.
const MAX_HEAD: usize = 8 * 1024;
/// Maximum accepted request-line length (bytes before the first CRLF).
const MAX_REQUEST_LINE: usize = 4 * 1024;
/// Bounded pending-connection queue depth.
const QUEUE_CAP: usize = 64;

/// A running telemetry server; dropping it shuts the server down
/// gracefully (in-flight responses finish, then threads join).
pub struct ObsServer {
    state: Arc<ObsState>,
    acceptor: Acceptor,
    queue: Arc<ConnQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("addr", &self.acceptor.addr())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop plus worker threads.
    ///
    /// # Errors
    /// Propagates the bind error (address in use, permission, bad syntax).
    pub fn bind(addr: impl ToSocketAddrs, state: Arc<ObsState>) -> std::io::Result<ObsServer> {
        let acceptor = Acceptor::bind(addr, IO_TIMEOUT, QUEUE_CAP)?;
        let queue = acceptor.queue();
        // Worker count rides on the apf-par pool configuration (capped: the
        // endpoints are cheap, scrapers are few).
        let n_workers = apf_par::threads().clamp(1, 4);
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apf-obs-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(stream, &state);
                        }
                    })?,
            );
        }
        event!(Level::Info, target: "obs", "serving",
            addr = acceptor.addr().to_string());
        Ok(ObsServer {
            state,
            acceptor,
            queue,
            workers,
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.acceptor.addr()
    }

    /// The shared observable state this server reads from.
    pub fn state(&self) -> &Arc<ObsState> {
        &self.state
    }

    /// Stops accepting, drains queued connections, and joins all threads.
    /// Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        self.acceptor.shutdown();
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // Write errors (peer gone, timeout) are final for a close-delimited
    // response; nothing useful to do but drop the connection.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads the request head (up to the blank line or `MAX_HEAD` bytes) and
/// returns the request line, or an error status to answer with.
fn read_request_line(stream: &mut TcpStream) -> Result<String, (u16, &'static str)> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break, // early disconnect
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                let line_end = buf.iter().position(|&b| b == b'\n');
                if let Some(end) = line_end {
                    if end > MAX_REQUEST_LINE {
                        return Err((414, "URI Too Long"));
                    }
                    let line = String::from_utf8_lossy(&buf[..end]).trim_end().to_owned();
                    if line.is_empty() {
                        return Err((400, "Bad Request"));
                    }
                    return Ok(line);
                }
                if buf.len() > MAX_REQUEST_LINE {
                    return Err((414, "URI Too Long"));
                }
                if buf.len() > MAX_HEAD {
                    return Err((431, "Request Header Fields Too Large"));
                }
            }
            Err(_) => break, // timeout or reset
        }
    }
    Err((400, "Bad Request"))
}

/// Splits `/path?query` and extracts `name=` from the query, if present.
fn query_param<'a>(target: &'a str, key: &str) -> (&'a str, Option<String>) {
    let Some((path, query)) = target.split_once('?') else {
        return (target, None);
    };
    for pair in query.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key {
            return (path, Some(percent_decode(v)));
        }
    }
    (path, None)
}

/// Decodes `%xx` escapes and `+` (metric names contain `.` and `_` only,
/// but scrape tools escape liberally).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 3 <= bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                if let Ok(b) = u8::from_str_radix(hex, 16) {
                    out.push(b);
                    i += 3;
                    continue;
                }
                out.push(b'%');
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn handle_connection(mut stream: TcpStream, state: &ObsState) {
    let line = match read_request_line(&mut stream) {
        Ok(l) => l,
        Err((status, reason)) => {
            respond(&mut stream, status, reason, "text/plain", reason);
            return;
        }
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => {
            respond(&mut stream, 400, "Bad Request", "text/plain", "bad request");
            return;
        }
    };
    let _ = version;
    if method != "GET" {
        respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported",
        );
        return;
    }
    apf_trace::metrics::counter("obs.http_requests").inc();
    let (path, name) = query_param(target, "name");
    match path {
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain", "ok\n"),
        "/metrics" => {
            let body = prometheus::render(&apf_trace::metrics::snapshot());
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/snapshot" => {
            let body = state.snapshot_json();
            respond(&mut stream, 200, "OK", "application/json", &body);
        }
        "/profile" => {
            let (_, seconds) = query_param(target, "seconds");
            let seconds = seconds
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(2)
                .clamp(1, 30);
            let profile =
                apf_prof::sample_window(Duration::from_secs(seconds), apf_prof::DEFAULT_INTERVAL);
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain",
                &profile.render_folded(),
            );
        }
        "/series" => match name {
            Some(name) => match state.series_json(&name) {
                Some(body) => respond(&mut stream, 200, "OK", "application/json", &body),
                None => respond(
                    &mut stream,
                    404,
                    "Not Found",
                    "application/json",
                    "{\"error\":\"unknown series\"}",
                ),
            },
            None => {
                let body = state.series_index_json();
                respond(&mut stream, 200, "OK", "application/json", &body);
            }
        },
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "text/plain",
            "unknown path\n",
        ),
    }
}

/// A minimal blocking HTTP GET against `addr` for tests and smoke drivers:
/// returns `(status, body)`.
///
/// # Errors
/// Propagates connect/read errors; malformed responses yield
/// `ErrorKind::InvalidData`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: obs\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response");
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(bad)?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_param_and_percent_decode() {
        assert_eq!(query_param("/series", "name"), ("/series", None));
        assert_eq!(
            query_param("/series?name=fedsim.loss", "name"),
            ("/series", Some("fedsim.loss".to_owned()))
        );
        assert_eq!(
            query_param("/series?a=1&name=x%2Fy+z", "name"),
            ("/series", Some("x/y z".to_owned()))
        );
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
