//! The in-memory time-series store: fixed-capacity ring buffers keyed by
//! metric name.
//!
//! Each series holds up to `capacity` `(x, value)` points; older points are
//! evicted first. The x coordinate is supplied by the producer (the fedsim
//! runner uses the round index; [`crate::SeriesSink`] uses a per-series
//! sample counter), so stored histories are deterministic and clock-free.
//! The number of distinct series is also bounded — a runaway producer cannot
//! grow memory without limit; series beyond the cap are counted and
//! silently dropped.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default per-series point capacity.
pub const DEFAULT_CAPACITY: usize = 1024;
/// Default bound on the number of distinct series.
pub const DEFAULT_MAX_SERIES: usize = 256;

struct Ring {
    points: VecDeque<(f64, f64)>,
    /// Total points ever pushed (drives the x coordinate of [`SeriesStore::push`]).
    pushed: u64,
}

/// A bounded, thread-safe collection of named time series.
pub struct SeriesStore {
    series: Mutex<BTreeMap<String, Ring>>,
    capacity: usize,
    max_series: usize,
    rejected: AtomicU64,
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesStore")
            .field("capacity", &self.capacity)
            .field("max_series", &self.max_series)
            .finish()
    }
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::new(DEFAULT_CAPACITY, DEFAULT_MAX_SERIES)
    }
}

impl SeriesStore {
    /// Creates a store holding at most `max_series` series of `capacity`
    /// points each (both clamped to at least 1).
    pub fn new(capacity: usize, max_series: usize) -> SeriesStore {
        SeriesStore {
            series: Mutex::new(BTreeMap::new()),
            capacity: capacity.max(1),
            max_series: max_series.max(1),
            rejected: AtomicU64::new(0),
        }
    }

    /// Appends `(x, value)` to series `name`, evicting the oldest point of a
    /// full ring. New series beyond the series cap are dropped (counted in
    /// [`SeriesStore::rejected`]).
    pub fn record(&self, name: &str, x: f64, value: f64) {
        let Ok(mut map) = self.series.lock() else {
            return;
        };
        if !map.contains_key(name) && map.len() >= self.max_series {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ring = map.entry(name.to_owned()).or_insert_with(|| Ring {
            points: VecDeque::with_capacity(16),
            pushed: 0,
        });
        if ring.points.len() == self.capacity {
            ring.points.pop_front();
        }
        ring.points.push_back((x, value));
        ring.pushed += 1;
    }

    /// Appends `value` with x = the series' cumulative sample count (0-based).
    pub fn push(&self, name: &str, value: f64) {
        let x = {
            let Ok(map) = self.series.lock() else { return };
            map.get(name).map_or(0, |r| r.pushed)
        };
        self.record(name, x as f64, value);
    }

    /// A copy of series `name`, oldest point first; `None` if unknown.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        self.series
            .lock()
            .ok()?
            .get(name)
            .map(|r| r.points.iter().copied().collect())
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.series
            .lock()
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Points recorded against series beyond the series cap (and dropped).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let s = SeriesStore::new(3, 8);
        for i in 0..5 {
            s.record("a", i as f64, (i * 10) as f64);
        }
        assert_eq!(
            s.series("a").unwrap(),
            vec![(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        );
    }

    #[test]
    fn push_assigns_monotone_x() {
        let s = SeriesStore::new(2, 8);
        s.push("b", 1.0);
        s.push("b", 2.0);
        s.push("b", 3.0);
        // Capacity 2: points 1 and 2 survive, x keeps counting from birth.
        assert_eq!(s.series("b").unwrap(), vec![(1.0, 2.0), (2.0, 3.0)]);
    }

    #[test]
    fn series_cap_is_enforced() {
        let s = SeriesStore::new(4, 2);
        s.record("a", 0.0, 1.0);
        s.record("b", 0.0, 2.0);
        s.record("c", 0.0, 3.0);
        assert_eq!(s.names(), vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(s.rejected(), 1);
        assert!(s.series("c").is_none());
    }
}
