//! Reusable TCP connection machinery: a bounded handoff queue plus a
//! nonblocking accept loop with per-connection IO timeouts.
//!
//! Extracted from the `/metrics` HTTP server so other `std::net` servers in
//! the workspace (notably the `apf-net` parameter server) inherit the same
//! proven accept discipline: a background acceptor thread polls a
//! nonblocking listener, stamps read/write timeouts and `TCP_NODELAY` on
//! every accepted stream, and hands it to a bounded [`ConnQueue`] that
//! consumers drain — blocking, or with a deadline via
//! [`ConnQueue::pop_timeout`].

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// A bounded multi-producer multi-consumer queue of accepted connections.
///
/// `push` refuses (returning `false`) when the queue is full or closed —
/// backpressure is "drop the connection and let the peer retry", the right
/// call for both scrapers and protocol clients with connect-retry loops.
pub struct ConnQueue {
    conns: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl std::fmt::Debug for ConnQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnQueue").field("cap", &self.cap).finish()
    }
}

impl ConnQueue {
    /// Creates an open queue holding at most `cap` pending connections.
    pub fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            conns: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueues a connection; `false` when full or closed (caller drops it).
    pub fn push(&self, stream: TcpStream) -> bool {
        let Ok(mut guard) = self.conns.lock() else {
            return false;
        };
        if guard.1 || guard.0.len() >= self.cap {
            return false;
        }
        guard.0.push_back(stream);
        self.ready.notify_one();
        true
    }

    /// Blocks until a connection is available or the queue is closed.
    pub fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.conns.lock().ok()?;
        loop {
            if let Some(s) = guard.0.pop_front() {
                return Some(s);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).ok()?;
        }
    }

    /// Like [`ConnQueue::pop`], but gives up after `timeout` — the join-phase
    /// primitive that keeps a server from hanging on absent clients.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.conns.lock().ok()?;
        loop {
            if let Some(s) = guard.0.pop_front() {
                return Some(s);
            }
            if guard.1 {
                return None;
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (g, wait) = self.ready.wait_timeout(guard, left).ok()?;
            guard = g;
            if wait.timed_out() && guard.0.is_empty() {
                return None;
            }
        }
    }

    /// Closes the queue: pending pops drain what is queued, then get `None`.
    pub fn close(&self) {
        if let Ok(mut guard) = self.conns.lock() {
            guard.1 = true;
        }
        self.ready.notify_all();
    }
}

/// A background accept loop feeding a [`ConnQueue`]; dropping it stops the
/// loop and closes the queue.
pub struct Acceptor {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Acceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Acceptor")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Acceptor {
    /// Binds `addr` (`:0` for an ephemeral port) and starts accepting.
    /// Every accepted stream gets `io_timeout` read/write timeouts and
    /// `TCP_NODELAY` before entering the queue (capacity `queue_cap`).
    ///
    /// # Errors
    /// Propagates bind/spawn errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        io_timeout: Duration,
        queue_cap: usize,
    ) -> std::io::Result<Acceptor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(queue_cap));
        let accept_stop = Arc::clone(&stop);
        let accept_queue = Arc::clone(&queue);
        let handle = std::thread::Builder::new()
            .name("apf-acceptor".to_owned())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_read_timeout(Some(io_timeout));
                            let _ = stream.set_write_timeout(Some(io_timeout));
                            let _ = stream.set_nodelay(true);
                            // Queue full or closing: drop the connection
                            // (the peer retries).
                            let _ = accept_queue.push(stream);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;
        Ok(Acceptor {
            addr,
            stop,
            queue,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The queue accepted connections land in.
    pub fn queue(&self) -> Arc<ConnQueue> {
        Arc::clone(&self.queue)
    }

    /// Stops the accept loop, closes the queue, joins the thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.queue.close();
    }
}

impl Drop for Acceptor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn accepts_and_hands_off_connections() {
        let mut acc = Acceptor::bind("127.0.0.1:0", Duration::from_secs(2), 8).unwrap();
        let addr = acc.addr();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();
        let mut server_side = acc
            .queue()
            .pop_timeout(Duration::from_secs(5))
            .expect("connection should arrive");
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        acc.shutdown();
        assert!(acc.queue().pop().is_none(), "queue closed after shutdown");
    }

    #[test]
    fn pop_timeout_expires_without_traffic() {
        let acc = Acceptor::bind("127.0.0.1:0", Duration::from_secs(2), 8).unwrap();
        let t0 = Instant::now();
        assert!(acc.queue().pop_timeout(Duration::from_millis(80)).is_none());
        assert!(t0.elapsed() >= Duration::from_millis(70));
        assert!(t0.elapsed() < Duration::from_secs(2), "did not hang");
    }

    #[test]
    fn queue_capacity_bounds_pending_connections() {
        let q = ConnQueue::new(1);
        let acc = Acceptor::bind("127.0.0.1:0", Duration::from_secs(1), 4).unwrap();
        let a = TcpStream::connect(acc.addr()).unwrap();
        let b = TcpStream::connect(acc.addr()).unwrap();
        assert!(q.push(a));
        assert!(!q.push(b), "over-capacity push must refuse");
        q.close();
        assert!(q.pop().is_some(), "close drains what was queued");
        assert!(q.pop().is_none());
    }
}
