//! [`SeriesSink`] — an `apf-trace` sink tee that feeds the time-series
//! store.
//!
//! The sink forwards every line to an optional inner sink (so installing it
//! does not cost the JSONL trace) and additionally scans `target:"metrics"`
//! counter/gauge events — the lines `apf_trace::metrics::emit()` produces —
//! extracting `name`/`value` into the [`SeriesStore`] with a per-series
//! sample index as the x coordinate. Anything that is not a metrics event
//! passes through untouched; a malformed line is forwarded but ignored by
//! the scanner (never a panic).

use std::sync::Arc;

use apf_trace::TraceSink;

use crate::state::ObsState;

/// A [`TraceSink`] that tees lines to `inner` and folds metric events into
/// an [`ObsState`]'s series store.
pub struct SeriesSink {
    state: Arc<ObsState>,
    inner: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for SeriesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesSink")
            .field("tees", &self.inner.is_some())
            .finish()
    }
}

impl SeriesSink {
    /// Wraps `state`; lines are also forwarded to `inner` when given.
    pub fn new(state: Arc<ObsState>, inner: Option<Arc<dyn TraceSink>>) -> SeriesSink {
        SeriesSink { state, inner }
    }
}

/// Extracts the JSON string value following `"<key>":"` in `line`.
/// Only handles escape-free values — metric names by construction contain
/// none — and returns `None` on anything else.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    let value = &rest[..end];
    if value.contains('\\') {
        return None;
    }
    Some(value)
}

/// Extracts the JSON number following `"<key>":` in `line`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

impl TraceSink for SeriesSink {
    fn write_line(&self, line: &str) {
        if let Some(inner) = &self.inner {
            inner.write_line(line);
        }
        if !line.contains("\"target\":\"metrics\"") {
            return;
        }
        let scalar = line.contains("\"msg\":\"counter\"") || line.contains("\"msg\":\"gauge\"");
        if !scalar {
            return;
        }
        if let (Some(name), Some(value)) = (str_field(line, "name"), num_field(line, "value")) {
            self.state.store().push(name, value);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_trace::MemorySink;

    fn metric_line(msg: &str, name: &str, value: &str) -> String {
        format!(
            "{{\"t\":\"event\",\"ts_us\":1,\"lvl\":\"info\",\"target\":\"metrics\",\
             \"msg\":\"{msg}\",\"span\":0,\"thread\":1,\
             \"fields\":{{\"name\":\"{name}\",\"value\":{value}}}}}"
        )
    }

    #[test]
    fn metric_events_land_in_the_store_and_tee() {
        let state = ObsState::new();
        let mem = Arc::new(MemorySink::new());
        let sink = SeriesSink::new(Arc::clone(&state), Some(mem.clone()));
        sink.write_line(&metric_line("counter", "fedsim.bytes_up", "42"));
        sink.write_line(&metric_line("gauge", "fedsim.frozen_ratio", "0.25"));
        sink.write_line("{\"t\":\"event\",\"target\":\"fedsim\",\"msg\":\"round\"}");
        assert_eq!(
            state.store().series("fedsim.bytes_up").unwrap(),
            vec![(0.0, 42.0)]
        );
        assert_eq!(
            state.store().series("fedsim.frozen_ratio").unwrap(),
            vec![(0.0, 0.25)]
        );
        assert_eq!(mem.len(), 3, "every line tees through");
    }

    #[test]
    fn malformed_metric_lines_are_ignored() {
        let state = ObsState::new();
        let sink = SeriesSink::new(Arc::clone(&state), None);
        sink.write_line("\"target\":\"metrics\"\"msg\":\"counter\" garbage");
        sink.write_line(&metric_line("counter", "x", "notanumber"));
        sink.write_line(&metric_line("histogram", "h", "1"));
        assert!(state.store().names().is_empty());
    }
}
