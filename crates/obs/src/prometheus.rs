//! Prometheus text exposition (version 0.0.4) rendering of the `apf-trace`
//! metrics registry, plus a small validating parser used by the integration
//! tests to prove the rendered output is well-formed.
//!
//! Counters render with the conventional `_total` suffix, gauges as plain
//! samples, histograms as cumulative `_bucket{le="..."}` series closed by
//! `le="+Inf"` plus `_sum` and `_count` — exactly the shape
//! `histogram_quantile()` expects. Metric names from the registry use dots
//! (`fedsim.bytes_up`); [`sanitize_name`] maps them onto the Prometheus
//! grammar (`fedsim_bytes_up`).

use apf_trace::metrics::Snapshot;

/// Maps an arbitrary registry name onto the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` by replacing every other character with `_`
/// (and prefixing `_` if the first character is a digit).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn fmt_value(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else if x == f64::INFINITY {
        "+Inf".to_owned()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{x}")
    }
}

/// Renders a metrics [`Snapshot`] in Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(256);
    for (name, value) in &snap.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n}_total counter\n"));
        out.push_str(&format!("{n}_total {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("{n} {}\n", fmt_value(*value)));
    }
    for (name, bounds, buckets, count, sum) in &snap.histograms {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cum = 0u64;
        for (i, c) in buckets.iter().enumerate() {
            cum += c;
            let le = if i < bounds.len() {
                fmt_value(bounds[i])
            } else {
                "+Inf".to_owned()
            };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n", fmt_value(*sum)));
        out.push_str(&format!("{n}_count {count}\n"));
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_total`/`_bucket` suffix).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`NaN`, `+Inf`, `-Inf` included).
    pub value: f64,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse().map_err(|_| format!("bad value {s:?}")),
    }
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("label without '=': {part:?}"))?;
        if !valid_name(k) {
            return Err(format!("bad label name {k:?}"));
        }
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value {v:?}"))?;
        labels.push((k.to_owned(), v.to_owned()));
    }
    Ok(labels)
}

/// Parses (and thereby validates) Prometheus text exposition output.
///
/// Accepts the subset [`render`] produces — `# TYPE` / `# HELP` comments and
/// `name{labels} value` samples — and rejects anything malformed: an invalid
/// metric or label name, a missing value, an unparsable float, or a `TYPE`
/// comment with an unknown type keyword.
///
/// # Errors
/// Returns a description including the offending line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if let Some("TYPE") = words.next() {
                let name = words.next().ok_or(format!("TYPE without name: {line:?}"))?;
                if !valid_name(name) {
                    return Err(format!("bad metric name in {line:?}"));
                }
                match words.next() {
                    Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                    other => return Err(format!("bad TYPE {other:?} in {line:?}")),
                }
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let (head, tail) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|i| open + i)
                    .ok_or_else(|| format!("unclosed labels in {line:?}"))?;
                (
                    (&line[..open], parse_labels(&line[open + 1..close])?),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let (name, rest) = line
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("sample without value: {line:?}"))?;
                ((name, Vec::new()), rest.trim())
            }
        };
        let (name, labels) = head;
        if !valid_name(name) {
            return Err(format!("bad metric name {name:?} in {line:?}"));
        }
        let value_str = tail
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("sample without value: {line:?}"))?;
        samples.push(Sample {
            name: name.to_owned(),
            labels,
            value: parse_value(value_str)?,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            counters: vec![("fedsim.bytes_up".to_owned(), 42)],
            gauges: vec![("fedsim.frozen_ratio".to_owned(), 0.25)],
            histograms: vec![(
                "apf.freeze_period".to_owned(),
                vec![1.0, 4.0],
                vec![2, 1, 3],
                6,
                33.0,
            )],
        }
    }

    #[test]
    fn render_parses_back() {
        let text = render(&snap());
        let samples = parse_text(&text).unwrap();
        let get = |n: &str| samples.iter().find(|s| s.name == n).cloned().unwrap();
        assert_eq!(get("fedsim_bytes_up_total").value, 42.0);
        assert_eq!(get("fedsim_frozen_ratio").value, 0.25);
        assert_eq!(get("apf_freeze_period_sum").value, 33.0);
        assert_eq!(get("apf_freeze_period_count").value, 6.0);
        // Buckets are cumulative and close with +Inf.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "apf_freeze_period_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].labels, vec![("le".to_owned(), "1".to_owned())]);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[1].value, 3.0);
        assert_eq!(
            buckets[2].labels,
            vec![("le".to_owned(), "+Inf".to_owned())]
        );
        assert_eq!(buckets[2].value, 6.0);
    }

    #[test]
    fn sanitize_maps_onto_grammar() {
        assert_eq!(sanitize_name("fedsim.bytes_up"), "fedsim_bytes_up");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("7layers"), "_7layers");
        assert!(valid_name(&sanitize_name("9.9/x")));
    }

    #[test]
    fn parser_rejects_malformed() {
        for bad in [
            "metric",                  // no value
            "1bad 3",                  // invalid name
            "m{le=\"x\" 3",            // unclosed labels
            "m{le=x} 3",               // unquoted label value
            "m notanumber",            // bad value
            "# TYPE m notametrictype", // bad TYPE keyword
        ] {
            assert!(parse_text(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_special_values() {
        let s = parse_text("m NaN\nn +Inf\no -Inf\n").unwrap();
        assert!(s[0].value.is_nan());
        assert_eq!(s[1].value, f64::INFINITY);
        assert_eq!(s[2].value, f64::NEG_INFINITY);
    }
}
