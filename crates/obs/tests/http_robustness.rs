//! Malformed-request robustness: the server must answer hostile or broken
//! clients with a 4xx (or just close) and keep serving afterwards — never
//! panic, never wedge a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use apf_obs::{http_get, ObsServer, ObsState};

fn server() -> ObsServer {
    ObsServer::bind("127.0.0.1:0", ObsState::new()).expect("bind ephemeral port")
}

fn raw_request(server: &ObsServer, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(payload).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn status_of(response: &str) -> Option<u16> {
    response.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn well_formed_routes_respond() {
    let srv = server();
    srv.state().configure_run(apf_obs::RunInfo {
        name: "t".into(),
        model: "mlp".into(),
        strategy: "full".into(),
        rounds_total: 1,
        threads: 1,
        host_parallelism: 1,
    });
    let (status, body) = http_get(srv.addr(), "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = http_get(srv.addr(), "/snapshot").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"model\":\"mlp\""), "{body}");
    let (status, _) = http_get(srv.addr(), "/metrics").unwrap();
    assert_eq!(status, 200);
    let (status, body) = http_get(srv.addr(), "/series").unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"series\":["), "{body}");
}

#[test]
fn series_endpoint_reflects_ring_wraparound() {
    let srv = server();
    // Overfill one series past the default ring capacity: the endpoint must
    // serve exactly the retained window, oldest surviving point first.
    let extra = 5usize;
    for i in 0..apf_obs::store::DEFAULT_CAPACITY + extra {
        srv.state()
            .store()
            .record("wrap", i as f64, (i * 10) as f64);
    }
    let (status, body) = http_get(srv.addr(), "/series?name=wrap").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body.matches('[').count() - 1,
        apf_obs::store::DEFAULT_CAPACITY,
        "point count after wraparound"
    );
    // The first `extra` points were evicted; the window starts at x=extra.
    assert!(
        body.contains(&format!("\"points\":[[{extra},{}]", extra * 10)),
        "{}",
        &body[..120]
    );
    assert!(!body.contains("[[0,0]"), "evicted point served");
}

#[test]
fn profile_endpoint_returns_folded_stacks() {
    let srv = server();
    // A thread spinning inside a span while the 1-second window samples.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let worker = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let _s =
                    apf_trace::span!(apf_trace::Level::Trace, target: "obs", "obs_profile_probe");
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let (status, body) = http_get(srv.addr(), "/profile?seconds=1").unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    worker.join().unwrap();
    assert_eq!(status, 200);
    assert!(
        body.starts_with("# apf-prof "),
        "{}",
        &body[..body.len().min(120)]
    );
    assert!(body.contains("obs_profile_probe"), "{body}");
}

#[test]
fn unknown_path_and_series_are_404() {
    let srv = server();
    assert_eq!(http_get(srv.addr(), "/nope").unwrap().0, 404);
    assert_eq!(http_get(srv.addr(), "/series?name=ghost").unwrap().0, 404);
}

#[test]
fn non_get_methods_are_405() {
    let srv = server();
    for method in ["POST", "PUT", "DELETE", "HEAD"] {
        let resp = raw_request(
            &srv,
            format!("{method} /metrics HTTP/1.1\r\n\r\n").as_bytes(),
        );
        assert_eq!(status_of(&resp), Some(405), "{method}: {resp}");
    }
}

#[test]
fn garbage_request_line_is_400() {
    let srv = server();
    for payload in [&b"\r\n\r\n"[..], b"GARBAGE\r\n\r\n", b"GET /x\r\n\r\n"] {
        let resp = raw_request(&srv, payload);
        assert_eq!(status_of(&resp), Some(400), "{payload:?}: {resp}");
    }
}

#[test]
fn oversized_request_line_is_414() {
    let srv = server();
    let long_path = "a".repeat(16 * 1024);
    let resp = raw_request(
        &srv,
        format!("GET /{long_path} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&resp), Some(414), "{resp}");
}

#[test]
fn early_disconnect_does_not_wedge_the_server() {
    let srv = server();
    for _ in 0..8 {
        // Connect, send half a request line, slam the connection shut.
        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        stream.write_all(b"GET /metr").unwrap();
        drop(stream);
    }
    // Workers must all still be alive and serving.
    for _ in 0..4 {
        assert_eq!(http_get(srv.addr(), "/healthz").unwrap().0, 200);
    }
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let mut srv = server();
    let addr = srv.addr();
    assert_eq!(http_get(addr, "/healthz").unwrap().0, 200);
    srv.shutdown();
    srv.shutdown();
    // The listener is gone: either refused outright or accepted by a raced
    // backlog entry that is never served.
    let alive = TcpStream::connect(addr)
        .map(|mut s| {
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            out.contains("200")
        })
        .unwrap_or(false);
    assert!(!alive, "server answered after shutdown");
}
