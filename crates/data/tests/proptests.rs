//! Property-based tests for partitioners and datasets.

use apf_data::{
    classes_per_client_partition, dirichlet_partition, iid_partition, synth_images, Dataset,
};
use apf_tensor::Tensor;
use proptest::prelude::*;

fn assert_exact_cover(parts: &[Vec<usize>], n: usize) -> Result<(), TestCaseError> {
    let mut seen = vec![false; n];
    for p in parts {
        for &i in p {
            prop_assert!(i < n);
            prop_assert!(!seen[i], "index {} assigned twice", i);
            seen[i] = true;
        }
    }
    prop_assert!(seen.iter().all(|&s| s), "some index unassigned");
    Ok(())
}

proptest! {
    #[test]
    fn dirichlet_always_exact_cover(
        n in 1usize..300,
        clients in 1usize..12,
        alpha in 0.1f64..50.0,
        classes in 1usize..11,
        seed in 0u64..1000,
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let parts = dirichlet_partition(&labels, clients, alpha, seed);
        prop_assert_eq!(parts.len(), clients);
        assert_exact_cover(&parts, n)?;
    }

    #[test]
    fn classes_per_client_cover_when_enough_owners(
        clients in 1usize..10,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        // With clients*k >= classes every class has at least one owner, so
        // the partition must be an exact cover.
        let classes = (clients * k).min(10);
        let n = classes * 20;
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let parts = classes_per_client_partition(&labels, clients, k, seed);
        assert_exact_cover(&parts, n)?;
        // No client may exceed k distinct classes.
        for p in &parts {
            let mut cs: Vec<usize> = p.iter().map(|&i| labels[i]).collect();
            cs.sort_unstable();
            cs.dedup();
            prop_assert!(cs.len() <= k);
        }
    }

    #[test]
    fn iid_parts_are_balanced(n in 1usize..500, clients in 1usize..16, seed in 0u64..100) {
        let parts = iid_partition(n, clients, seed);
        assert_exact_cover(&parts, n)?;
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "sizes {:?}", sizes);
    }

    #[test]
    fn dataset_select_preserves_labels(idx in proptest::collection::vec(0usize..30, 1..20)) {
        let ds = synth_images(30, 0);
        let sub = ds.select(&idx);
        prop_assert_eq!(sub.len(), idx.len());
        for (j, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.labels()[j], ds.labels()[i]);
        }
    }

    #[test]
    fn batches_partition_dataset(n in 1usize..100, bs in 1usize..32, seed in 0u64..100) {
        let inputs = Tensor::zeros(&[n, 2]);
        let ds = Dataset::new(inputs, (0..n).map(|i| i % 3).collect(), 3);
        let mut rng = apf_tensor::seeded_rng(seed);
        let total: usize = ds.batches(bs, &mut rng).map(|(_, y)| y.len()).sum();
        prop_assert_eq!(total, n);
    }
}
