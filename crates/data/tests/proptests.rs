//! Property-based tests for partitioners and datasets (on `apf-testkit`).

use apf_data::{
    classes_per_client_partition, dirichlet_partition, iid_partition, synth_images, Dataset,
};
use apf_tensor::Tensor;
use apf_testkit::{
    f64s, prop_assert, prop_assert_eq, property, u64s, usizes, vecs, TestCaseResult,
};

fn assert_exact_cover(parts: &[Vec<usize>], n: usize) -> TestCaseResult {
    let mut seen = vec![false; n];
    for p in parts {
        for &i in p {
            prop_assert!(i < n);
            prop_assert!(!seen[i], "index {} assigned twice", i);
            seen[i] = true;
        }
    }
    prop_assert!(seen.iter().all(|&s| s), "some index unassigned");
    Ok(())
}

property! {
    fn dirichlet_always_exact_cover(
        n in usizes(1..300),
        clients in usizes(1..12),
        alpha in f64s(0.1..50.0),
        classes in usizes(1..11),
        seed in u64s(0..1000),
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let parts = dirichlet_partition(&labels, clients, alpha, seed);
        prop_assert_eq!(parts.len(), clients);
        assert_exact_cover(&parts, n)?;
    }

    fn classes_per_client_cover_when_enough_owners(
        clients in usizes(1..10),
        k in usizes(1..5),
        seed in u64s(0..1000),
    ) {
        // With clients*k >= classes every class has at least one owner, so
        // the partition must be an exact cover.
        let classes = (clients * k).min(10);
        let n = classes * 20;
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let parts = classes_per_client_partition(&labels, clients, k, seed);
        assert_exact_cover(&parts, n)?;
        // No client may exceed k distinct classes.
        for p in &parts {
            let mut cs: Vec<usize> = p.iter().map(|&i| labels[i]).collect();
            cs.sort_unstable();
            cs.dedup();
            prop_assert!(cs.len() <= k);
        }
    }

    fn iid_parts_are_balanced(
        n in usizes(1..500),
        clients in usizes(1..16),
        seed in u64s(0..100),
    ) {
        let parts = iid_partition(n, clients, seed);
        assert_exact_cover(&parts, n)?;
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 1, "sizes {:?}", sizes);
    }

    fn dataset_select_preserves_labels(idx in vecs(usizes(0..30), 1..20)) {
        let ds = synth_images(30, 0);
        let sub = ds.select(&idx);
        prop_assert_eq!(sub.len(), idx.len());
        for (j, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.labels()[j], ds.labels()[i]);
        }
    }

    fn batches_partition_dataset(
        n in usizes(1..100),
        bs in usizes(1..32),
        seed in u64s(0..100),
    ) {
        let inputs = Tensor::zeros(&[n, 2]);
        let ds = Dataset::new(inputs, (0..n).map(|i| i % 3).collect(), 3);
        let mut rng = apf_tensor::seeded_rng(seed);
        let total: usize = ds.batches(bs, &mut rng).map(|(_, y)| y.len()).sum();
        prop_assert_eq!(total, n);
    }
}
