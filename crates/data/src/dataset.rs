//! In-memory labelled dataset with shuffled mini-batching.

use apf_tensor::Tensor;
use apf_tensor::{Rng, SliceRandom};

/// An in-memory classification dataset: inputs `[N, ...]` plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Bundles inputs and labels.
    ///
    /// # Panics
    /// Panics if the first input dimension differs from `labels.len()` or any
    /// label is `>= num_classes`.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            inputs.shape()[0],
            labels.len(),
            "inputs/labels length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset {
            inputs,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The input tensor, `[N, ...]`.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Scalar count of one sample (product of non-batch dims).
    pub fn sample_numel(&self) -> usize {
        self.inputs.shape()[1..].iter().product()
    }

    /// Decomposes the dataset into its input tensor and label vector, so the
    /// backing buffers can be recycled (e.g. into the slab store) when a
    /// materialized client is suspended.
    pub fn into_parts(self) -> (Tensor, Vec<usize>) {
        (self.inputs, self.labels)
    }

    /// Builds a new dataset from the given sample indices (with copying).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let row = self.sample_numel();
        let mut data = Vec::with_capacity(indices.len() * row);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            data.extend_from_slice(&self.inputs.data()[i * row..(i + 1) * row]);
            labels.push(self.labels[i]);
        }
        let mut shape = self.inputs.shape().to_vec();
        shape[0] = indices.len();
        Dataset::new(Tensor::from_vec(data, &shape), labels, self.num_classes)
    }

    /// Copies a batch of samples (by index) into a `(inputs, labels)` pair.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.select(indices);
        (d.inputs, d.labels)
    }

    /// An iterator over one shuffled epoch of mini-batches.
    ///
    /// The final batch may be smaller than `batch_size`. With an empty
    /// dataset the iterator is empty.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn batches<'a>(&'a self, batch_size: usize, rng: &mut Rng) -> Batches<'a> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        Batches {
            dataset: self,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }
}

/// Iterator over shuffled mini-batches of a [`Dataset`].
#[derive(Debug)]
pub struct Batches<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.gather(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    fn toy() -> Dataset {
        let inputs = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[6, 2]);
        Dataset::new(inputs, vec![0, 1, 2, 0, 1, 2], 3)
    }

    #[test]
    fn select_copies_rows() {
        let d = toy();
        let s = d.select(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[2, 0]);
        assert_eq!(s.inputs().data(), &[10.0, 11.0, 0.0, 1.0]);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let mut rng = seeded_rng(0);
        let mut seen = vec![0usize; 3];
        let mut total = 0;
        for (x, y) in d.batches(4, &mut rng) {
            assert!(x.shape()[0] <= 4);
            assert_eq!(x.shape()[0], y.len());
            total += y.len();
            for l in y {
                seen[l] += 1;
            }
        }
        assert_eq!(total, 6);
        assert_eq!(seen, vec![2, 2, 2]);
    }

    #[test]
    fn batches_shuffle_differs_across_epochs() {
        let inputs = Tensor::from_vec((0..200).map(|i| i as f32).collect(), &[100, 2]);
        let d = Dataset::new(inputs, (0..100).map(|i| i % 5).collect(), 5);
        let mut rng = seeded_rng(1);
        let e1: Vec<Vec<usize>> = d.batches(10, &mut rng).map(|(_, y)| y).collect();
        let e2: Vec<Vec<usize>> = d.batches(10, &mut rng).map(|(_, y)| y).collect();
        assert_ne!(e1, e2, "two epochs produced identical batch orders");
    }

    #[test]
    fn histogram() {
        assert_eq!(toy().class_histogram(), vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new(Tensor::zeros(&[3, 2]), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = Dataset::new(Tensor::zeros(&[1, 2]), vec![5], 3);
    }
}
