//! Synthetic stand-ins for CIFAR-10 and the keyword-spotting dataset.

use apf_tensor::{derive_seed, normal_init, sample_normal, seeded_rng, Tensor};

use crate::dataset::Dataset;

/// Classes in both synthetic tasks (matching CIFAR-10 / the 10-keyword KWS
/// subset of the paper).
pub const NUM_CLASSES: usize = 10;
/// Per-sample image shape `[C, H, W]`.
pub const IMAGE_SHAPE: [usize; 3] = [3, 16, 16];
/// Per-sample sequence shape `[T, D]`.
pub const KWS_SHAPE: [usize; 2] = [20, 10];

/// Applies one pass of a 3x3 box blur to a `[C, H, W]` volume, giving the
/// class prototypes spatial structure a convolution can exploit.
fn smooth(proto: &mut [f32], c: usize, h: usize, w: usize) {
    let src = proto.to_vec();
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                let mut cnt = 0.0f32;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let ny = y as i32 + dy;
                        let nx = x as i32 + dx;
                        if ny < 0 || nx < 0 || ny >= h as i32 || nx >= w as i32 {
                            continue;
                        }
                        acc += src[ci * h * w + ny as usize * w + nx as usize];
                        cnt += 1.0;
                    }
                }
                proto[ci * h * w + y * w + x] = acc / cnt;
            }
        }
    }
}

/// Generates the training split of the synthetic CIFAR-10 stand-in
/// (equivalent to [`synth_images_split`] with split 0).
pub fn synth_images(n: usize, seed: u64) -> Dataset {
    synth_images_split(n, seed, 0)
}

/// Generates `n` samples of the synthetic CIFAR-10 stand-in.
///
/// Each class has a fixed smoothed-Gaussian prototype image derived from
/// `seed` alone, while the per-sample noise stream is keyed on
/// `(seed, split)`: two datasets with the same seed but different splits
/// share the class structure (so one can be a held-out test set) yet have
/// disjoint samples. A sample is `prototype + noise + brightness jitter`;
/// the noise level is tuned so a small conv net must actually learn spatial
/// features — accuracy climbs over hundreds of SGD iterations rather than
/// instantly.
pub fn synth_images_split(n: usize, seed: u64, split: u64) -> Dataset {
    let [c, h, w] = IMAGE_SHAPE;
    let gen = SynthImageGen::new(seed);
    let mut data = Vec::new();
    let mut labels = Vec::new();
    gen.fill_split(n, split, &mut data, &mut labels);
    Dataset::new(Tensor::from_vec(data, &[n, c, h, w]), labels, NUM_CLASSES)
}

/// Reusable generator for the synthetic CIFAR-10 stand-in.
///
/// Precomputes the class prototypes once so that generating many small
/// per-client shards (one `split` per client, as the population simulator
/// does) costs only the per-sample noise stream and writes into
/// caller-provided buffers — no allocation when the buffers are recycled
/// through the slab store. Output is bitwise identical to
/// [`synth_images_split`] with the same `(n, seed, split)`.
#[derive(Debug, Clone)]
pub struct SynthImageGen {
    seed: u64,
    prototypes: Vec<Vec<f32>>,
}

impl SynthImageGen {
    /// Derives the class prototypes from `seed` (shared by every split).
    pub fn new(seed: u64) -> Self {
        let [c, h, w] = IMAGE_SHAPE;
        let sample_len = c * h * w;
        let mut proto_rng = seeded_rng(derive_seed(seed, 0x1A6E));
        let mut prototypes = Vec::with_capacity(NUM_CLASSES);
        for _ in 0..NUM_CLASSES {
            let mut p = normal_init(&[sample_len], 0.0, 1.6, &mut proto_rng).into_vec();
            smooth(&mut p, c, h, w);
            smooth(&mut p, c, h, w);
            prototypes.push(p);
        }
        SynthImageGen { seed, prototypes }
    }

    /// Scalar count of one sample.
    pub fn sample_numel(&self) -> usize {
        let [c, h, w] = IMAGE_SHAPE;
        c * h * w
    }

    /// Fills `data`/`labels` (cleared first) with `n` samples of `split`,
    /// exactly as [`synth_images_split`] would generate them.
    pub fn fill_split(&self, n: usize, split: u64, data: &mut Vec<f32>, labels: &mut Vec<usize>) {
        let mut rng = seeded_rng(derive_seed(derive_seed(self.seed, 0x5A3F), split));
        data.clear();
        data.reserve(n * self.sample_numel());
        labels.clear();
        labels.reserve(n);
        for i in 0..n {
            let class = i % NUM_CLASSES;
            let brightness = 0.6 * sample_normal(&mut rng);
            let proto = &self.prototypes[class];
            for &p in proto {
                data.push(p + 2.0 * sample_normal(&mut rng) + brightness);
            }
            labels.push(class);
        }
    }

    /// Builds a [`Dataset`] for `split`, reusing `data` as backing storage
    /// (e.g. a buffer taken from the slab store).
    pub fn dataset_split(&self, n: usize, split: u64, data: Vec<f32>) -> Dataset {
        let [c, h, w] = IMAGE_SHAPE;
        let mut data = data;
        let mut labels = Vec::new();
        self.fill_split(n, split, &mut data, &mut labels);
        Dataset::new(Tensor::from_vec(data, &[n, c, h, w]), labels, NUM_CLASSES)
    }
}

/// Generates the training split of the synthetic keyword-spotting stand-in
/// (equivalent to [`synth_kws_split`] with split 0).
pub fn synth_kws(n: usize, seed: u64) -> Dataset {
    synth_kws_split(n, seed, 0)
}

/// Generates `n` samples of the synthetic keyword-spotting stand-in.
///
/// Class `k` is a bank of sinusoids: feature `d` at step `t` follows
/// `sin(2π f_{k,d} t / T + φ_{k,d})` with class-specific frequencies and
/// phases (keyed on `seed` alone), plus Gaussian noise keyed on
/// `(seed, split)` — a sequence task where the discriminative signal is
/// temporal, so the LSTM's recurrence genuinely matters.
pub fn synth_kws_split(n: usize, seed: u64, split: u64) -> Dataset {
    let [t_len, d_feat] = KWS_SHAPE;
    let mut class_rng = seeded_rng(derive_seed(seed, 0x4B57));
    // Per-class frequency and phase tables.
    let mut freqs = Vec::with_capacity(NUM_CLASSES);
    let mut phases = Vec::with_capacity(NUM_CLASSES);
    for _ in 0..NUM_CLASSES {
        let f: Vec<f32> = (0..d_feat)
            .map(|_| class_rng.gen_range(0.5f32..4.0))
            .collect();
        let p: Vec<f32> = (0..d_feat)
            .map(|_| class_rng.gen_range(0.0f32..std::f32::consts::TAU))
            .collect();
        freqs.push(f);
        phases.push(p);
    }
    let mut rng = seeded_rng(derive_seed(derive_seed(seed, 0x4B58), split));
    let mut data = Vec::with_capacity(n * t_len * d_feat);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES;
        for t in 0..t_len {
            for d in 0..d_feat {
                let angle = std::f32::consts::TAU * freqs[class][d] * t as f32 / t_len as f32
                    + phases[class][d];
                data.push(angle.sin() + 1.2 * sample_normal(&mut rng));
            }
        }
        labels.push(class);
    }
    Dataset::new(
        Tensor::from_vec(data, &[n, t_len, d_feat]),
        labels,
        NUM_CLASSES,
    )
}

/// Replaces a `frac` fraction of labels with uniformly random (different)
/// classes — irreducible label noise that keeps the asymptotic training loss
/// (and hence the SGD gradient noise that drives the paper's parameter
/// oscillation) bounded away from zero, as on real datasets.
///
/// # Panics
/// Panics unless `0.0 <= frac <= 1.0`.
pub fn with_label_noise(ds: &Dataset, frac: f32, seed: u64) -> Dataset {
    assert!(
        (0.0..=1.0).contains(&frac),
        "noise fraction must be in [0,1]"
    );
    let mut rng = seeded_rng(derive_seed(seed, 0x1ABE1));
    let k = ds.num_classes();
    let labels: Vec<usize> = ds
        .labels()
        .iter()
        .map(|&l| {
            if rng.gen::<f32>() < frac {
                let mut nl = rng.gen_range(0..k);
                if nl == l {
                    nl = (nl + 1) % k;
                }
                nl
            } else {
                l
            }
        })
        .collect();
    Dataset::new(ds.inputs().clone(), labels, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_shapes_and_balance() {
        let ds = synth_images(100, 0);
        assert_eq!(ds.inputs().shape(), &[100, 3, 16, 16]);
        assert_eq!(ds.class_histogram(), vec![10; 10]);
    }

    #[test]
    fn kws_shapes_and_balance() {
        let ds = synth_kws(50, 0);
        assert_eq!(ds.inputs().shape(), &[50, 20, 10]);
        let h = ds.class_histogram();
        assert_eq!(h.iter().sum::<usize>(), 50);
    }

    #[test]
    fn gen_matches_split_function_bitwise() {
        let gen = SynthImageGen::new(7);
        for split in [0u64, 3, 91] {
            let via_fn = synth_images_split(12, 7, split);
            let via_gen = gen.dataset_split(12, split, Vec::new());
            assert_eq!(via_fn, via_gen);
        }
        // Reusing a dirty buffer must not change the output.
        let dirty = vec![42.0f32; 999];
        let reused = gen.dataset_split(12, 7, dirty);
        assert_eq!(reused, synth_images_split(12, 7, 7));
    }

    #[test]
    fn same_seed_same_data_different_seed_differs() {
        let a = synth_images(20, 5);
        let b = synth_images(20, 5);
        assert_eq!(a, b);
        let c = synth_images(20, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn train_and_test_share_class_structure() {
        // Different n, same seed: a class-0 sample from each should be far
        // closer to each other than to a class-5 sample (shared prototypes).
        let train = synth_images(40, 9);
        let test = synth_images(400, 9);
        let row = train.sample_numel();
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
        };
        // Average over several pairs to dodge noise.
        let mut same = 0.0;
        let mut diff = 0.0;
        for k in 0..4 {
            let tr0 = &train.inputs().data()[(k * 10) * row..(k * 10 + 1) * row];
            let te0 = &test.inputs().data()[(k * 10) * row..(k * 10 + 1) * row];
            let te5 = &test.inputs().data()[(k * 10 + 5) * row..(k * 10 + 6) * row];
            same += dist(tr0, te0);
            diff += dist(tr0, te5);
        }
        assert!(
            same < diff,
            "same-class {same} should be < cross-class {diff}"
        );
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Sanity: a nearest-class-mean classifier on clean data does far
        // better than chance, i.e. the task is learnable.
        let ds = synth_images(400, 3);
        let row = ds.sample_numel();
        // Estimate class means from the first 200 samples.
        let mut means = vec![vec![0.0f32; row]; NUM_CLASSES];
        let mut counts = vec![0usize; NUM_CLASSES];
        for i in 0..200 {
            let l = ds.labels()[i];
            for (m, &v) in means[l]
                .iter_mut()
                .zip(&ds.inputs().data()[i * row..(i + 1) * row])
            {
                *m += v;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 200..400 {
            let x = &ds.inputs().data()[i * row..(i + 1) * row];
            let pred = (0..NUM_CLASSES)
                .min_by(|&a, &b| {
                    let da: f32 = x
                        .iter()
                        .zip(&means[a])
                        .map(|(p, q)| (p - q) * (p - q))
                        .sum();
                    let db: f32 = x
                        .iter()
                        .zip(&means[b])
                        .map(|(p, q)| (p - q) * (p - q))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if pred == ds.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / 200.0;
        assert!(acc > 0.5, "nearest-prototype accuracy {acc}");
    }
}
