//! Dataset substrate for the APF reproduction.
//!
//! The paper evaluates on CIFAR-10 and a keyword-spotting (KWS) subset of
//! Speech Commands. Neither is available offline here, so this crate provides
//! synthetic stand-ins that exercise the same code paths (see DESIGN.md §3
//! for the substitution argument):
//!
//! * [`synth_images`] — a 10-class image task on `[3, 16, 16]` tensors built
//!   from smoothed Gaussian class prototypes plus per-sample noise and
//!   brightness jitter (drives the conv nets);
//! * [`synth_kws`] — a 10-class sequence task on `[20, 10]` feature
//!   sequences built from class-dependent sinusoid banks plus noise (drives
//!   the LSTM).
//!
//! Federated splits: [`dirichlet_partition`] (the paper's §7.1 Dirichlet
//! α=1 non-IID setup), [`classes_per_client_partition`] (the "extremely
//! non-IID, k classes per client" setup of §7.3), and [`iid_partition`].
//!
//! # Example
//!
//! ```
//! use apf_data::{synth_images, dirichlet_partition};
//!
//! let ds = synth_images(200, 0);
//! let parts = dirichlet_partition(ds.labels(), 4, 1.0, 7);
//! assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 200);
//! ```

mod dataset;
mod partition;
mod synth;

pub use dataset::{Batches, Dataset};
pub use partition::{
    classes_per_client_partition, dirichlet_partition, iid_partition, sample_gamma,
};
pub use synth::{
    synth_images, synth_images_split, synth_kws, synth_kws_split, with_label_noise, SynthImageGen,
    IMAGE_SHAPE, KWS_SHAPE, NUM_CLASSES,
};
