//! Federated data partitioners.
//!
//! The paper's main setup (§7.1) draws each client's class mixture from a
//! Dirichlet distribution with concentration α = 1 (following Yurochkin et
//! al.); the extreme non-IID micro-benchmarks (§7.3) give each client a small
//! number of distinct classes.

use apf_tensor::{derive_seed, seeded_rng, Rng, SliceRandom};

/// Draws one sample from Gamma(shape, 1) via Marsaglia–Tsang (with the
/// standard α < 1 boost).
///
/// # Panics
/// Panics if `shape` is not positive.
pub fn sample_gamma(shape: f64, rng: &mut Rng) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Splits sample indices across `num_clients` by drawing, for every class, a
/// Dirichlet(α) mixture over clients (the §7.1 non-IID setup; α → ∞ is IID).
///
/// Every sample index is assigned to exactly one client.
///
/// # Panics
/// Panics if `num_clients` is zero or `alpha` is not positive.
pub fn dirichlet_partition(
    labels: &[usize],
    num_clients: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(num_clients > 0, "need at least one client");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = seeded_rng(derive_seed(seed, 0xD1A1));
    let num_classes = labels.iter().max().map_or(0, |&m| m + 1);
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for class in 0..num_classes {
        let mut idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        idx.shuffle(&mut rng);
        // Dirichlet draw: normalized Gamma(alpha) samples.
        let gammas: Vec<f64> = (0..num_clients)
            .map(|_| sample_gamma(alpha, &mut rng))
            .collect();
        let total: f64 = gammas.iter().sum();
        let mut cuts = Vec::with_capacity(num_clients);
        let mut acc = 0.0;
        for g in &gammas[..num_clients - 1] {
            acc += g / total;
            cuts.push(((acc * idx.len() as f64).round() as usize).min(idx.len()));
        }
        let mut start = 0;
        for (ci, part) in parts.iter_mut().enumerate() {
            let end = if ci + 1 == num_clients {
                idx.len()
            } else {
                cuts[ci].max(start)
            };
            part.extend_from_slice(&idx[start..end]);
            start = end;
        }
    }
    parts
}

/// Gives each client exactly `k` distinct classes (round-robin over the class
/// list) and splits every class's samples evenly among its owners — the
/// "each worker hosts 2 distinct classes" setup of §7.3.
///
/// Samples of classes owned by no client are dropped (cannot happen when
/// `num_clients * k >= num_classes`).
///
/// # Panics
/// Panics if `num_clients` or `k` is zero.
pub fn classes_per_client_partition(
    labels: &[usize],
    num_clients: usize,
    k: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(
        num_clients > 0 && k > 0,
        "need clients and classes per client"
    );
    let mut rng = seeded_rng(derive_seed(seed, 0xC1A5));
    let num_classes = labels.iter().max().map_or(0, |&m| m + 1);
    // Assign classes round-robin so coverage is as even as possible.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    let mut class_order: Vec<usize> = (0..num_classes).collect();
    class_order.shuffle(&mut rng);
    let mut cursor = 0usize;
    for client in 0..num_clients {
        for _ in 0..k {
            let class = class_order[cursor % num_classes];
            owners[class].push(client);
            cursor += 1;
        }
    }
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
    for class in 0..num_classes {
        if owners[class].is_empty() {
            continue;
        }
        let mut idx: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        idx.shuffle(&mut rng);
        let n_owners = owners[class].len();
        for (j, &i) in idx.iter().enumerate() {
            parts[owners[class][j % n_owners]].push(i);
        }
    }
    parts
}

/// Shuffles all indices and chunks them evenly: the IID baseline.
///
/// # Panics
/// Panics if `num_clients` is zero.
pub fn iid_partition(n: usize, num_clients: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(num_clients > 0, "need at least one client");
    let mut rng = seeded_rng(derive_seed(seed, 0x11D));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let mut parts = vec![Vec::new(); num_clients];
    for (j, i) in idx.into_iter().enumerate() {
        parts[j % num_clients].push(i);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    fn assert_exact_cover(parts: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for p in parts {
            for &i in p {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some index unassigned");
    }

    #[test]
    fn dirichlet_is_exact_cover() {
        let l = labels(500, 10);
        let parts = dirichlet_partition(&l, 7, 1.0, 42);
        assert_eq!(parts.len(), 7);
        assert_exact_cover(&parts, 500);
    }

    #[test]
    fn dirichlet_low_alpha_is_skewed_high_alpha_even() {
        let l = labels(2000, 10);
        let skewed = dirichlet_partition(&l, 5, 0.1, 1);
        let even = dirichlet_partition(&l, 5, 1000.0, 1);
        // Measure per-client class imbalance: max/min class count (+1 smoothing).
        let imbalance = |parts: &[Vec<usize>]| -> f64 {
            let mut worst: f64 = 0.0;
            for p in parts {
                let mut h = [0usize; 10];
                for &i in p {
                    h[l[i]] += 1;
                }
                let max = *h.iter().max().unwrap() as f64 + 1.0;
                let min = *h.iter().min().unwrap() as f64 + 1.0;
                worst = worst.max(max / min);
            }
            worst
        };
        assert!(
            imbalance(&skewed) > 2.0 * imbalance(&even),
            "skewed {} vs even {}",
            imbalance(&skewed),
            imbalance(&even)
        );
    }

    #[test]
    fn classes_per_client_limits_classes() {
        let l = labels(1000, 10);
        let parts = classes_per_client_partition(&l, 5, 2, 3);
        assert_exact_cover(&parts, 1000);
        for p in &parts {
            let mut classes: Vec<usize> = p.iter().map(|&i| l[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert_eq!(classes.len(), 2, "client has classes {classes:?}");
        }
    }

    #[test]
    fn classes_per_client_two_clients_five_classes() {
        // The paper's Fig. 4 setup: 2 clients, 5 distinct classes each.
        let l = labels(600, 10);
        let parts = classes_per_client_partition(&l, 2, 5, 9);
        assert_exact_cover(&parts, 600);
        for p in &parts {
            let mut classes: Vec<usize> = p.iter().map(|&i| l[i]).collect();
            classes.sort_unstable();
            classes.dedup();
            assert_eq!(classes.len(), 5);
        }
    }

    #[test]
    fn iid_partition_balanced() {
        let parts = iid_partition(103, 4, 5);
        assert_exact_cover(&parts, 103);
        for p in &parts {
            assert!(p.len() == 25 || p.len() == 26);
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = apf_tensor::seeded_rng(0);
        for shape in [0.5f64, 1.0, 3.0] {
            let n = 20000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let l = labels(200, 10);
        assert_eq!(
            dirichlet_partition(&l, 3, 1.0, 7),
            dirichlet_partition(&l, 3, 1.0, 7)
        );
        assert_ne!(
            dirichlet_partition(&l, 3, 1.0, 7),
            dirichlet_partition(&l, 3, 1.0, 8)
        );
    }
}
