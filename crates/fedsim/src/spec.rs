//! Self-contained run specifications: one value that deterministically
//! reconstructs an entire federated experiment — datasets, partition,
//! clients, model, optimizer, strategy — on any process.
//!
//! [`RunSpec`] exists so that *two different executions agree bitwise*. The
//! in-process simulator consumes it through [`RunSpec::build_runner`]; the
//! `apf-net` parameter server and its remote clients consume the same spec
//! through [`RunSpec::make_client`] / [`RunSpec::eval_setup`] after shipping
//! [`RunSpec::canonical`] over the wire in the Welcome frame. Because every
//! seed, every dataset draw, and every aggregation happens in the same order
//! on both paths, the loss/frozen-ratio/accuracy trajectories must match bit
//! for bit — the parity contract `crates/net/tests/parity.rs` enforces.
//!
//! The canonical string is versioned (`apf-spec-v1`) and round-trips exactly:
//! floats are formatted with Rust's shortest-roundtrip `Display`, so
//! `parse(canonical())` reproduces the spec field-for-field.

use apf::ApfConfig;
use apf_data::{dirichlet_partition, iid_partition, synth_images_split, with_label_noise, Dataset};
use apf_nn::{models, LrSchedule, Sequential, Sgd, Trainer};
use apf_quant::EmaCodec;
use apf_tensor::derive_seed;

use crate::client::Client;
use crate::ledger::fnv1a64;
use crate::population::{PopulationConfig, PopulationData, PopulationRunner};
use crate::runner::{config_canonical, FlConfig, FlRunner, OptimizerKind};
use crate::strategy::{ApfStrategy, FullSync, SyncStrategy};

/// How the training set is split across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionKind {
    /// IID shards of equal size, shuffled with `seed`.
    Iid {
        /// Partition shuffle seed.
        seed: u64,
    },
    /// Dirichlet(label) non-IID partition (smaller `alpha` = more skew).
    Dirichlet {
        /// Dirichlet concentration.
        alpha: f64,
        /// Partition sampling seed.
        seed: u64,
    },
}

/// Which synchronization strategy the run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecStrategy {
    /// Vanilla FedAvg ([`FullSync`]).
    Fedavg,
    /// The APF family with the default AIMD controller.
    Apf {
        /// Stability-check cadence in rounds.
        check_every: u32,
        /// Effective-perturbation stability threshold.
        threshold: f32,
        /// EMA smoothing factor.
        ema_alpha: f32,
        /// Stack fp16 wire quantization (§7.7).
        f16: bool,
    },
}

/// Spec parse failure: which token was malformed and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad run spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A complete, deterministic description of one federated run on the
/// synthetic-image MLP task.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Number of clients.
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local iterations per round.
    pub local_iters: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Evaluation cadence in rounds (the final round always evaluates).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Master seed (drives model init, data order, APF randomness).
    pub seed: u64,
    /// Training-set size (synthetic images, split 0).
    pub train_n: usize,
    /// Test-set size (synthetic images, split 1).
    pub test_n: usize,
    /// Hidden width of the `[768, hidden, 10]` MLP.
    pub hidden: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Label-noise fraction applied to the training split (0 disables).
    pub label_noise: f32,
    /// Client data partition.
    pub partition: PartitionKind,
    /// Synchronization strategy.
    pub strategy: SpecStrategy,
    /// Clients sampled per round by the population runner (`0` = full
    /// participation). Emitted in the canonical string only when non-zero,
    /// so existing golden strings and digests are untouched.
    pub cohort: usize,
    /// Dormant-state codec of the population runner's registry and manager
    /// hop. Emitted in the canonical string only when not dense.
    pub dormant: EmaCodec,
    /// Train clients on the `apf-par` pool. Not part of the canonical
    /// string: parallelism is bitwise-invisible by the determinism contract.
    pub parallel: bool,
}

impl RunSpec {
    /// The golden fixture shared by the fedsim determinism tests and the
    /// net-vs-sim parity harness: 3 IID clients, 4 rounds, tiny MLP.
    pub fn golden() -> RunSpec {
        RunSpec {
            clients: 3,
            rounds: 4,
            local_iters: 2,
            batch_size: 16,
            eval_every: 1,
            eval_batch: 100,
            seed: 7,
            train_n: 96,
            test_n: 48,
            hidden: 12,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            label_noise: 0.0,
            partition: PartitionKind::Iid { seed: 7 },
            strategy: SpecStrategy::Apf {
                check_every: 1,
                threshold: 0.1,
                ema_alpha: 0.9,
                f16: false,
            },
            cohort: 0,
            dormant: EmaCodec::Dense,
            parallel: true,
        }
    }

    /// The versioned canonical string; `parse` inverts it exactly.
    pub fn canonical(&self) -> String {
        let partition = match self.partition {
            PartitionKind::Iid { seed } => format!("iid,{seed}"),
            PartitionKind::Dirichlet { alpha, seed } => format!("dirichlet,{alpha},{seed}"),
        };
        let strategy = match self.strategy {
            SpecStrategy::Fedavg => "fedavg".to_owned(),
            SpecStrategy::Apf {
                check_every,
                threshold,
                ema_alpha,
                f16,
            } => format!(
                "apf,{check_every},{threshold},{ema_alpha},{}",
                if f16 { "f16" } else { "f32" }
            ),
        };
        let mut s = format!(
            "apf-spec-v1;clients={};rounds={};local_iters={};batch={};eval_every={};\
             eval_batch={};seed={};train_n={};test_n={};hidden={};lr={};momentum={};\
             weight_decay={};label_noise={};partition={partition};strategy={strategy}",
            self.clients,
            self.rounds,
            self.local_iters,
            self.batch_size,
            self.eval_every,
            self.eval_batch,
            self.seed,
            self.train_n,
            self.test_n,
            self.hidden,
            self.lr,
            self.momentum,
            self.weight_decay,
            self.label_noise,
        );
        // Population keys entered the format after v1 shipped: default
        // values stay invisible so pre-population canonical strings (and
        // their digests) are bit-for-bit unchanged.
        if self.cohort != 0 {
            s.push_str(&format!(";cohort={}", self.cohort));
        }
        if self.dormant != EmaCodec::Dense {
            s.push_str(&format!(";dormant={}", self.dormant.name()));
        }
        s
    }

    /// Parses a canonical string back into a spec.
    ///
    /// # Errors
    /// Returns [`SpecError`] on an unknown version, missing or duplicate
    /// key, unparseable value, or a structurally invalid spec (zero clients,
    /// zero rounds, ...).
    pub fn parse(s: &str) -> Result<RunSpec, SpecError> {
        let mut parts = s.trim().split(';');
        let version = parts.next().unwrap_or("");
        if version != "apf-spec-v1" {
            return Err(SpecError(format!("unknown version {version:?}")));
        }
        let mut spec = RunSpec::golden();
        let mut seen = std::collections::BTreeSet::new();
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| SpecError(format!("token {kv:?} is not key=value")))?;
            if !seen.insert(k.to_owned()) {
                return Err(SpecError(format!("duplicate key {k:?}")));
            }
            let bad = |what: &str| SpecError(format!("key {k}: bad {what} {v:?}"));
            match k {
                "clients" => spec.clients = v.parse().map_err(|_| bad("usize"))?,
                "rounds" => spec.rounds = v.parse().map_err(|_| bad("usize"))?,
                "local_iters" => spec.local_iters = v.parse().map_err(|_| bad("usize"))?,
                "batch" => spec.batch_size = v.parse().map_err(|_| bad("usize"))?,
                "eval_every" => spec.eval_every = v.parse().map_err(|_| bad("usize"))?,
                "eval_batch" => spec.eval_batch = v.parse().map_err(|_| bad("usize"))?,
                "seed" => spec.seed = v.parse().map_err(|_| bad("u64"))?,
                "train_n" => spec.train_n = v.parse().map_err(|_| bad("usize"))?,
                "test_n" => spec.test_n = v.parse().map_err(|_| bad("usize"))?,
                "hidden" => spec.hidden = v.parse().map_err(|_| bad("usize"))?,
                "lr" => spec.lr = v.parse().map_err(|_| bad("f32"))?,
                "momentum" => spec.momentum = v.parse().map_err(|_| bad("f32"))?,
                "weight_decay" => spec.weight_decay = v.parse().map_err(|_| bad("f32"))?,
                "label_noise" => spec.label_noise = v.parse().map_err(|_| bad("f32"))?,
                "cohort" => spec.cohort = v.parse().map_err(|_| bad("usize"))?,
                "dormant" => {
                    spec.dormant = EmaCodec::parse(v).ok_or_else(|| bad("dormant codec"))?;
                }
                "partition" => {
                    let fields: Vec<&str> = v.split(',').collect();
                    spec.partition = match fields.as_slice() {
                        ["iid", seed] => PartitionKind::Iid {
                            seed: seed.parse().map_err(|_| bad("iid seed"))?,
                        },
                        ["dirichlet", alpha, seed] => PartitionKind::Dirichlet {
                            alpha: alpha.parse().map_err(|_| bad("alpha"))?,
                            seed: seed.parse().map_err(|_| bad("dirichlet seed"))?,
                        },
                        _ => return Err(bad("partition")),
                    };
                }
                "strategy" => {
                    let fields: Vec<&str> = v.split(',').collect();
                    spec.strategy = match fields.as_slice() {
                        ["fedavg"] => SpecStrategy::Fedavg,
                        ["apf", check, thresh, ema, width] => SpecStrategy::Apf {
                            check_every: check.parse().map_err(|_| bad("check_every"))?,
                            threshold: thresh.parse().map_err(|_| bad("threshold"))?,
                            ema_alpha: ema.parse().map_err(|_| bad("ema_alpha"))?,
                            f16: match *width {
                                "f16" => true,
                                "f32" => false,
                                _ => return Err(bad("wire width")),
                            },
                        },
                        _ => return Err(bad("strategy")),
                    };
                }
                _ => return Err(SpecError(format!("unknown key {k:?}"))),
            }
        }
        if spec.clients == 0 || spec.rounds == 0 || spec.train_n == 0 || spec.test_n == 0 {
            return Err(SpecError(
                "clients/rounds/train_n/test_n must be > 0".into(),
            ));
        }
        Ok(spec)
    }

    /// The model-init seed every client and the server share.
    pub fn model_seed(&self) -> u64 {
        derive_seed(self.seed, 0x30DE1)
    }

    /// A fresh model at the shared initialization.
    pub fn model(&self) -> Sequential {
        models::mlp("m", &[3 * 16 * 16, self.hidden, 10], self.model_seed())
    }

    /// The initial flat parameter vector (what round 0 broadcasts).
    pub fn init_params(&self) -> Vec<f32> {
        self.model().flat_params()
    }

    /// The training split (with label noise applied when configured).
    pub fn train_set(&self) -> Dataset {
        let ds = synth_images_split(self.train_n, 1, 0);
        let ds = if self.label_noise > 0.0 {
            with_label_noise(&ds, self.label_noise, 1)
        } else {
            ds
        };
        Dataset::new(
            ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
            ds.labels().to_vec(),
            10,
        )
    }

    /// The held-out test split.
    pub fn test_set(&self) -> Dataset {
        let ds = synth_images_split(self.test_n, 1, 1);
        Dataset::new(
            ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
            ds.labels().to_vec(),
            10,
        )
    }

    /// The per-client index partition of the training set.
    pub fn partition_indices(&self, train: &Dataset) -> Vec<Vec<usize>> {
        match self.partition {
            PartitionKind::Iid { seed } => iid_partition(train.len(), self.clients, seed),
            PartitionKind::Dirichlet { alpha, seed } => {
                dirichlet_partition(train.labels(), self.clients, alpha, seed)
            }
        }
    }

    /// Builds client `i` exactly as [`FlRunner`] would: same model seed,
    /// same optimizer, same shard, same data-order RNG.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the partition left shard `i` empty.
    pub fn make_client(&self, i: usize) -> Client {
        assert!(i < self.clients, "client index {i} out of range");
        let train = self.train_set();
        let shard = train.select(&self.partition_indices(&train)[i]);
        let trainer = Trainer::new(
            self.model(),
            Box::new(
                Sgd::new(self.lr)
                    .with_momentum(self.momentum)
                    .with_weight_decay(self.weight_decay),
            ),
            LrSchedule::Constant(self.lr),
        );
        Client::new(
            trainer,
            shard,
            self.batch_size,
            derive_seed(self.seed, i as u64),
        )
    }

    /// The APF configuration for the strategy, or `None` for FedAvg.
    pub fn apf_config(&self) -> Option<ApfConfig> {
        match self.strategy {
            SpecStrategy::Fedavg => None,
            SpecStrategy::Apf {
                check_every,
                threshold,
                ema_alpha,
                f16,
            } => Some(ApfConfig {
                check_every_rounds: check_every,
                stability_threshold: threshold,
                ema_alpha,
                seed: self.seed,
                bytes_per_scalar: if f16 { 2 } else { 4 },
                ..ApfConfig::default()
            }),
        }
    }

    /// Whether the wire carries binary16 payloads.
    pub fn wire_f16(&self) -> bool {
        matches!(self.strategy, SpecStrategy::Apf { f16: true, .. })
    }

    /// The strategy label as the runner would report it.
    pub fn strategy_name(&self) -> String {
        match self.strategy {
            SpecStrategy::Fedavg => "fedavg".to_owned(),
            SpecStrategy::Apf { f16, .. } => {
                if f16 {
                    "apf+q".to_owned()
                } else {
                    "apf".to_owned()
                }
            }
        }
    }

    /// Instantiates the strategy.
    pub fn make_strategy(&self) -> Box<dyn SyncStrategy> {
        match self.strategy {
            SpecStrategy::Fedavg => Box::new(FullSync::new()),
            SpecStrategy::Apf { f16, .. } => {
                let cfg = self.apf_config().expect("Apf variant has a config");
                let s = ApfStrategy::new(ApfConfig {
                    // `with_f16` owns the bytes_per_scalar switch.
                    bytes_per_scalar: 4,
                    ..cfg
                })
                .expect("spec-derived ApfConfig must validate");
                if f16 {
                    Box::new(s.with_f16())
                } else {
                    Box::new(s)
                }
            }
        }
    }

    /// The equivalent [`FlConfig`].
    pub fn fl_config(&self) -> FlConfig {
        FlConfig {
            local_iters: self.local_iters,
            rounds: self.rounds,
            batch_size: self.batch_size,
            eval_every: self.eval_every,
            eval_batch: self.eval_batch,
            seed: self.seed,
            parallel: self.parallel,
            ..FlConfig::default()
        }
    }

    /// The ledger configuration digest a simulator run of this spec gets —
    /// networked runs reuse it so `ledger-report diff` pairs the records.
    pub fn config_digest(&self) -> u64 {
        fnv1a64(
            config_canonical(&self.fl_config(), "m", &self.strategy_name(), self.clients)
                .as_bytes(),
        )
    }

    /// The experiment label the runner would use (`"<model>/<strategy>"`).
    pub fn run_name(&self) -> String {
        format!("m/{}", self.strategy_name())
    }

    /// Assembles the in-process simulator for this spec.
    pub fn build_runner(&self) -> FlRunner {
        let hidden = self.hidden;
        let train = self.train_set();
        let parts = self.partition_indices(&train);
        FlRunner::builder(
            move |seed| models::mlp("m", &[3 * 16 * 16, hidden, 10], seed),
            self.fl_config(),
        )
        .optimizer(OptimizerKind::Sgd {
            lr: self.lr,
            momentum: self.momentum,
            weight_decay: self.weight_decay,
        })
        .clients_from_partition(&train, &parts)
        .test_set(self.test_set())
        .strategy(self.make_strategy())
        .build()
    }

    /// Assembles the event-driven population runner for this spec: the same
    /// registered clients and data shards as [`RunSpec::build_runner`], but
    /// held as compact dormant registry state with cohort sampling per
    /// [`RunSpec::cohort`]. With `cohort == 0` and a dense dormant codec the
    /// result is bitwise identical to the classic runner.
    ///
    /// # Panics
    /// Panics if the spec's strategy is not an APF variant — the population
    /// runner's single-shared-manager design (§6.2) is APF-specific.
    pub fn build_population_runner(&self) -> PopulationRunner {
        let hidden = self.hidden;
        let train = self.train_set();
        let parts = self.partition_indices(&train);
        let cfg = PopulationConfig {
            fl: self.fl_config(),
            registered: self.clients,
            cohort: self.cohort,
            codec: self.dormant,
            shells: self.clients.clamp(1, 64),
            apf: self
                .apf_config()
                .expect("population runner requires an APF strategy"),
            wire_f16: self.wire_f16(),
            optimizer: OptimizerKind::Sgd {
                lr: self.lr,
                momentum: self.momentum,
                weight_decay: self.weight_decay,
            },
            schedule: LrSchedule::Constant(self.lr),
        };
        PopulationRunner::new(
            cfg,
            move |seed| models::mlp("m", &[3 * 16 * 16, hidden, 10], seed),
            PopulationData::Shared { train, parts },
            self.test_set(),
        )
    }

    /// The evaluation half of the run (for processes that are not running
    /// the full simulator, i.e. the `apf-net` server).
    pub fn eval_setup(&self) -> EvalSetup {
        EvalSetup {
            model: self.model(),
            test: self.test_set(),
            eval_batch: self.eval_batch,
        }
    }

    /// Whether `round` is an evaluation round under this spec.
    pub fn evaluates_at(&self, round: u64) -> bool {
        round.is_multiple_of(self.eval_every as u64) || round + 1 == self.rounds as u64
    }
}

/// Held-out evaluation bundle: the eval model replica plus the test split.
pub struct EvalSetup {
    model: Sequential,
    test: Dataset,
    eval_batch: usize,
}

impl std::fmt::Debug for EvalSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalSetup")
            .field("test_samples", &self.test.len())
            .finish()
    }
}

impl EvalSetup {
    /// Test accuracy of the flat model `params` — bit-identical to
    /// [`FlRunner::evaluate_global`] on the same parameters.
    pub fn accuracy(&mut self, params: &[f32]) -> f32 {
        self.model.load_flat(params);
        apf_nn::evaluate(
            &mut self.model,
            self.test.inputs(),
            self.test.labels(),
            self.eval_batch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_roundtrips_exactly() {
        let mut spec = RunSpec::golden();
        assert_eq!(RunSpec::parse(&spec.canonical()).unwrap(), spec);
        spec.partition = PartitionKind::Dirichlet {
            alpha: 0.3,
            seed: 11,
        };
        spec.strategy = SpecStrategy::Apf {
            check_every: 2,
            threshold: 0.05,
            ema_alpha: 0.99,
            f16: true,
        };
        spec.label_noise = 0.25;
        spec.weight_decay = 1e-4;
        assert_eq!(RunSpec::parse(&spec.canonical()).unwrap(), spec);
        spec.strategy = SpecStrategy::Fedavg;
        assert_eq!(RunSpec::parse(&spec.canonical()).unwrap(), spec);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "apf-spec-v2;clients=3",
            "apf-spec-v1;clients",
            "apf-spec-v1;clients=x",
            "apf-spec-v1;clients=0",
            "apf-spec-v1;rounds=0",
            "apf-spec-v1;mystery=1",
            "apf-spec-v1;clients=2;clients=2",
            "apf-spec-v1;partition=ring,3",
            "apf-spec-v1;strategy=apf,1,0.1,0.9,f64",
        ] {
            assert!(RunSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn population_keys_default_invisibly() {
        // Pre-population canonical strings (and digests) must be unchanged
        // by the cohort/dormant additions.
        let golden = RunSpec::golden();
        let canon = golden.canonical();
        assert!(!canon.contains("cohort="), "{canon}");
        assert!(!canon.contains("dormant="), "{canon}");
        // Non-default values round-trip exactly.
        let spec = RunSpec {
            cohort: 5,
            dormant: EmaCodec::F16,
            ..RunSpec::golden()
        };
        let canon = spec.canonical();
        assert!(canon.ends_with(";cohort=5;dormant=f16"), "{canon}");
        assert_eq!(RunSpec::parse(&canon).unwrap(), spec);
        assert!(RunSpec::parse("apf-spec-v1;dormant=f64").is_err());
    }

    #[test]
    fn spec_clients_match_runner_clients() {
        // make_client(i) must reproduce the runner's client i exactly: same
        // initial params, same shard size.
        let spec = RunSpec::golden();
        let runner = spec.build_runner();
        for i in 0..spec.clients {
            let mut mine = spec.make_client(i);
            assert_eq!(mine.data().len(), runner.clients()[i].data().len());
            assert_eq!(mine.flat_params(), spec.init_params());
        }
    }

    #[test]
    fn digest_matches_what_the_runner_ledgers() {
        // Changing a run-relevant knob must change the digest.
        let a = RunSpec::golden().config_digest();
        let b = RunSpec {
            seed: 8,
            ..RunSpec::golden()
        }
        .config_digest();
        assert_ne!(a, b);
        // parallel is bitwise-invisible and must not affect the digest.
        let c = RunSpec {
            parallel: false,
            ..RunSpec::golden()
        }
        .config_digest();
        assert_eq!(a, c);
    }

    #[test]
    fn eval_setup_matches_runner_eval() {
        let spec = RunSpec::golden();
        let mut runner = spec.build_runner();
        runner.run();
        let acc_runner = runner.evaluate_global();
        let acc_spec = spec.eval_setup().accuracy(runner.global());
        assert_eq!(acc_runner.to_bits(), acc_spec.to_bits());
    }

    #[test]
    fn eval_cadence_matches_runner() {
        let spec = RunSpec {
            rounds: 7,
            eval_every: 3,
            ..RunSpec::golden()
        };
        let evals: Vec<bool> = (0..7).map(|r| spec.evaluates_at(r)).collect();
        assert_eq!(evals, [true, false, false, true, false, false, true]);
    }
}
