//! The run ledger: an append-only JSONL history of experiment runs.
//!
//! Every ledgered run appends one compact-JSON line to a shared file
//! (conventionally `results/ledger.jsonl`), capturing what ran (model,
//! strategy, config digest), what it produced (per-round series, final
//! accuracy, total bytes), and what it cost (wall time, simulated time,
//! host parallelism). The `ledger-report` bin in `crates/bench` lists,
//! diffs, and regression-checks these records; the digest lets it match a
//! candidate run to its baseline without trusting labels.
//!
//! Writing is opt-in — [`crate::FlRunnerBuilder::ledger`] or the
//! `APF_LEDGER_FILE` environment variable — so `cargo test` never touches
//! the filesystem behind your back.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::json::{self, Value};
use crate::metrics::ExperimentLog;

/// FNV-1a 64-bit over `bytes` — the ledger's configuration fingerprint.
/// Stable across platforms and re-runs; not cryptographic, and not meant
/// to be (it only pairs candidate records with baselines).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. Recorded
/// into [`LedgerRecord::metrics`] as `peak_resident_bytes` so
/// `ledger-report check` can flag memory regressions. Note the value is
/// monotonic over a process lifetime — comparable across runs, not across
/// phases within one process.
pub fn peak_resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// One ledgered run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerRecord {
    /// Experiment label, e.g. `"lenet5/apf"`.
    pub name: String,
    /// Model name (`"kernels"` for the kernel micro-bench records).
    pub model: String,
    /// Strategy label (`"bench"` for micro-bench records).
    pub strategy: String,
    /// Hex FNV-1a digest of the canonical configuration string.
    pub config_digest: String,
    /// Rounds completed.
    pub rounds: u64,
    /// Final (best-ever) test accuracy, 0 when never evaluated.
    pub final_accuracy: f64,
    /// Total bytes moved (both directions, all clients).
    pub total_bytes: u64,
    /// Real wall-clock time of the run, seconds.
    pub wall_secs: f64,
    /// Simulated federated time (compute + link model), seconds.
    pub sim_secs: f64,
    /// `apf-par` pool threads the run used.
    pub threads: u64,
    /// Host's available parallelism when the record was written.
    pub host_parallelism: u64,
    /// Named scalar summary metrics (micro-bench throughputs etc.).
    pub metrics: BTreeMap<String, f64>,
    /// Named per-round series (loss, frozen ratio, cumulative bytes, ...).
    pub series: BTreeMap<String, Vec<f64>>,
}

impl LedgerRecord {
    /// Builds a record from a finished run's [`ExperimentLog`].
    pub fn from_log(
        log: &ExperimentLog,
        model: &str,
        strategy: &str,
        config_digest: u64,
        wall_secs: f64,
    ) -> LedgerRecord {
        let mut series = BTreeMap::new();
        let col = |f: &dyn Fn(&crate::RoundRecord) -> f64| -> Vec<f64> {
            log.records.iter().map(f).collect()
        };
        series.insert("loss".to_owned(), col(&|r| f64::from(r.loss)));
        series.insert(
            "frozen_ratio".to_owned(),
            col(&|r| f64::from(r.frozen_ratio)),
        );
        series.insert("cum_bytes".to_owned(), col(&|r| r.cum_bytes as f64));
        series.insert(
            "accuracy".to_owned(),
            col(&|r| r.accuracy.map_or(f64::NAN, f64::from)),
        );
        LedgerRecord {
            name: log.name.clone(),
            model: model.to_owned(),
            strategy: strategy.to_owned(),
            config_digest: format!("{config_digest:016x}"),
            rounds: log.records.len() as u64,
            final_accuracy: f64::from(log.best_accuracy()),
            total_bytes: log.total_bytes(),
            wall_secs,
            sim_secs: log.records.last().map_or(0.0, |r| r.cum_secs),
            threads: apf_par::threads() as u64,
            host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            metrics: BTreeMap::new(),
            series,
        }
    }

    /// The record as a JSON value.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".to_owned(), Value::Str(self.name.clone()));
        m.insert("model".to_owned(), Value::Str(self.model.clone()));
        m.insert("strategy".to_owned(), Value::Str(self.strategy.clone()));
        m.insert(
            "config_digest".to_owned(),
            Value::Str(self.config_digest.clone()),
        );
        m.insert("rounds".to_owned(), Value::from_u64(self.rounds));
        m.insert(
            "final_accuracy".to_owned(),
            Value::from_f64(self.final_accuracy),
        );
        m.insert("total_bytes".to_owned(), Value::from_u64(self.total_bytes));
        m.insert("wall_secs".to_owned(), Value::from_f64(self.wall_secs));
        m.insert("sim_secs".to_owned(), Value::from_f64(self.sim_secs));
        m.insert("threads".to_owned(), Value::from_u64(self.threads));
        m.insert(
            "host_parallelism".to_owned(),
            Value::from_u64(self.host_parallelism),
        );
        m.insert(
            "metrics".to_owned(),
            Value::Obj(
                self.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_f64(*v)))
                    .collect(),
            ),
        );
        m.insert(
            "series".to_owned(),
            Value::Obj(
                self.series
                    .iter()
                    .map(|(k, pts)| {
                        (
                            k.clone(),
                            Value::Arr(pts.iter().map(|&x| Value::from_f64(x)).collect()),
                        )
                    })
                    .collect(),
            ),
        );
        Value::Obj(m)
    }

    /// Parses a record back from a JSON value (tolerant: missing numerics
    /// default to zero, non-numeric series points to NaN-as-null → skipped).
    pub fn from_value(v: &Value) -> Option<LedgerRecord> {
        if !matches!(v, Value::Obj(_)) {
            return None;
        }
        let str_of = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("").to_owned();
        let f64_of = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let u64_of = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        let mut metrics = BTreeMap::new();
        if let Some(Value::Obj(m)) = v.get("metrics") {
            for (k, val) in m {
                metrics.insert(k.clone(), val.as_f64().unwrap_or(0.0));
            }
        }
        let mut series = BTreeMap::new();
        if let Some(Value::Obj(m)) = v.get("series") {
            for (k, val) in m {
                let pts = val
                    .as_arr()
                    .map(|a| {
                        a.iter()
                            .map(|p| p.as_f64().unwrap_or(f64::NAN))
                            .collect::<Vec<f64>>()
                    })
                    .unwrap_or_default();
                series.insert(k.clone(), pts);
            }
        }
        Some(LedgerRecord {
            name: str_of("name"),
            model: str_of("model"),
            strategy: str_of("strategy"),
            config_digest: str_of("config_digest"),
            rounds: u64_of("rounds"),
            final_accuracy: f64_of("final_accuracy"),
            total_bytes: u64_of("total_bytes"),
            wall_secs: f64_of("wall_secs"),
            sim_secs: f64_of("sim_secs"),
            threads: u64_of("threads"),
            host_parallelism: u64_of("host_parallelism"),
            metrics,
            series,
        })
    }

    /// Appends the record as one compact-JSON line to the ledger at `path`,
    /// creating the file and its parent directory as needed.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn append_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_value().compact())
    }
}

/// Loads every parseable record from a JSONL ledger, oldest first. Blank
/// lines are skipped; a malformed line is an error (a ledger is append-only
/// and machine-written — corruption should be loud).
///
/// # Errors
/// Returns I/O errors and parse failures with line numbers.
pub fn load_ledger(path: impl AsRef<Path>) -> Result<Vec<LedgerRecord>, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let record = LedgerRecord::from_value(&value)
            .ok_or_else(|| format!("line {}: not a ledger record", i + 1))?;
        out.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LedgerRecord {
        let mut r = LedgerRecord {
            name: "mlp/apf".to_owned(),
            model: "mlp".to_owned(),
            strategy: "apf".to_owned(),
            config_digest: format!("{:016x}", fnv1a64(b"cfg")),
            rounds: 3,
            final_accuracy: 0.75,
            total_bytes: 123_456,
            wall_secs: 1.5,
            sim_secs: 9.25,
            threads: 2,
            host_parallelism: 8,
            ..LedgerRecord::default()
        };
        r.metrics.insert("matmul_gflops".to_owned(), 5.5);
        r.series.insert("loss".to_owned(), vec![2.0, 1.0, 0.5]);
        r
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_roundtrips_through_jsonl() {
        let r = sample();
        let line = r.to_value().compact();
        assert!(!line.contains('\n'));
        let back = LedgerRecord::from_value(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn append_and_load() {
        let path = std::env::temp_dir().join("apf_ledger_test_append.jsonl");
        let _ = std::fs::remove_file(&path);
        let r = sample();
        r.append_to(&path).unwrap();
        r.append_to(&path).unwrap();
        let loaded = load_ledger(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0], r);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_corruption() {
        let path = std::env::temp_dir().join("apf_ledger_test_corrupt.jsonl");
        std::fs::write(&path, "{\"name\":\"ok\"}\nnot json\n").unwrap();
        let err = load_ledger(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nan_series_points_survive_as_null() {
        let mut r = sample();
        r.series.insert("accuracy".to_owned(), vec![f64::NAN, 0.5]);
        let line = r.to_value().compact();
        assert!(!line.contains("NaN"), "{line}");
        let back = LedgerRecord::from_value(&json::parse(&line).unwrap()).unwrap();
        let acc = &back.series["accuracy"];
        assert!(acc[0].is_nan());
        assert_eq!(acc[1], 0.5);
    }
}
