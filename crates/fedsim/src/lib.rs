//! Federated-learning simulator for the APF reproduction.
//!
//! Reproduces the paper's testbed (§7.1) — a central server, N edge clients
//! with 9 Mbps down / 3 Mbps up links, non-IID local datasets — as a
//! single-process simulation with exact byte accounting and a bandwidth/time
//! model. All synchronization strategies the paper evaluates are implemented:
//!
//! * [`FullSync`] — vanilla FedAvg (the "w/o APF" baseline);
//! * [`PartialSync`] — strawman 1 of §4.1 (stable scalars updated locally);
//! * [`ApfStrategy`] — APF / APF# / APF++ plus, via a permanent-freeze
//!   controller, strawman 2 of §4.1; optionally stacked with fp16
//!   quantization (§7.7);
//! * [`Gaia`] and [`Cmfl`] — the §7.4 sparsification baselines.
//!
//! FedProx (§7.7) and stragglers (partial local work) are client-level
//! options in [`FlConfig`].
//!
//! # Example
//!
//! ```no_run
//! use apf_fedsim::{FlConfig, FlRunner, FullSync};
//! use apf_data::{synth_images, iid_partition};
//! use apf_nn::models;
//!
//! let train = synth_images(200, 0);
//! let test = synth_images(100, 1);
//! let parts = iid_partition(train.len(), 4, 0);
//! let cfg = FlConfig { rounds: 5, ..FlConfig::default() };
//! let mut runner = FlRunner::builder(|seed| models::lenet5(seed), cfg)
//!     .clients_from_partition(&train, &parts)
//!     .test_set(test)
//!     .strategy(Box::new(FullSync::new()))
//!     .build();
//! let log = runner.run();
//! println!("best accuracy {}", log.best_accuracy());
//! ```

mod client;
mod extra;
pub mod json;
pub mod ledger;
mod metrics;
mod network;
mod population;
mod runner;
mod spec;
mod strategy;
mod trajectory;

pub use client::Client;
pub use extra::{DpGaussian, LayerFreeze, TopK};
pub use ledger::{fnv1a64, load_ledger, peak_resident_bytes, LedgerRecord};
pub use metrics::{ExperimentLog, RoundRecord};
pub use network::NetworkModel;
pub use population::{ClientRegistry, PopulationConfig, PopulationData, PopulationRunner};
pub use runner::{FlConfig, FlRunner, FlRunnerBuilder, OptimizerKind};
pub use spec::{EvalSetup, PartitionKind, RunSpec, SpecError, SpecStrategy};
pub use strategy::{ApfStrategy, Cmfl, FullSync, Gaia, PartialSync, RoundComm, SyncStrategy};
pub use trajectory::{Trajectory, TrajectoryRound};
