//! Bandwidth/time model of the edge links (§7.1: 9 Mbps down, 3 Mbps up per
//! client; the server-side 10 Gbps uplink is never the bottleneck at these
//! scales and is ignored).

/// Per-client link model used to convert byte counts into simulated transfer
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Client download bandwidth in Mbps.
    pub down_mbps: f64,
    /// Client upload bandwidth in Mbps.
    pub up_mbps: f64,
}

impl Default for NetworkModel {
    /// The paper's global-Internet setup: 9 Mbps down, 3 Mbps up.
    fn default() -> Self {
        NetworkModel {
            down_mbps: 9.0,
            up_mbps: 3.0,
        }
    }
}

impl NetworkModel {
    /// Transfer time in seconds for a synchronous round in which the busiest
    /// client uploads `bytes_up` and downloads `bytes_down` (all clients
    /// transfer in parallel over their own links, so the slowest — i.e.
    /// largest — transfer gates the barrier).
    ///
    /// # Panics
    /// Panics if either bandwidth is not positive.
    pub fn transfer_secs(&self, bytes_up: u64, bytes_down: u64) -> f64 {
        assert!(
            self.down_mbps > 0.0 && self.up_mbps > 0.0,
            "bandwidth must be positive"
        );
        let up = bytes_up as f64 * 8.0 / (self.up_mbps * 1e6);
        let down = bytes_down as f64 * 8.0 / (self.down_mbps * 1e6);
        up + down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let n = NetworkModel::default();
        assert_eq!(n.down_mbps, 9.0);
        assert_eq!(n.up_mbps, 3.0);
    }

    #[test]
    fn transfer_time_math() {
        let n = NetworkModel {
            down_mbps: 8.0,
            up_mbps: 8.0,
        };
        // 1 MB up + 1 MB down at 8 Mbps = 1 s + 1 s.
        assert!((n.transfer_secs(1_000_000, 1_000_000) - 2.0).abs() < 1e-9);
        assert_eq!(n.transfer_secs(0, 0), 0.0);
    }

    #[test]
    fn asymmetric_links() {
        let n = NetworkModel::default();
        // Upload at 3 Mbps is 3x slower than download at 9 Mbps.
        let up_only = n.transfer_secs(900_000, 0);
        let down_only = n.transfer_secs(0, 900_000);
        assert!((up_only / down_only - 3.0).abs() < 1e-9);
    }
}
