//! Bandwidth/time model of the edge links (§7.1: 9 Mbps down, 3 Mbps up per
//! client; the server-side 10 Gbps uplink is never the bottleneck at these
//! scales and is ignored).

/// Per-client link model used to convert byte counts into simulated transfer
/// time.
///
/// # Invariant
/// Both bandwidths must be positive and finite. [`NetworkModel::new`]
/// enforces this once at construction; building a literal with the public
/// fields is possible but leaves the invariant to the caller
/// ([`NetworkModel::transfer_secs`] only `debug_assert`s it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Client download bandwidth in Mbps. Must be positive and finite.
    pub down_mbps: f64,
    /// Client upload bandwidth in Mbps. Must be positive and finite.
    pub up_mbps: f64,
}

impl Default for NetworkModel {
    /// The paper's global-Internet setup: 9 Mbps down, 3 Mbps up.
    fn default() -> Self {
        NetworkModel {
            down_mbps: 9.0,
            up_mbps: 3.0,
        }
    }
}

impl NetworkModel {
    /// Creates a link model, validating the bandwidths once.
    ///
    /// # Errors
    /// Returns a description of the offending bandwidth when either is not
    /// a positive finite number.
    pub fn new(down_mbps: f64, up_mbps: f64) -> Result<Self, String> {
        if !(down_mbps.is_finite() && down_mbps > 0.0) {
            return Err(format!(
                "download bandwidth must be positive and finite, got {down_mbps}"
            ));
        }
        if !(up_mbps.is_finite() && up_mbps > 0.0) {
            return Err(format!(
                "upload bandwidth must be positive and finite, got {up_mbps}"
            ));
        }
        Ok(NetworkModel { down_mbps, up_mbps })
    }

    /// Transfer time in seconds for a synchronous round in which the busiest
    /// client uploads `bytes_up` and downloads `bytes_down` (all clients
    /// transfer in parallel over their own links, so the slowest — i.e.
    /// largest — transfer gates the barrier).
    ///
    /// Relies on the type invariant (positive finite bandwidths, checked by
    /// [`NetworkModel::new`]); only `debug_assert`ed here so the per-round
    /// hot path carries no branch in release builds.
    pub fn transfer_secs(&self, bytes_up: u64, bytes_down: u64) -> f64 {
        debug_assert!(
            self.down_mbps > 0.0 && self.up_mbps > 0.0,
            "bandwidth must be positive (use NetworkModel::new)"
        );
        let up = bytes_up as f64 * 8.0 / (self.up_mbps * 1e6);
        let down = bytes_down as f64 * 8.0 / (self.down_mbps * 1e6);
        up + down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let n = NetworkModel::default();
        assert_eq!(n.down_mbps, 9.0);
        assert_eq!(n.up_mbps, 3.0);
    }

    #[test]
    fn new_validates_once() {
        let n = NetworkModel::new(9.0, 3.0).unwrap();
        assert_eq!(n, NetworkModel::default());
    }

    #[test]
    fn zero_bandwidth_rejected() {
        assert!(NetworkModel::new(0.0, 3.0).is_err());
        assert!(NetworkModel::new(9.0, 0.0).is_err());
    }

    #[test]
    fn negative_bandwidth_rejected() {
        let err = NetworkModel::new(-1.0, 3.0).unwrap_err();
        assert!(err.contains("download"), "{err}");
        let err = NetworkModel::new(9.0, -2.5).unwrap_err();
        assert!(err.contains("upload"), "{err}");
    }

    #[test]
    fn non_finite_bandwidth_rejected() {
        assert!(NetworkModel::new(f64::NAN, 3.0).is_err());
        assert!(NetworkModel::new(9.0, f64::INFINITY).is_err());
    }

    #[test]
    fn transfer_time_math() {
        let n = NetworkModel::new(8.0, 8.0).unwrap();
        // 1 MB up + 1 MB down at 8 Mbps = 1 s + 1 s.
        assert!((n.transfer_secs(1_000_000, 1_000_000) - 2.0).abs() < 1e-9);
        assert_eq!(n.transfer_secs(0, 0), 0.0);
    }

    #[test]
    fn asymmetric_links() {
        let n = NetworkModel::default();
        // Upload at 3 Mbps is 3x slower than download at 9 Mbps.
        let up_only = n.transfer_secs(900_000, 0);
        let down_only = n.transfer_secs(0, 900_000);
        assert!((up_only / down_only - 3.0).abs() < 1e-9);
    }
}
