//! Million-client event-driven population simulator.
//!
//! [`FlRunner`] materializes every client up front — fine for the paper's
//! 10-client testbed, hopeless for a realistic federated population where
//! millions of devices are *registered* but only a small cohort is sampled
//! each round (the C-fraction of McMahan et al.). [`PopulationRunner`]
//! inverts the representation:
//!
//! * A [`ClientRegistry`] holds only **compact dormant state** per client
//!   that has ever participated: the batch-shuffle RNG state, the trainer
//!   step counter, and the optimizer state encoded with an
//!   [`EmaCodec`] (dense = bit-exact, f16 = half-size). A client that has
//!   never been sampled costs **zero bytes** — its fresh state is derivable
//!   from the run seed.
//! * Per-client APF state is shared, not stored: §6.2 of the paper proves
//!   every client's `ApfManager` evolves identically under synchronized
//!   inputs, so one manager serves the whole population. At each round
//!   boundary it is itself squeezed through [`DormantApfState`] (bit-packed
//!   freeze mask, codec-compressed EMA trajectories) — the dormant encode
//!   path is load-bearing, not dead code.
//! * Full replicas ("shells": model + optimizer + data shard) exist only
//!   for the cohort block currently training, and are **recycled** across
//!   blocks and rounds; their backing buffers cycle through the
//!   `apf_tensor::slab` size-class store, so steady-state allocation is
//!   zero regardless of cohort composition.
//!
//! The round is driven as a deterministic event queue — `Sample` →
//! `Train{block}`... → `Finalize` — so cohort blocks are scheduled
//! explicitly and resident memory is bounded by the shell pool, never by
//! the registered population.
//!
//! **Parity contract:** with full participation (`cohort = 0`), dense
//! dormant encoding, and shared-partition data, a [`PopulationRunner`] is
//! bitwise identical to [`FlRunner`] with [`crate::ApfStrategy`] — same
//! trajectory, same final global bits, at any thread count
//! (`tests/population_parity.rs`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use apf::{Aimd, ApfConfig, ApfManager, DormantApfState};
use apf_data::{Dataset, SynthImageGen};
use apf_nn::{LrSchedule, Sequential, Trainer};
use apf_quant::{f16_roundtrip_in_place, EmaCodec};
use apf_tensor::{derive_seed, seeded_rng, slab, Tensor};
use apf_trace::{event, span, Level};

use crate::client::Client;
use crate::ledger::{fnv1a64, peak_resident_bytes, LedgerRecord};
use crate::metrics::{ExperimentLog, RoundRecord};
use crate::network::NetworkModel;
use crate::runner::{config_canonical, FlConfig, OptimizerKind};

/// Estimated per-entry bookkeeping overhead of the registry map, counted on
/// top of the packed blob itself when reporting resident bytes.
const REGISTRY_ENTRY_OVERHEAD: u64 = 48;

/// Compact dormant storage for every client that has ever participated.
///
/// Keys are client ids; values are packed blobs from [`pack_dormant`]. A
/// missing key means "fresh client" — state derivable from the run seed.
#[derive(Debug, Default)]
pub struct ClientRegistry {
    entries: HashMap<u64, Box<[u8]>>,
    blob_bytes: u64,
}

impl ClientRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClientRegistry::default()
    }

    /// Number of clients with stored (non-fresh) state.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no client has participated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dormant blob for `id`, if it has participated before.
    pub fn get(&self, id: u64) -> Option<&[u8]> {
        self.entries.get(&id).map(|b| &b[..])
    }

    /// Stores (or replaces) the dormant blob for `id`.
    pub fn insert(&mut self, id: u64, blob: Box<[u8]>) {
        self.blob_bytes += blob.len() as u64;
        if let Some(old) = self.entries.insert(id, blob) {
            self.blob_bytes -= old.len() as u64;
        }
    }

    /// Resident-byte estimate: packed blobs plus per-entry map overhead.
    pub fn resident_bytes(&self) -> u64 {
        self.blob_bytes + self.entries.len() as u64 * REGISTRY_ENTRY_OVERHEAD
    }
}

/// Packs a client's dormant state: RNG words, step counter, and the
/// codec-encoded optimizer state.
fn pack_dormant(rng: [u64; 4], steps: u64, opt: &[f32], codec: EmaCodec) -> Box<[u8]> {
    let mut out = Vec::with_capacity(1 + 32 + 8 + 4 + codec.encoded_len(opt.len()));
    out.push(match codec {
        EmaCodec::Dense => 0u8,
        EmaCodec::F16 => 1,
    });
    for w in rng {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&steps.to_le_bytes());
    out.extend_from_slice(&(opt.len() as u32).to_le_bytes());
    codec.encode_into(opt, &mut out);
    out.into_boxed_slice()
}

/// Inverts [`pack_dormant`].
///
/// # Panics
/// Panics on a malformed blob — the registry is process-local, so
/// corruption is a bug, not an input error.
fn unpack_dormant(blob: &[u8]) -> ([u64; 4], u64, Vec<f32>) {
    assert!(blob.len() >= 45, "dormant blob too short: {}", blob.len());
    let codec = match blob[0] {
        0 => EmaCodec::Dense,
        1 => EmaCodec::F16,
        other => panic!("unknown dormant codec byte {other}"),
    };
    let word = |i: usize| {
        let s = 1 + i * 8;
        u64::from_le_bytes(blob[s..s + 8].try_into().expect("8 bytes"))
    };
    let rng = [word(0), word(1), word(2), word(3)];
    let steps = word(4);
    let n = u32::from_le_bytes(blob[41..45].try_into().expect("4 bytes")) as usize;
    let payload = &blob[45..];
    assert_eq!(
        payload.len(),
        codec.encoded_len(n),
        "dormant payload length"
    );
    let opt = codec.decode(payload).expect("stride-aligned payload");
    (rng, steps, opt)
}

/// Where cohort clients get their data shards.
pub enum PopulationData {
    /// Every client holds a fixed slice of one shared training set — the
    /// [`FlRunner`] layout, used by the parity harness.
    Shared {
        /// The full training set.
        train: Dataset,
        /// Per-client sample indices (one entry per registered client).
        parts: Vec<Vec<usize>>,
    },
    /// Each client owns a private synthetic shard, generated on
    /// materialization into slab-recycled buffers (split `2 + id`, so no
    /// client shares samples with the conventional train/test splits 0/1).
    Synth {
        /// Shared prototype generator.
        gen: SynthImageGen,
        /// Samples per client.
        per_client: usize,
    },
}

impl std::fmt::Debug for PopulationData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopulationData::Shared { parts, .. } => f
                .debug_struct("Shared")
                .field("clients", &parts.len())
                .finish(),
            PopulationData::Synth { per_client, .. } => f
                .debug_struct("Synth")
                .field("per_client", per_client)
                .finish(),
        }
    }
}

/// Configuration of a [`PopulationRunner`] beyond the shared [`FlConfig`].
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Round/training hyper-parameters (seed, rounds, local iters, ...).
    pub fl: FlConfig,
    /// Registered population size.
    pub registered: usize,
    /// Clients sampled per round; `0` = full participation.
    pub cohort: usize,
    /// Dormant-state encoding (dense = bit-exact, f16 = half-size).
    pub codec: EmaCodec,
    /// Maximum simultaneously materialized replicas (block size).
    pub shells: usize,
    /// The APF configuration for the shared manager.
    pub apf: ApfConfig,
    /// Stack fp16 quantization on the wire (§7.7).
    pub wire_f16: bool,
    /// Client optimizer.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

/// One materialized replica, re-bound to a different registered client as
/// cohort blocks stream through.
struct Shell {
    client: Client,
    bound: u64,
}

/// The deterministic per-round event schedule.
enum RoundEvent {
    /// Draw the cohort and schedule its blocks.
    Sample,
    /// Materialize, train, aggregate, and suspend cohort block
    /// `[lo, lo + shells)`.
    Train {
        /// Cohort-list offset of the block.
        lo: usize,
    },
    /// Close the round: finish aggregation, sync, evaluate, record.
    Finalize,
}

/// Event-driven sampled-participation simulator over a registered
/// population (see the module docs for the architecture and the parity
/// contract).
pub struct PopulationRunner {
    cfg: PopulationConfig,
    data: PopulationData,
    model_factory: Box<dyn Fn(u64) -> Sequential>,
    model_seed: u64,
    mgr: ApfManager,
    mgr_dormant_bytes: usize,
    shells: Vec<Shell>,
    registry: ClientRegistry,
    global: Vec<f32>,
    rep: Vec<f32>,
    eval_model: Sequential,
    test: Dataset,
    network: NetworkModel,
    log: ExperimentLog,
    cum_bytes: u64,
    cum_secs: f64,
    best_accuracy: f32,
    initial_model_bytes: u64,
    model_name: String,
    strategy_label: String,
    config_digest: u64,
    ledger_path: Option<PathBuf>,
}

impl std::fmt::Debug for PopulationRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PopulationRunner")
            .field("registered", &self.cfg.registered)
            .field("cohort", &self.cfg.cohort)
            .field("shells", &self.shells.len())
            .finish()
    }
}

impl PopulationRunner {
    /// Assembles the runner.
    ///
    /// # Panics
    /// Panics when the configuration is structurally invalid: zero
    /// registered clients or shells, an APF config that fails validation,
    /// or shared-partition data whose part count differs from `registered`.
    pub fn new(
        cfg: PopulationConfig,
        model_factory: impl Fn(u64) -> Sequential + 'static,
        data: PopulationData,
        test: Dataset,
    ) -> Self {
        apf_trace::init_from_env();
        assert!(cfg.registered > 0, "no registered clients");
        assert!(cfg.shells > 0, "need at least one shell");
        cfg.apf.validate().expect("invalid APF config");
        if let PopulationData::Shared { parts, .. } = &data {
            assert_eq!(
                parts.len(),
                cfg.registered,
                "partition does not cover the registered population"
            );
        }
        let model_seed = derive_seed(cfg.fl.seed, 0x30DE1);
        let mut eval_model = model_factory(model_seed);
        let init = eval_model.flat_params();
        let mgr = ApfManager::new(&init, cfg.apf, Box::new(Aimd::default()))
            .expect("config validated above");
        let model_name = eval_model.name().to_owned();
        let strategy_label = if cfg.wire_f16 { "apf-pop+q" } else { "apf-pop" }.to_owned();
        let name = format!("{model_name}/{strategy_label}");
        let config_digest =
            fnv1a64(population_canonical(&cfg, &model_name, &strategy_label).as_bytes());
        let ledger_path = std::env::var("APF_LEDGER_FILE")
            .ok()
            .filter(|s| !s.is_empty())
            .map(PathBuf::from);
        event!(Level::Info, target: "fedsim.pop", "population_configured",
            name = name.as_str(),
            registered = cfg.registered,
            cohort = cfg.cohort,
            shells = cfg.shells,
            model_scalars = init.len(),
            dormant = cfg.codec.name(),
        );
        let initial_model_bytes = init.len() as u64 * 4;
        PopulationRunner {
            cfg,
            data,
            model_factory: Box::new(model_factory),
            model_seed,
            mgr,
            mgr_dormant_bytes: 0,
            shells: Vec::new(),
            registry: ClientRegistry::new(),
            rep: init.clone(),
            global: init,
            eval_model,
            test,
            network: NetworkModel::default(),
            log: ExperimentLog::new(&name),
            cum_bytes: 0,
            cum_secs: 0.0,
            best_accuracy: 0.0,
            initial_model_bytes,
            model_name,
            strategy_label,
            config_digest,
            ledger_path,
        }
    }

    /// Appends a [`LedgerRecord`] when [`PopulationRunner::run`] completes
    /// (also enabled by `APF_LEDGER_FILE`; this method wins).
    pub fn ledger(&mut self, path: impl Into<PathBuf>) {
        self.ledger_path = Some(path.into());
    }

    /// The metric log so far.
    pub fn log(&self) -> &ExperimentLog {
        &self.log
    }

    /// The current global flat model.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// The registry of dormant clients.
    pub fn registry(&self) -> &ClientRegistry {
        &self.registry
    }

    /// Deterministic steady-state resident-byte estimate: slab free lists,
    /// registry blobs, the shared manager's dormant footprint, and the
    /// materialized shells. Independent of the registered population size —
    /// that is the claim the `bench-kernels` population sweep pins.
    pub fn steady_resident_bytes(&self) -> u64 {
        let (_, _, _, slab_resident) = slab::global_stats();
        let n = self.global.len() as u64;
        // Shells: flat params + grads + optimizer state + the data shard.
        let shells: u64 = self
            .shells
            .iter()
            .map(|s| {
                let data = s.client.data();
                let shard = (data.len() * data.sample_numel()) as u64 * 4 + data.len() as u64 * 8;
                n * 8 + s.client.trainer().optimizer_state().len() as u64 * 4 + shard
            })
            .sum();
        // Runner-owned dense vectors: global + representative + eval model.
        let runner = n * 4 * 3;
        slab_resident
            + self.registry.resident_bytes()
            + self.mgr_dormant_bytes as u64
            + shells
            + runner
    }

    /// Draws the round's cohort: sorted, distinct, seeded by
    /// `(run seed, round)` so reruns and thread counts cannot change it.
    fn sample_cohort(&self, round: u64) -> Vec<u64> {
        let n = self.cfg.registered as u64;
        let k = self.cfg.cohort as u64;
        if k == 0 || k >= n {
            return (0..n).collect();
        }
        let mut rng = seeded_rng(derive_seed(derive_seed(self.cfg.fl.seed, 0xC040), round));
        let mut chosen = std::collections::HashSet::with_capacity(k as usize);
        let mut out = Vec::with_capacity(k as usize);
        while out.len() < k as usize {
            let c = rng.gen_range(0..n);
            if chosen.insert(c) {
                out.push(c);
            }
        }
        out.sort_unstable();
        out
    }

    /// Builds client `id`'s data shard (slab-backed in synthetic mode).
    fn make_shard(&self, id: u64) -> Dataset {
        match &self.data {
            PopulationData::Shared { train, parts } => train.select(&parts[id as usize]),
            PopulationData::Synth { gen, per_client } => {
                let row = gen.sample_numel();
                let mut buf = slab::take(per_client * row);
                let mut labels = Vec::with_capacity(*per_client);
                gen.fill_split(*per_client, 2 + id, &mut buf, &mut labels);
                Dataset::new(
                    Tensor::from_vec(buf, &[*per_client, row]),
                    labels,
                    apf_data::NUM_CLASSES,
                )
            }
        }
    }

    /// Returns a retired shard's backing buffer to the slab store.
    fn recycle_shard(ds: Dataset) {
        let (inputs, _labels) = ds.into_parts();
        slab::give(inputs.into_vec());
    }

    /// Materializes client `id` into shell `slot` — building the shell on
    /// first use, re-binding (and recycling) it otherwise — and restores
    /// the client's dormant state. Returns whether this is the client's
    /// first-ever participation.
    fn materialize(&mut self, slot: usize, id: u64, _round: u64) -> bool {
        let shard = self.make_shard(id);
        let dormant = self.registry.get(id).map(unpack_dormant);
        let first_time = dormant.is_none();
        let (rng, steps, opt) = dormant.unwrap_or_else(|| {
            let fresh = seeded_rng(derive_seed(derive_seed(self.cfg.fl.seed, id), 0xC11E));
            (fresh.state(), 0, Vec::new())
        });
        if self.shells.len() <= slot {
            debug_assert_eq!(self.shells.len(), slot);
            let trainer = Trainer::new(
                (self.model_factory)(self.model_seed),
                self.cfg.optimizer.build(),
                self.cfg.schedule,
            );
            let client = Client::new(
                trainer,
                shard,
                self.cfg.fl.batch_size,
                derive_seed(self.cfg.fl.seed, id),
            );
            self.shells.push(Shell { client, bound: id });
        } else {
            let shell = &mut self.shells[slot];
            let old = shell.client.replace_data(shard);
            PopulationRunner::recycle_shard(old);
            shell.bound = id;
        }
        let client = &mut self.shells[slot].client;
        client.load_flat(&self.global);
        client.set_rng_state(rng);
        client.trainer_mut().set_step_count(steps as usize);
        client.trainer_mut().load_optimizer_state(&opt);
        first_time
    }

    /// Suspends shell `slot`'s client back into the registry.
    fn suspend(&mut self, slot: usize) {
        let shell = &self.shells[slot];
        let blob = pack_dormant(
            shell.client.rng_state(),
            shell.client.trainer().step_count() as u64,
            &shell.client.trainer().optimizer_state(),
            self.cfg.codec,
        );
        self.registry.insert(shell.bound, blob);
    }

    /// Trains the first `count` shells (one local round each), writing mean
    /// batch losses into `losses`. Parallel over the `apf-par` pool when
    /// configured; bitwise identical either way.
    fn train_block(&mut self, round: u64, count: usize, losses: &mut [f32]) {
        let local_iters = self.cfg.fl.local_iters;
        let parallel = self.cfg.fl.parallel;
        let mgr = &self.mgr;
        let shells = &mut self.shells[..count];
        if parallel && count > 1 {
            apf_par::scope(|s| {
                for (shell, slot) in shells.iter_mut().zip(losses.iter_mut()) {
                    s.spawn(move || {
                        let hook = |p: &mut [f32]| mgr.rollback(p, round);
                        *slot = shell.client.local_round(local_iters, &hook);
                    });
                }
            });
        } else {
            for (shell, slot) in shells.iter_mut().zip(losses.iter_mut()) {
                let hook = |p: &mut [f32]| mgr.rollback(p, round);
                *slot = shell.client.local_round(local_iters, &hook);
            }
        }
    }

    /// Runs one communication round and returns its record.
    pub fn run_round(&mut self, round: u64) -> RoundRecord {
        let _round_span = span!(Level::Info, target: "fedsim.pop", "round", round = round);
        let n = self.global.len();
        let block = self.cfg.shells;
        let mask = self.mgr.frozen_mask_packed(round);
        let words = mask.words().to_vec();
        let mut cohort: Vec<u64> = Vec::new();
        let mut losses: Vec<f32> = Vec::new();
        let mut agg = slab::take(n);
        let mut new_clients = 0u64;
        let mut compute_secs = 0.0f64;
        let mut events = std::collections::VecDeque::new();
        events.push_back(RoundEvent::Sample);
        while let Some(ev) = events.pop_front() {
            match ev {
                RoundEvent::Sample => {
                    cohort = self.sample_cohort(round);
                    losses = vec![0.0f32; cohort.len()];
                    let mut lo = 0;
                    while lo < cohort.len() {
                        events.push_back(RoundEvent::Train { lo });
                        lo += block;
                    }
                    events.push_back(RoundEvent::Finalize);
                }
                RoundEvent::Train { lo } => {
                    let hi = (lo + block).min(cohort.len());
                    for (slot, idx) in (lo..hi).enumerate() {
                        if self.materialize(slot, cohort[idx], round) {
                            new_clients += 1;
                        }
                    }
                    let t0 = Instant::now();
                    self.train_block(round, hi - lo, &mut losses[lo..hi]);
                    compute_secs += t0.elapsed().as_secs_f64();
                    // Aggregate in ascending client order — the same f32
                    // accumulation order as FlRunner's per-client loop.
                    for slot in 0..hi - lo {
                        let mut flat = self.shells[slot].client.flat_params();
                        self.mgr.rollback(&mut flat, round);
                        if self.cfg.wire_f16 {
                            mask.for_each_unfrozen_run_in(0, n, |s, e| {
                                f16_roundtrip_in_place(&mut flat[s..e]);
                            });
                        }
                        apf_tensor::masked_axpy(&mut agg, &flat, 1.0, &words);
                        apf_tensor::scratch::give(flat);
                        self.suspend(slot);
                    }
                }
                RoundEvent::Finalize => {
                    // Weight total accumulated exactly as FlRunner sums its
                    // per-client unit weights.
                    let mut total = 0.0f32;
                    for _ in 0..cohort.len() {
                        total += 1.0;
                    }
                    apf_tensor::masked_div(&mut agg, total, &words);
                    if self.cfg.wire_f16 {
                        mask.for_each_unfrozen_run_in(0, n, |s, e| {
                            f16_roundtrip_in_place(&mut agg[s..e]);
                        });
                    }
                    self.mgr.apply_aggregate_dense(&mut self.rep, &agg, round);
                }
            }
        }
        let report = self.mgr.finish_round(&self.rep, round);
        self.global.copy_from_slice(&self.rep);
        slab::give(agg);
        // The shared manager's round-boundary dormant hop: encode → decode
        // through the configured codec, proving the compact form carries
        // everything the next round needs.
        let snapshot = self.mgr.snapshot();
        let dormant = DormantApfState::encode(&snapshot, self.cfg.codec);
        self.mgr_dormant_bytes = dormant.len_bytes();
        let restored = dormant.decode(self.cfg.apf).expect("self-encoded blob");
        self.mgr = ApfManager::restore(restored, Box::new(Aimd::default()));
        // Communication accounting: every cohort client moves the masked
        // frame both ways; first-timers additionally pull the initial model
        // (FlRunner's round-0 broadcast, amortized over late joiners).
        let cohort_n = cohort.len() as u64;
        let bytes_up = report.bytes_up * cohort_n;
        let bytes_down = report.bytes_down * cohort_n;
        if new_clients > 0 {
            self.cum_bytes += self.initial_model_bytes * new_clients;
            self.cum_secs += self.network.transfer_secs(0, self.initial_model_bytes);
        }
        let comm_secs = self
            .network
            .transfer_secs(report.bytes_up, report.bytes_down);
        self.cum_bytes += bytes_up + bytes_down;
        self.cum_secs += compute_secs + comm_secs;
        let accuracy = if round.is_multiple_of(self.cfg.fl.eval_every as u64)
            || round + 1 == self.cfg.fl.rounds as u64
        {
            let _s = span!(Level::Info, target: "fedsim.pop", "eval", round = round);
            self.eval_model.load_flat(&self.global);
            let acc = apf_nn::evaluate(
                &mut self.eval_model,
                self.test.inputs(),
                self.test.labels(),
                self.cfg.fl.eval_batch,
            );
            self.best_accuracy = self.best_accuracy.max(acc);
            Some(acc)
        } else {
            None
        };
        let record = RoundRecord {
            round,
            loss: losses.iter().sum::<f32>() / cohort.len().max(1) as f32,
            accuracy,
            best_accuracy: self.best_accuracy,
            frozen_ratio: report.frozen_ratio(),
            bytes_up,
            bytes_down,
            cum_bytes: self.cum_bytes,
            compute_secs,
            comm_secs,
            cum_secs: self.cum_secs,
        };
        self.log.push(record);
        let (slab_hits, slab_misses, slab_alloc, slab_resident) = slab::global_stats();
        apf_trace::metrics::counter("fedsim.bytes_up").add(record.bytes_up);
        apf_trace::metrics::counter("fedsim.bytes_down").add(record.bytes_down);
        apf_trace::metrics::gauge("slab.hits").set(slab_hits as f64);
        apf_trace::metrics::gauge("slab.misses").set(slab_misses as f64);
        apf_trace::metrics::gauge("slab.alloc_bytes").set(slab_alloc as f64);
        apf_trace::metrics::gauge("slab.resident_bytes").set(slab_resident as f64);
        apf_trace::metrics::gauge("population.registry_clients").set(self.registry.len() as f64);
        apf_trace::metrics::gauge("population.registry_bytes")
            .set(self.registry.resident_bytes() as f64);
        event!(Level::Info, target: "fedsim.pop", "round_complete",
            round = round,
            cohort = cohort_n,
            new_clients = new_clients,
            loss = record.loss,
            frozen_ratio = record.frozen_ratio,
            bytes_up = record.bytes_up,
            registry_clients = self.registry.len(),
            slab_misses = slab_misses,
        );
        record
    }

    /// Runs all configured rounds; appends a ledger record when configured.
    pub fn run(&mut self) -> &ExperimentLog {
        let t0 = Instant::now();
        for r in 0..self.cfg.fl.rounds as u64 {
            self.run_round(r);
        }
        let wall_secs = t0.elapsed().as_secs_f64();
        apf_trace::metrics::emit();
        apf_trace::flush();
        if let Some(path) = self.ledger_path.clone() {
            let mut record = LedgerRecord::from_log(
                &self.log,
                &self.model_name,
                &self.strategy_label,
                self.config_digest,
                wall_secs,
            );
            record
                .metrics
                .insert("registered".to_owned(), self.cfg.registered as f64);
            record
                .metrics
                .insert("cohort_size".to_owned(), self.cfg.cohort as f64);
            record.metrics.insert(
                "registry_bytes".to_owned(),
                self.registry.resident_bytes() as f64,
            );
            record.metrics.insert(
                "steady_resident_bytes".to_owned(),
                self.steady_resident_bytes() as f64,
            );
            if let Some(peak) = peak_resident_bytes() {
                record
                    .metrics
                    .insert("peak_resident_bytes".to_owned(), peak as f64);
            }
            match record.append_to(&path) {
                Ok(()) => event!(Level::Info, target: "fedsim.pop", "ledger_appended",
                    path = path.display().to_string(),
                    digest = record.config_digest.as_str()),
                Err(e) => event!(Level::Warn, target: "fedsim.pop", "ledger_write_failed",
                    path = path.display().to_string(),
                    error = e.to_string()),
            }
        }
        &self.log
    }
}

/// Canonical configuration string behind the population runner's ledger
/// digest: the shared [`FlConfig`] canonical plus the population knobs.
pub(crate) fn population_canonical(cfg: &PopulationConfig, model: &str, strategy: &str) -> String {
    format!(
        "{};registered={};cohort={};dormant={};shells={}",
        config_canonical(&cfg.fl, model, strategy, cfg.registered),
        cfg.registered,
        cfg.cohort,
        cfg.codec.name(),
        cfg.shells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_blob_roundtrips() {
        let rng = [1u64, u64::MAX, 3, 0xDEAD_BEEF];
        let opt = vec![0.5f32, -1.25, 3.0];
        for codec in [EmaCodec::Dense, EmaCodec::F16] {
            let blob = pack_dormant(rng, 42, &opt, codec);
            let (r2, s2, o2) = unpack_dormant(&blob);
            assert_eq!(r2, rng);
            assert_eq!(s2, 42);
            assert_eq!(o2, opt, "{codec:?} must be exact on these values");
        }
        // Empty optimizer state (momentum-free SGD) stays tiny.
        let blob = pack_dormant(rng, 0, &[], EmaCodec::Dense);
        assert_eq!(blob.len(), 45);
    }

    #[test]
    fn registry_accounting_tracks_replacements() {
        let mut reg = ClientRegistry::new();
        assert!(reg.is_empty());
        reg.insert(5, pack_dormant([0; 4], 0, &[1.0; 8], EmaCodec::Dense));
        let b1 = reg.resident_bytes();
        reg.insert(5, pack_dormant([0; 4], 1, &[], EmaCodec::Dense));
        assert_eq!(reg.len(), 1);
        assert!(reg.resident_bytes() < b1, "replacement must shrink");
        reg.insert(9, pack_dormant([0; 4], 0, &[], EmaCodec::Dense));
        assert_eq!(reg.len(), 2);
        assert!(reg.get(7).is_none());
    }

    #[test]
    fn cohort_sampling_is_deterministic_sorted_distinct() {
        let spec = crate::RunSpec::golden();
        let mut runner = spec.build_population_runner();
        runner.cfg.registered = 1000;
        runner.cfg.cohort = 64;
        let a = runner.sample_cohort(3);
        let b = runner.sample_cohort(3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(a.iter().all(|&c| c < 1000));
        let c = runner.sample_cohort(4);
        assert_ne!(a, c, "different rounds draw different cohorts");
    }
}
