//! Per-round metric records and experiment logs (CSV/JSON export).

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Metrics of one communication round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u64,
    /// Mean local training loss across clients this round.
    pub loss: f32,
    /// Test accuracy of the global model (recorded every `eval_every`
    /// rounds; `None` on skipped rounds).
    pub accuracy: Option<f32>,
    /// Best test accuracy observed so far (the paper plots best-ever, §3.1
    /// footnote 2).
    pub best_accuracy: f32,
    /// Fraction of scalars excluded from synchronization this round.
    pub frozen_ratio: f32,
    /// Bytes uploaded this round, summed over clients.
    pub bytes_up: u64,
    /// Bytes downloaded this round, summed over clients.
    pub bytes_down: u64,
    /// Cumulative bytes (both directions, all clients) including the initial
    /// model distribution.
    pub cum_bytes: u64,
    /// Wall-clock compute time of this round (slowest client), seconds.
    pub compute_secs: f64,
    /// Simulated transfer time of this round (slowest client), seconds.
    pub comm_secs: f64,
    /// Cumulative simulated round time, seconds.
    pub cum_secs: f64,
}

/// The full metric trace of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentLog {
    /// Experiment label, e.g. `"lenet5/apf"`.
    pub name: String,
    /// One record per round.
    pub records: Vec<RoundRecord>,
}

impl ExperimentLog {
    /// Creates an empty log with the given label.
    pub fn new(name: &str) -> Self {
        ExperimentLog { name: name.to_owned(), records: Vec::new() }
    }

    /// Appends a record.
    pub fn push(&mut self, r: RoundRecord) {
        self.records.push(r);
    }

    /// Best test accuracy over the whole run (0.0 if never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.best_accuracy)
    }

    /// Final cumulative transmission volume in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cum_bytes)
    }

    /// Mean per-round simulated time in seconds.
    pub fn mean_round_secs(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.last().unwrap().cum_secs / self.records.len() as f64
    }

    /// Mean frozen ratio over all rounds.
    pub fn mean_frozen_ratio(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.frozen_ratio).sum::<f32>() / self.records.len() as f32
    }

    /// Serializes the log as a CSV table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,loss,accuracy,best_accuracy,frozen_ratio,bytes_up,bytes_down,cum_bytes,compute_secs,comm_secs,cum_secs\n",
        );
        for r in &self.records {
            let acc = r.accuracy.map_or(String::new(), |a| format!("{a:.4}"));
            out.push_str(&format!(
                "{},{:.4},{},{:.4},{:.4},{},{},{},{:.6},{:.6},{:.6}\n",
                r.round,
                r.loss,
                acc,
                r.best_accuracy,
                r.frozen_ratio,
                r.bytes_up,
                r.bytes_down,
                r.cum_bytes,
                r.compute_secs,
                r.comm_secs,
                r.cum_secs,
            ));
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Serializes the log as JSON.
    ///
    /// # Panics
    /// Never in practice (the log is always serializable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, acc: Option<f32>, best: f32, bytes: u64) -> RoundRecord {
        RoundRecord {
            round,
            loss: 1.0,
            accuracy: acc,
            best_accuracy: best,
            frozen_ratio: 0.25,
            bytes_up: bytes,
            bytes_down: bytes,
            cum_bytes: bytes * (round + 1) * 2,
            compute_secs: 0.1,
            comm_secs: 0.2,
            cum_secs: 0.3 * (round + 1) as f64,
        }
    }

    #[test]
    fn aggregates() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.5), 0.5, 100));
        log.push(rec(1, None, 0.5, 100));
        log.push(rec(2, Some(0.7), 0.7, 100));
        assert_eq!(log.best_accuracy(), 0.7);
        assert_eq!(log.total_bytes(), 600);
        assert!((log.mean_round_secs() - 0.3).abs() < 1e-9);
        assert!((log.mean_frozen_ratio() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.5), 0.5, 10));
        let csv = log.to_csv();
        assert!(csv.starts_with("round,loss"));
        assert_eq!(csv.lines().count(), 2);
        // Skipped evaluations serialize as an empty field.
        let mut log2 = ExperimentLog::new("t2");
        log2.push(rec(0, None, 0.0, 10));
        assert!(log2.to_csv().lines().nth(1).unwrap().contains(",,"));
    }

    #[test]
    fn json_roundtrip() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.1), 0.1, 5));
        let back: ExperimentLog = serde_json::from_str(&log.to_json()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn empty_log_defaults() {
        let log = ExperimentLog::new("e");
        assert_eq!(log.best_accuracy(), 0.0);
        assert_eq!(log.total_bytes(), 0);
        assert_eq!(log.mean_round_secs(), 0.0);
    }
}
