//! Per-round metric records and experiment logs (CSV/JSON export).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::json::{self, Value};

/// Metrics of one communication round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: u64,
    /// Mean local training loss across clients this round.
    pub loss: f32,
    /// Test accuracy of the global model (recorded every `eval_every`
    /// rounds; `None` on skipped rounds).
    pub accuracy: Option<f32>,
    /// Best test accuracy observed so far (the paper plots best-ever, §3.1
    /// footnote 2).
    pub best_accuracy: f32,
    /// Fraction of scalars excluded from synchronization this round.
    pub frozen_ratio: f32,
    /// Bytes uploaded this round, summed over clients.
    pub bytes_up: u64,
    /// Bytes downloaded this round, summed over clients.
    pub bytes_down: u64,
    /// Cumulative bytes (both directions, all clients) including the initial
    /// model distribution.
    pub cum_bytes: u64,
    /// Wall-clock compute time of this round (slowest client), seconds.
    pub compute_secs: f64,
    /// Simulated transfer time of this round (slowest client), seconds.
    pub comm_secs: f64,
    /// Cumulative simulated round time, seconds.
    pub cum_secs: f64,
}

impl RoundRecord {
    fn to_value(self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("round".to_owned(), Value::from_u64(self.round));
        m.insert("loss".to_owned(), Value::from_f32(self.loss));
        m.insert(
            "accuracy".to_owned(),
            self.accuracy.map_or(Value::Null, Value::from_f32),
        );
        m.insert(
            "best_accuracy".to_owned(),
            Value::from_f32(self.best_accuracy),
        );
        m.insert(
            "frozen_ratio".to_owned(),
            Value::from_f32(self.frozen_ratio),
        );
        m.insert("bytes_up".to_owned(), Value::from_u64(self.bytes_up));
        m.insert("bytes_down".to_owned(), Value::from_u64(self.bytes_down));
        m.insert("cum_bytes".to_owned(), Value::from_u64(self.cum_bytes));
        m.insert(
            "compute_secs".to_owned(),
            Value::from_f64(self.compute_secs),
        );
        m.insert("comm_secs".to_owned(), Value::from_f64(self.comm_secs));
        m.insert("cum_secs".to_owned(), Value::from_f64(self.cum_secs));
        Value::Obj(m)
    }

    fn from_value(v: &Value) -> Option<RoundRecord> {
        // Tolerant: missing or null numeric fields default to zero, so logs
        // from older/newer schema revisions still load.
        let f32_of = |k: &str| v.get(k).and_then(Value::as_f32).unwrap_or(0.0);
        let f64_of = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let u64_of = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        match v {
            Value::Obj(_) => Some(RoundRecord {
                round: u64_of("round"),
                loss: f32_of("loss"),
                accuracy: v.get("accuracy").and_then(Value::as_f32),
                best_accuracy: f32_of("best_accuracy"),
                frozen_ratio: f32_of("frozen_ratio"),
                bytes_up: u64_of("bytes_up"),
                bytes_down: u64_of("bytes_down"),
                cum_bytes: u64_of("cum_bytes"),
                compute_secs: f64_of("compute_secs"),
                comm_secs: f64_of("comm_secs"),
                cum_secs: f64_of("cum_secs"),
            }),
            _ => None,
        }
    }
}

/// The full metric trace of one experiment run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentLog {
    /// Experiment label, e.g. `"lenet5/apf"`.
    pub name: String,
    /// One record per round.
    pub records: Vec<RoundRecord>,
}

impl ExperimentLog {
    /// Creates an empty log with the given label.
    pub fn new(name: &str) -> Self {
        ExperimentLog {
            name: name.to_owned(),
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, r: RoundRecord) {
        self.records.push(r);
    }

    /// Best test accuracy over the whole run (0.0 if never evaluated).
    pub fn best_accuracy(&self) -> f32 {
        self.records.last().map_or(0.0, |r| r.best_accuracy)
    }

    /// Final cumulative transmission volume in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.last().map_or(0, |r| r.cum_bytes)
    }

    /// Mean per-round simulated time in seconds.
    pub fn mean_round_secs(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.last().unwrap().cum_secs / self.records.len() as f64
    }

    /// Mean frozen ratio over all rounds.
    pub fn mean_frozen_ratio(&self) -> f32 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.frozen_ratio).sum::<f32>() / self.records.len() as f32
    }

    /// Serializes the log as a CSV table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,loss,accuracy,best_accuracy,frozen_ratio,bytes_up,bytes_down,cum_bytes,compute_secs,comm_secs,cum_secs\n",
        );
        for r in &self.records {
            let acc = r.accuracy.map_or(String::new(), |a| format!("{a:.4}"));
            out.push_str(&format!(
                "{},{:.4},{},{:.4},{:.4},{},{},{},{:.6},{:.6},{:.6}\n",
                r.round,
                r.loss,
                acc,
                r.best_accuracy,
                r.frozen_ratio,
                r.bytes_up,
                r.bytes_down,
                r.cum_bytes,
                r.compute_secs,
                r.comm_secs,
                r.cum_secs,
            ));
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Serializes the log as pretty-printed JSON.
    ///
    /// Non-finite floats serialize as `null`; the output never contains a
    /// `NaN` or `inf` token, so it is always standard JSON.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("name".to_owned(), Value::Str(self.name.clone()));
        m.insert(
            "records".to_owned(),
            Value::Arr(self.records.iter().map(|r| r.to_value()).collect()),
        );
        Value::Obj(m).pretty()
    }

    /// Parses a log previously produced by [`ExperimentLog::to_json`].
    ///
    /// The parse is tolerant: unknown fields are ignored and missing numeric
    /// fields default to zero.
    ///
    /// # Errors
    /// Returns a [`json::ParseError`] on malformed JSON or a non-log shape.
    pub fn from_json(input: &str) -> Result<ExperimentLog, json::ParseError> {
        let doc = json::parse(input)?;
        let shape_err = || json::ParseError {
            offset: 0,
            message: "document is not an ExperimentLog".to_owned(),
        };
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(shape_err)?;
        let records = doc
            .get("records")
            .and_then(Value::as_arr)
            .ok_or_else(shape_err)?
            .iter()
            .map(RoundRecord::from_value)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(shape_err)?;
        Ok(ExperimentLog {
            name: name.to_owned(),
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u64, acc: Option<f32>, best: f32, bytes: u64) -> RoundRecord {
        RoundRecord {
            round,
            loss: 1.0,
            accuracy: acc,
            best_accuracy: best,
            frozen_ratio: 0.25,
            bytes_up: bytes,
            bytes_down: bytes,
            cum_bytes: bytes * (round + 1) * 2,
            compute_secs: 0.1,
            comm_secs: 0.2,
            cum_secs: 0.3 * (round + 1) as f64,
        }
    }

    #[test]
    fn aggregates() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.5), 0.5, 100));
        log.push(rec(1, None, 0.5, 100));
        log.push(rec(2, Some(0.7), 0.7, 100));
        assert_eq!(log.best_accuracy(), 0.7);
        assert_eq!(log.total_bytes(), 600);
        assert!((log.mean_round_secs() - 0.3).abs() < 1e-9);
        assert!((log.mean_frozen_ratio() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.5), 0.5, 10));
        let csv = log.to_csv();
        assert!(csv.starts_with("round,loss"));
        assert_eq!(csv.lines().count(), 2);
        // Skipped evaluations serialize as an empty field.
        let mut log2 = ExperimentLog::new("t2");
        log2.push(rec(0, None, 0.0, 10));
        assert!(log2.to_csv().lines().nth(1).unwrap().contains(",,"));
    }

    #[test]
    fn json_roundtrip() {
        let mut log = ExperimentLog::new("t");
        log.push(rec(0, Some(0.1), 0.1, 5));
        let back = ExperimentLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn json_never_emits_nan_or_inf_tokens() {
        // A crashed run can leave NaN losses and infinite timings behind;
        // the serialized log must still be valid JSON (NaN/Infinity are not
        // JSON tokens) and must parse back with those fields nulled to 0.
        let mut log = ExperimentLog::new("diverged");
        let mut r = rec(0, Some(f32::NAN), f32::INFINITY, 7);
        r.loss = f32::NAN;
        r.compute_secs = f64::INFINITY;
        r.comm_secs = f64::NEG_INFINITY;
        log.push(r);
        let text = log.to_json();
        for token in ["NaN", "nan", "Infinity", "inf"] {
            assert!(!text.contains(token), "illegal token {token:?} in {text}");
        }
        let back = ExperimentLog::from_json(&text).unwrap();
        assert_eq!(back.records[0].loss, 0.0);
        assert_eq!(back.records[0].accuracy, None);
        assert_eq!(back.records[0].best_accuracy, 0.0);
        assert_eq!(back.records[0].compute_secs, 0.0);
        assert_eq!(back.records[0].comm_secs, 0.0);
        // Finite fields survive untouched.
        assert_eq!(back.records[0].bytes_up, 7);
    }

    #[test]
    fn empty_log_defaults() {
        let log = ExperimentLog::new("e");
        assert_eq!(log.best_accuracy(), 0.0);
        assert_eq!(log.total_bytes(), 0);
        assert_eq!(log.mean_round_secs(), 0.0);
    }
}
