//! A federated client: local trainer + private shard + straggler behaviour.

use apf_data::Dataset;
use apf_nn::Trainer;
use apf_tensor::Rng;
use apf_tensor::{derive_seed, seeded_rng};

/// One edge client in the simulation.
///
/// Owns a [`Trainer`] (model + optimizer + schedule), a private data shard,
/// and a workload fraction modelling stragglers (§7.7: clients that only
/// process 25% / 50% of the expected work each round).
pub struct Client {
    trainer: Trainer,
    data: Dataset,
    batch_size: usize,
    rng: Rng,
    workload: f32,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("samples", &self.data.len())
            .field("workload", &self.workload)
            .finish()
    }
}

impl Client {
    /// Creates a client.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero or `data` is empty.
    pub fn new(trainer: Trainer, data: Dataset, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(!data.is_empty(), "client has no data");
        Client {
            trainer,
            data,
            batch_size,
            rng: seeded_rng(derive_seed(seed, 0xC11E)),
            workload: 1.0,
        }
    }

    /// Sets the straggler workload fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn set_workload(&mut self, fraction: f32) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "workload must be in (0, 1]"
        );
        self.workload = fraction;
    }

    /// The straggler workload fraction.
    pub fn workload(&self) -> f32 {
        self.workload
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutable access to the wrapped trainer.
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// The client's data shard.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Swaps in a new data shard, returning the old one (so its backing
    /// buffers can be recycled). Used by the population runner when a
    /// materialized shell is re-bound to a different registered client.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn replace_data(&mut self, data: Dataset) -> Dataset {
        assert!(!data.is_empty(), "client has no data");
        std::mem::replace(&mut self.data, data)
    }

    /// The batch-shuffle RNG state (part of a client's dormant snapshot).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the batch-shuffle RNG captured by [`Client::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = Rng::from_state(state);
    }

    /// Runs one round of local training: `ceil(workload * local_iters)`
    /// mini-batch steps, invoking `post_iteration` on the flat parameter
    /// vector after every step (the APF rollback hook, Alg. 1 line 2).
    ///
    /// Returns the mean batch loss.
    ///
    /// # Panics
    /// Panics if `local_iters` is zero.
    pub fn local_round(
        &mut self,
        local_iters: usize,
        post_iteration: &(dyn Fn(&mut [f32]) + Sync),
    ) -> f32 {
        assert!(local_iters > 0, "local_iters must be positive");
        let iters = ((self.workload * local_iters as f32).ceil() as usize).max(1);
        let mut total = 0.0f32;
        let mut done = 0usize;
        while done < iters {
            // One shuffled pass; re-shuffle if the round needs more batches.
            let batches: Vec<_> = self.data.batches(self.batch_size, &mut self.rng).collect();
            for (x, y) in batches {
                if done >= iters {
                    break;
                }
                total += self.trainer.train_batch(&x, &y);
                let mut flat = self.trainer.model_mut().flat_params();
                post_iteration(&mut flat);
                self.trainer.model_mut().load_flat(&flat);
                done += 1;
            }
        }
        total / iters as f32
    }

    /// The client's current flat parameter vector.
    pub fn flat_params(&mut self) -> Vec<f32> {
        self.trainer.model_mut().flat_params()
    }

    /// Overwrites the client's parameters from a flat vector.
    pub fn load_flat(&mut self, flat: &[f32]) {
        self.trainer.model_mut().load_flat(flat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use apf_nn::{models, LrSchedule, Sgd};

    fn client(seed: u64) -> Client {
        // MLP expects [N, features]: reshape the image dataset.
        let ds = apf_data::synth_images_split(40, 1, seed);
        let flat = ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]);
        let trainer = Trainer::new(
            models::mlp("m", &[3 * 16 * 16, 16, 10], seed),
            Box::new(Sgd::new(0.05)),
            LrSchedule::Constant(0.05),
        );
        Client::new(
            trainer,
            Dataset::new(flat, ds.labels().to_vec(), 10),
            8,
            seed,
        )
    }

    #[test]
    fn local_round_reduces_loss() {
        let mut c = client(0);
        let noop = |_: &mut [f32]| {};
        let first = c.local_round(5, &noop);
        for _ in 0..10 {
            c.local_round(5, &noop);
        }
        let last = c.local_round(5, &noop);
        assert!(last < first, "loss {last} should drop below {first}");
    }

    #[test]
    fn straggler_does_fewer_iterations() {
        let mut c = client(1);
        c.set_workload(0.25);
        let steps_before = c.trainer().step_count();
        let noop = |_: &mut [f32]| {};
        c.local_round(8, &noop);
        assert_eq!(c.trainer().step_count() - steps_before, 2);
    }

    #[test]
    fn post_iteration_hook_sees_every_step() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut c = client(2);
        let count = AtomicUsize::new(0);
        let hook = |_: &mut [f32]| {
            count.fetch_add(1, Ordering::Relaxed);
        };
        c.local_round(7, &hook);
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn hook_can_modify_params() {
        let mut c = client(3);
        let zero_hook = |p: &mut [f32]| p.iter_mut().for_each(|v| *v = 0.0);
        c.local_round(1, &zero_hook);
        assert!(c.flat_params().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "workload")]
    fn invalid_workload_panics() {
        client(4).set_workload(0.0);
    }
}
