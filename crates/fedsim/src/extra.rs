//! Additional baselines beyond the paper's main comparison set, implemented
//! from its related-work discussion:
//!
//! * [`TopK`] — magnitude top-k update sparsification with residual
//!   accumulation (Dryden et al., cited as [20] in §2.2);
//! * [`LayerFreeze`] — FreezeOut/AutoFreeze-style *whole-layer* freezing on
//!   a schedule (§8), the coarse-granularity approach whose deficiency
//!   motivates APF's per-scalar masks (§3.2.2);
//! * [`DpGaussian`] — a differential-privacy wrapper adding Gaussian noise
//!   to client uploads (§9 discusses DP's interaction with the effective-
//!   perturbation metric).

use apf_tensor::{derive_seed, sample_normal, seeded_rng};

use crate::strategy::{RoundComm, SyncStrategy};

/// Magnitude top-k sparsification with residual feedback: each round a
/// client uploads only its `k_fraction` largest-magnitude update components
/// (8 bytes each: index + value); the rest accumulate locally and are
/// retried next round.
#[derive(Debug)]
pub struct TopK {
    k_fraction: f32,
    last_global: Vec<f32>,
}

impl TopK {
    /// Creates the sparsifier keeping the given fraction of components
    /// (e.g. 0.1 keeps the top 10%).
    ///
    /// # Panics
    /// Panics unless `0 < k_fraction <= 1`.
    pub fn new(k_fraction: f32) -> Self {
        assert!(
            k_fraction > 0.0 && k_fraction <= 1.0,
            "k fraction must be in (0, 1]"
        );
        TopK {
            k_fraction,
            last_global: Vec::new(),
        }
    }
}

impl SyncStrategy for TopK {
    fn name(&self) -> String {
        format!("topk-{}", self.k_fraction)
    }

    fn init(&mut self, init_params: &[f32], _num_clients: usize) {
        self.last_global = init_params.to_vec();
    }

    fn sync_round(
        &mut self,
        _round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        let n = self.last_global.len();
        let k = ((n as f32 * self.k_fraction).ceil() as usize).clamp(1, n);
        let total_w: f32 = weights.iter().sum::<f32>().max(f32::EPSILON);
        let mut delta = vec![0.0f32; n];
        let mut touched = vec![false; n];
        let mut sent: Vec<Vec<bool>> = Vec::with_capacity(locals.len());
        let mut comm = RoundComm::default();
        for (l, &w) in locals.iter().zip(weights) {
            // Select the top-k |update| components of this client.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ua = (l[a] - self.last_global[a]).abs();
                let ub = (l[b] - self.last_global[b]).abs();
                ub.partial_cmp(&ua).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut s = vec![false; n];
            for &j in order.iter().take(k) {
                s[j] = true;
                if w > 0.0 {
                    delta[j] += w * (l[j] - self.last_global[j]);
                    touched[j] = true;
                }
            }
            let bytes = k as u64 * 8;
            comm.bytes_up += bytes;
            comm.max_client_up = comm.max_client_up.max(bytes);
            sent.push(s);
        }
        for j in 0..n {
            if touched[j] {
                self.last_global[j] += delta[j] / total_w;
            }
        }
        let touched_count = touched.iter().filter(|&&t| t).count() as u64;
        for (l, s) in locals.iter_mut().zip(&sent) {
            for j in 0..n {
                if touched[j] {
                    // Unsent residual (vs the OLD global) survives locally.
                    let residual = if s[j] { 0.0 } else { l[j] - global[j] };
                    l[j] = self.last_global[j] + residual;
                }
            }
        }
        global.copy_from_slice(&self.last_global);
        let down = touched_count * 8;
        comm.bytes_down = down * locals.len() as u64;
        comm.max_client_down = down;
        comm.frozen_ratio = 1.0 - self.k_fraction;
        comm
    }
}

/// FreezeOut/AutoFreeze-style whole-layer freezing: layers are frozen
/// bottom-up on a fixed schedule, with no unfreezing. The paper's §3.2.2
/// argues this granularity is too coarse because scalars within one tensor
/// stabilize at very different times (Fig. 3) — this baseline lets the
/// harness demonstrate that.
pub struct LayerFreeze {
    /// `(offset, len)` of each layer in the flat vector, in freeze order
    /// (front layers first, as in FreezeOut).
    layers: Vec<(usize, usize)>,
    /// Freeze the next layer every this many rounds.
    freeze_every: u64,
    pinned: Vec<f32>,
    frozen_layers: usize,
}

impl std::fmt::Debug for LayerFreeze {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerFreeze")
            .field("layers", &self.layers.len())
            .field("frozen_layers", &self.frozen_layers)
            .finish()
    }
}

impl LayerFreeze {
    /// Creates the baseline from the model's flat layout (`(offset, len)`
    /// per tensor, e.g. from `apf_nn::FlatSpec::params`) and a freezing
    /// cadence in rounds.
    ///
    /// # Panics
    /// Panics if `layers` is empty or `freeze_every` is zero.
    pub fn new(layers: Vec<(usize, usize)>, freeze_every: u64) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        assert!(freeze_every > 0, "freeze cadence must be positive");
        LayerFreeze {
            layers,
            freeze_every,
            pinned: Vec::new(),
            frozen_layers: 0,
        }
    }

    /// Number of currently frozen layers.
    pub fn frozen_layers(&self) -> usize {
        self.frozen_layers
    }

    fn frozen_scalars(&self) -> usize {
        self.layers[..self.frozen_layers]
            .iter()
            .map(|&(_, len)| len)
            .sum()
    }

    fn is_frozen(&self, j: usize) -> bool {
        self.layers[..self.frozen_layers]
            .iter()
            .any(|&(off, len)| (off..off + len).contains(&j))
    }
}

impl SyncStrategy for LayerFreeze {
    fn name(&self) -> String {
        "layer-freeze".to_owned()
    }

    fn init(&mut self, init_params: &[f32], _num_clients: usize) {
        self.pinned = init_params.to_vec();
        self.frozen_layers = 0;
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        let n = self.pinned.len();
        // Advance the schedule: freeze one more layer every `freeze_every`
        // rounds (never freezing the final layer, as FreezeOut keeps the
        // head training).
        let due = (round / self.freeze_every) as usize;
        self.frozen_layers = due.min(self.layers.len().saturating_sub(1));
        // Pin frozen layers on every client, aggregate the rest.
        let total_w: f32 = weights.iter().sum::<f32>().max(f32::EPSILON);
        let mut mean = vec![0.0f32; n];
        for (l, &w) in locals.iter().zip(weights) {
            if w == 0.0 {
                continue;
            }
            for j in 0..n {
                mean[j] += w * l[j];
            }
        }
        for m in &mut mean {
            *m /= total_w;
        }
        for (j, m) in mean.iter_mut().enumerate() {
            if self.is_frozen(j) {
                *m = self.pinned[j];
            }
        }
        global.copy_from_slice(&mean);
        for l in locals.iter_mut() {
            l.copy_from_slice(&mean);
        }
        self.pinned.copy_from_slice(&mean);
        let frozen = self.frozen_scalars();
        let wire = (n - frozen) as u64 * 4;
        RoundComm {
            bytes_up: wire * locals.len() as u64,
            bytes_down: wire * locals.len() as u64,
            max_client_up: wire,
            max_client_down: wire,
            frozen_ratio: frozen as f32 / n.max(1) as f32,
        }
    }

    fn post_local_iteration(&self, _round: u64, _client: usize, params: &mut [f32]) {
        for &(off, len) in &self.layers[..self.frozen_layers] {
            params[off..off + len].copy_from_slice(&self.pinned[off..off + len]);
        }
    }
}

/// Differential-privacy wrapper: adds zero-mean Gaussian noise of the given
/// standard deviation to every scalar each client uploads, then delegates to
/// the inner strategy. §9 of the paper notes such noise *reduces* measured
/// effective perturbation (it oscillates around zero), so APF should use a
/// tighter stability threshold under DP — which this wrapper lets the
/// harness demonstrate.
pub struct DpGaussian<S> {
    inner: S,
    noise_std: f32,
    seed: u64,
}

impl<S: std::fmt::Debug> std::fmt::Debug for DpGaussian<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpGaussian")
            .field("inner", &self.inner)
            .field("noise_std", &self.noise_std)
            .finish()
    }
}

impl<S: SyncStrategy> DpGaussian<S> {
    /// Wraps `inner`, perturbing uploads with `N(0, noise_std^2)` noise.
    ///
    /// # Panics
    /// Panics if `noise_std` is negative.
    pub fn new(inner: S, noise_std: f32, seed: u64) -> Self {
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        DpGaussian {
            inner,
            noise_std,
            seed,
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SyncStrategy> SyncStrategy for DpGaussian<S> {
    fn name(&self) -> String {
        format!("{}+dp", self.inner.name())
    }

    fn init(&mut self, init_params: &[f32], num_clients: usize) {
        self.inner.init(init_params, num_clients);
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        for (i, l) in locals.iter_mut().enumerate() {
            let mut rng = seeded_rng(derive_seed(self.seed, round * 1000 + i as u64));
            for v in l.iter_mut() {
                *v += self.noise_std * sample_normal(&mut rng);
            }
        }
        self.inner.sync_round(round, locals, weights, global)
    }

    fn post_local_iteration(&self, round: u64, client: usize, params: &mut [f32]) {
        self.inner.post_local_iteration(round, client, params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::FullSync;

    #[test]
    fn topk_uploads_exactly_k() {
        let mut s = TopK::new(0.25);
        let init = vec![0.0f32; 8];
        s.init(&init, 2);
        let mut g = init.clone();
        let mut locals = vec![
            vec![5.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 4.0],
            vec![0.1, 6.0, 0.1, 0.1, 0.1, 0.1, 3.0, 0.1],
        ];
        let comm = s.sync_round(0, &mut locals, &[1.0, 1.0], &mut g);
        // 25% of 8 = 2 components per client, 8 bytes each.
        assert_eq!(comm.bytes_up, 2 * 2 * 8);
        // The large components moved the global; tiny ones did not.
        assert!(g[0] > 1.0);
        assert!(g[1] > 1.0);
        assert!(g[2] < 0.2);
    }

    #[test]
    fn topk_residuals_accumulate() {
        let mut s = TopK::new(0.5); // 1 of 2 scalars
        let init = vec![0.0f32; 2];
        s.init(&init, 1);
        let mut g = init.clone();
        // Scalar 0 always larger -> scalar 1's residual builds locally.
        let mut locals = vec![vec![1.0f32, 0.4]];
        s.sync_round(0, &mut locals, &[1.0], &mut g);
        assert_eq!(g[0], 1.0);
        assert_eq!(g[1], 0.0);
        assert!(
            (locals[0][1] - 0.4).abs() < 1e-6,
            "residual lost: {}",
            locals[0][1]
        );
        // Next round scalar 1 grows past scalar 0's fresh update.
        locals[0][1] += 0.8; // local now 1.2 vs global 0
        let _ = s.sync_round(1, &mut locals, &[1.0], &mut g);
        assert!(g[1] > 1.0, "accumulated residual finally shipped: {}", g[1]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn topk_rejects_zero_fraction() {
        let _ = TopK::new(0.0);
    }

    #[test]
    fn layer_freeze_advances_schedule_and_pins() {
        let layers = vec![(0usize, 2usize), (2, 2), (4, 2)];
        let mut s = LayerFreeze::new(layers, 2);
        let init = vec![1.0f32; 6];
        s.init(&init, 1);
        let mut g = init.clone();
        let mut locals = vec![vec![2.0f32; 6]];
        // Round 0-1: nothing frozen.
        let c0 = s.sync_round(0, &mut locals, &[1.0], &mut g);
        assert_eq!(c0.frozen_ratio, 0.0);
        assert_eq!(g, vec![2.0; 6]);
        // Round 2: first layer frozen; its scalars pinned to last value.
        locals[0] = vec![9.0; 6];
        let c2 = s.sync_round(2, &mut locals, &[1.0], &mut g);
        assert!((c2.frozen_ratio - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(&g[0..2], &[2.0, 2.0], "frozen layer must stay pinned");
        assert_eq!(&g[2..6], &[9.0, 9.0, 9.0, 9.0]);
        // Round 4: two layers frozen; the last layer never freezes.
        let c4 = s.sync_round(4, &mut locals, &[1.0], &mut g);
        assert!((c4.frozen_ratio - 2.0 / 3.0).abs() < 1e-6);
        let c99 = s.sync_round(99, &mut locals, &[1.0], &mut g);
        assert!(
            (c99.frozen_ratio - 2.0 / 3.0).abs() < 1e-6,
            "head layer froze"
        );
    }

    #[test]
    fn layer_freeze_hook_pins_during_local_training() {
        let mut s = LayerFreeze::new(vec![(0, 2), (2, 2)], 1);
        let init = vec![1.0f32; 4];
        s.init(&init, 1);
        let mut g = init.clone();
        let mut locals = vec![vec![1.0f32; 4]];
        s.sync_round(1, &mut locals, &[1.0], &mut g); // freezes layer 0
        let mut p = vec![7.0f32; 4];
        s.post_local_iteration(2, 0, &mut p);
        assert_eq!(&p[0..2], &[1.0, 1.0]);
        assert_eq!(&p[2..4], &[7.0, 7.0]);
    }

    #[test]
    fn dp_wrapper_perturbs_uploads_but_preserves_protocol() {
        let mut dp = DpGaussian::new(FullSync::new(), 0.1, 42);
        let init = vec![0.0f32; 64];
        dp.init(&init, 2);
        let mut g = init.clone();
        let mut locals = vec![vec![1.0f32; 64], vec![1.0f32; 64]];
        let comm = dp.sync_round(0, &mut locals, &[1.0, 1.0], &mut g);
        // Bytes identical to the inner strategy.
        assert_eq!(comm.bytes_up, 2 * 64 * 4);
        // Global is 1.0 + averaged noise: close to 1, not exactly 1.
        let mean = g.iter().sum::<f32>() / 64.0;
        assert!((mean - 1.0).abs() < 0.1);
        assert!(
            g.iter().any(|&v| (v - 1.0).abs() > 1e-4),
            "no noise was added"
        );
        assert_eq!(dp.name(), "fedavg+dp");
    }

    #[test]
    fn dp_noise_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut dp = DpGaussian::new(FullSync::new(), 0.1, seed);
            let init = vec![0.0f32; 8];
            dp.init(&init, 1);
            let mut g = init.clone();
            let mut locals = vec![vec![1.0f32; 8]];
            dp.sync_round(0, &mut locals, &[1.0], &mut g);
            g
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
