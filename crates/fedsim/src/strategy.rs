//! Synchronization strategies: FedAvg, the §4.1 strawmen, the APF family,
//! and the §7.4 sparsification baselines (Gaia, CMFL).

use apf::{
    Aimd, ApfConfig, ApfError, ApfManager, EmaPerturbation, FixedPeriod, FreezeController,
    FreezeGranularity, FreezeMask,
};
use apf_quant::f16_roundtrip_in_place;

/// Communication accounting for one synchronization round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundComm {
    /// Bytes uploaded this round, summed over clients.
    pub bytes_up: u64,
    /// Bytes downloaded this round, summed over clients.
    pub bytes_down: u64,
    /// Largest single-client upload (gates the synchronous barrier).
    pub max_client_up: u64,
    /// Largest single-client download.
    pub max_client_down: u64,
    /// Fraction of scalars excluded from synchronization (frozen under APF,
    /// excluded under partial sync, unreported under Gaia/CMFL), averaged
    /// over clients.
    pub frozen_ratio: f32,
}

/// A federated synchronization strategy.
///
/// The simulator hands the strategy every client's flat model at the end of
/// each round; the strategy must leave the locals and the `global` evaluation
/// model consistent with its semantics and report the bytes it moved.
pub trait SyncStrategy: Send + Sync {
    /// Label for logs, e.g. `"apf"`.
    fn name(&self) -> String;

    /// Called once before round 0 with the synchronized initial model.
    fn init(&mut self, _init_params: &[f32], _num_clients: usize) {}

    /// Registers the model's `(layer name, scalar count)` layout for
    /// per-layer telemetry. Called (when available) before
    /// [`SyncStrategy::init`]. Default: ignored.
    fn set_model_layout(&mut self, _layout: Vec<(String, usize)>) {}

    /// Performs the round's synchronization.
    ///
    /// `weights` are per-client aggregation weights (0 drops a client's
    /// upload, e.g. FedAvg discarding stragglers in §7.7).
    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm;

    /// Registers the model's per-filter segment lengths (conv filters /
    /// matrix rows over the flat vector) for strategies that support
    /// filter-granular freezing. Default: ignored.
    fn set_filter_layout(&mut self, _segments: Vec<usize>) {}

    /// Per-local-iteration hook (Alg. 1 line 2 rollback for APF). Default:
    /// no-op.
    fn post_local_iteration(&self, _round: u64, _client: usize, _params: &mut [f32]) {}

    /// Per-layer frozen fraction for `round`, as `(layer name, ratio)` in
    /// layout order — live-telemetry fodder for `/snapshot`. Default (for
    /// strategies with no freezing notion): empty.
    fn layer_frozen_ratios(&self, _round: u64) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Weighted elementwise mean of `vecs`; falls back to `None` when all
/// weights are zero.
fn weighted_mean(vecs: &[Vec<f32>], weights: &[f32]) -> Option<Vec<f32>> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 || vecs.is_empty() {
        return None;
    }
    let n = vecs[0].len();
    let mut out = vec![0.0f32; n];
    for (v, &w) in vecs.iter().zip(weights) {
        if w == 0.0 {
            continue;
        }
        debug_assert_eq!(v.len(), n);
        for (o, &x) in out.iter_mut().zip(v) {
            *o += w * x;
        }
    }
    for o in &mut out {
        *o /= total;
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// FedAvg
// ---------------------------------------------------------------------------

/// Vanilla FedAvg: every round, every client ships the full model both ways.
#[derive(Debug, Default)]
pub struct FullSync {
    bytes_per_scalar: u64,
}

impl FullSync {
    /// Creates the strategy (4 bytes per scalar).
    pub fn new() -> Self {
        FullSync {
            bytes_per_scalar: 4,
        }
    }
}

impl SyncStrategy for FullSync {
    fn name(&self) -> String {
        "fedavg".to_owned()
    }

    fn sync_round(
        &mut self,
        _round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        if let Some(mean) = weighted_mean(locals, weights) {
            *global = mean;
        }
        let n = global.len() as u64;
        let uploaders = weights.iter().filter(|&&w| w > 0.0).count() as u64;
        for l in locals.iter_mut() {
            l.copy_from_slice(global);
        }
        RoundComm {
            bytes_up: uploaders * n * self.bytes_per_scalar,
            bytes_down: locals.len() as u64 * n * self.bytes_per_scalar,
            max_client_up: n * self.bytes_per_scalar,
            max_client_down: n * self.bytes_per_scalar,
            frozen_ratio: 0.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Strawman 1: partial synchronization (§4.1)
// ---------------------------------------------------------------------------

/// Strawman 1 of §4.1: scalars judged stable are *excluded from
/// synchronization but keep training locally* — which lets them diverge on
/// non-IID clients (Fig. 4) and costs accuracy (Fig. 5).
///
/// The reported `global` model is the average of the local models (what one
/// would deploy); only the non-excluded scalars actually move on the wire.
#[derive(Debug)]
pub struct PartialSync {
    threshold: f32,
    ema_alpha: f32,
    check_every: u32,
    ema: EmaPerturbation,
    check_ref: Vec<f32>,
    excluded: Vec<bool>,
    bytes_per_scalar: u64,
}

impl PartialSync {
    /// The per-scalar exclusion mask (true = no longer synchronized).
    pub fn excluded(&self) -> &[bool] {
        &self.excluded
    }

    /// Creates the strategy with the given stability threshold, EMA
    /// smoothing factor, and check cadence (in rounds).
    pub fn new(threshold: f32, ema_alpha: f32, check_every_rounds: u32) -> Self {
        assert!(check_every_rounds > 0, "check cadence must be positive");
        PartialSync {
            threshold,
            ema_alpha,
            check_every: check_every_rounds,
            ema: EmaPerturbation::new(0, ema_alpha),
            check_ref: Vec::new(),
            excluded: Vec::new(),
            bytes_per_scalar: 4,
        }
    }
}

impl SyncStrategy for PartialSync {
    fn name(&self) -> String {
        "partial-sync".to_owned()
    }

    fn init(&mut self, init_params: &[f32], _num_clients: usize) {
        self.ema = EmaPerturbation::new(init_params.len(), self.ema_alpha);
        self.check_ref = init_params.to_vec();
        self.excluded = vec![false; init_params.len()];
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        let n = global.len();
        // The deployable model: mean over everything (evaluation only).
        if let Some(mean) = weighted_mean(locals, weights) {
            *global = mean;
        }
        // Wire traffic and write-back: only the non-excluded scalars
        // (excluded = frozen in mask terms, so the copy kernel skips them).
        let mask = FreezeMask::from_bools(&self.excluded);
        for l in locals.iter_mut() {
            apf_tensor::mask_copy(l, global, mask.words());
        }
        // Stability check on the synchronized portion.
        if (round + 1).is_multiple_of(u64::from(self.check_every)) {
            let included: Vec<bool> = self.excluded.iter().map(|&e| !e).collect();
            let delta: Vec<f32> = (0..n)
                .map(|j| {
                    if self.excluded[j] {
                        0.0
                    } else {
                        global[j] - self.check_ref[j]
                    }
                })
                .collect();
            self.ema.update_masked(&delta, &included);
            for j in 0..n {
                if !self.excluded[j] && self.ema.value(j) < self.threshold {
                    self.excluded[j] = true; // sticky: never synchronized again
                }
            }
            self.check_ref.copy_from_slice(global);
        }
        let synced = self.excluded.iter().filter(|&&e| !e).count();
        // Same masked-frame encoding as APF: exclusion bitmap + packed values.
        let per_client = apf::masked_transfer_bytes(n, synced, self.bytes_per_scalar);
        RoundComm {
            bytes_up: per_client * locals.len() as u64,
            bytes_down: per_client * locals.len() as u64,
            max_client_up: per_client,
            max_client_down: per_client,
            frozen_ratio: 1.0 - synced as f32 / n.max(1) as f32,
        }
    }
}

// ---------------------------------------------------------------------------
// APF family (plus strawman 2 via permanent freezing)
// ---------------------------------------------------------------------------

/// Builds freezing-period controllers for [`ApfStrategy`] (one per client,
/// all identical).
pub type ControllerFactory = Box<dyn Fn() -> Box<dyn FreezeController> + Send + Sync>;

/// The APF strategy (§4–6): per-client [`ApfManager`]s with identical
/// client-side masks; optionally stacked with fp16 quantization (§7.7).
///
/// With a [`FixedPeriod`] controller of `u32::MAX` rounds this degenerates
/// into strawman 2 of §4.1 (permanent freezing) — see
/// [`ApfStrategy::permanent_freeze`].
pub struct ApfStrategy {
    cfg: ApfConfig,
    controller_factory: ControllerFactory,
    managers: Vec<ApfManager>,
    quantize_f16: bool,
    label: String,
    layout: Vec<(String, usize)>,
    filter_segments: Vec<usize>,
}

impl std::fmt::Debug for ApfStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApfStrategy")
            .field("label", &self.label)
            .field("clients", &self.managers.len())
            .finish()
    }
}

impl ApfStrategy {
    /// Creates standard APF with the default AIMD controller.
    ///
    /// # Errors
    /// Returns [`ApfError::InvalidConfig`] for an invalid `cfg`.
    pub fn new(cfg: ApfConfig) -> Result<Self, ApfError> {
        ApfStrategy::with_controller(cfg, Box::new(|| Box::new(Aimd::default())), "apf")
    }

    /// Creates APF with a custom controller (the §7.5 ablations).
    ///
    /// # Errors
    /// Returns [`ApfError::InvalidConfig`] for an invalid `cfg`.
    pub fn with_controller(
        cfg: ApfConfig,
        factory: ControllerFactory,
        label: &str,
    ) -> Result<Self, ApfError> {
        cfg.validate().map_err(ApfError::InvalidConfig)?;
        Ok(ApfStrategy {
            cfg,
            controller_factory: factory,
            managers: Vec::new(),
            quantize_f16: false,
            label: label.to_owned(),
            layout: Vec::new(),
            filter_segments: Vec::new(),
        })
    }

    /// Strawman 2 of §4.1: freeze stabilized scalars forever.
    ///
    /// # Errors
    /// Returns [`ApfError::InvalidConfig`] for an invalid `cfg`.
    pub fn permanent_freeze(cfg: ApfConfig) -> Result<Self, ApfError> {
        ApfStrategy::with_controller(
            cfg,
            Box::new(|| Box::new(FixedPeriod { len: u32::MAX })),
            "permanent-freeze",
        )
    }

    /// Stacks fp16 quantization on the wire (§7.7): uploads and downloads are
    /// converted to binary16, halving the per-scalar wire size.
    pub fn with_f16(mut self) -> Self {
        self.quantize_f16 = true;
        self.cfg.bytes_per_scalar = 2;
        self.label = format!("{}+q", self.label);
        self
    }

    /// Switches to filter-granular freezing (Becking et al.): a whole filter
    /// segment freezes once `threshold` of its scalars are scalar-frozen.
    /// Takes effect when the runner registers a filter layout (see
    /// [`SyncStrategy::set_filter_layout`]); without one it degrades to
    /// scalar freezing.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `(0, 1]`.
    pub fn with_filter_granularity(mut self, threshold: f32) -> Self {
        self.cfg.granularity = FreezeGranularity::Filter { threshold };
        self.cfg
            .validate()
            .expect("filter threshold must lie in (0, 1]");
        self.label = format!("{}+filt", self.label);
        self
    }

    /// The per-client managers (for inspection in tests/experiments).
    pub fn managers(&self) -> &[ApfManager] {
        &self.managers
    }
}

impl SyncStrategy for ApfStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn init(&mut self, init_params: &[f32], num_clients: usize) {
        self.managers = (0..num_clients)
            .map(|_| {
                ApfManager::new(init_params, self.cfg, (self.controller_factory)())
                    .expect("config validated at strategy construction")
            })
            .collect();
        // Masks are identical on every client, so layer telemetry from
        // manager 0 alone describes the whole fleet without duplication.
        if let Some(m) = self.managers.first_mut() {
            m.set_layout(self.layout.clone());
        }
        // Filter coarsening changes the masks themselves, so every manager
        // must carry the same segment layout.
        if !self.filter_segments.is_empty() {
            for m in &mut self.managers {
                m.set_filter_layout(self.filter_segments.clone())
                    .expect("filter layout must cover the model");
            }
        }
    }

    fn set_model_layout(&mut self, layout: Vec<(String, usize)>) {
        self.layout = layout.clone();
        if let Some(m) = self.managers.first_mut() {
            m.set_layout(layout);
        }
    }

    fn set_filter_layout(&mut self, segments: Vec<usize>) {
        self.filter_segments = segments.clone();
        for m in &mut self.managers {
            m.set_filter_layout(segments.clone())
                .expect("filter layout must cover the model");
        }
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        assert_eq!(
            locals.len(),
            self.managers.len(),
            "strategy not initialized"
        );
        let n = global.len();
        // Masks are identical on every client (§6.2): compute once and drive
        // everything below from its unfrozen runs — no compact gather per
        // client, no per-scalar branches.
        let mask = self.managers[0].frozen_mask_packed(round);
        let words = mask.words();
        // Rollback every client; the fp16 wire hop is applied in place to
        // the unfrozen runs (aggregation overwrites them below, and frozen
        // slots never touch the wire).
        for (m, l) in self.managers.iter().zip(locals.iter_mut()) {
            m.rollback(l, round);
            if self.quantize_f16 {
                mask.for_each_unfrozen_run_in(0, n, |s, e| f16_roundtrip_in_place(&mut l[s..e]));
            }
        }
        // Weighted mean of the unfrozen runs, accumulated full-length:
        // bitwise equal to averaging compact uploads, scalar for scalar.
        let total: f32 = weights.iter().sum();
        let mut agg = vec![0.0f32; n];
        if total > 0.0 && !locals.is_empty() {
            for (l, &w) in locals.iter().zip(weights) {
                if w == 0.0 {
                    continue;
                }
                apf_tensor::masked_axpy(&mut agg, l, w, words);
            }
            apf_tensor::masked_div(&mut agg, total, words);
        } else {
            // All uploads dropped: fall back to client 0's (already
            // quantized) unfrozen values, as the compact path did.
            apf_tensor::mask_copy(&mut agg, &locals[0], words);
        }
        if self.quantize_f16 {
            mask.for_each_unfrozen_run_in(0, n, |s, e| f16_roundtrip_in_place(&mut agg[s..e]));
        }
        // Write back and run the stability machinery.
        let mut comm = RoundComm::default();
        for (i, (m, l)) in self.managers.iter_mut().zip(locals.iter_mut()).enumerate() {
            m.apply_aggregate_dense(l, &agg, round);
            let rep = m.finish_round(l, round);
            comm.bytes_up += rep.bytes_up;
            comm.bytes_down += rep.bytes_down;
            comm.max_client_up = comm.max_client_up.max(rep.bytes_up);
            comm.max_client_down = comm.max_client_down.max(rep.bytes_down);
            if i == 0 {
                comm.frozen_ratio = rep.frozen_ratio();
            }
        }
        global.copy_from_slice(&locals[0]);
        comm
    }

    fn post_local_iteration(&self, round: u64, client: usize, params: &mut [f32]) {
        self.managers[client].rollback(params, round);
    }

    fn layer_frozen_ratios(&self, round: u64) -> Vec<(String, f64)> {
        // Masks are identical across clients: manager 0 describes the fleet.
        let Some(m) = self.managers.first() else {
            return Vec::new();
        };
        if self.layout.is_empty() {
            return Vec::new();
        }
        let mask = m.frozen_mask_packed(round);
        let mut out = Vec::with_capacity(self.layout.len());
        let mut offset = 0usize;
        for (name, len) in &self.layout {
            let end = (offset + len).min(mask.len());
            let frozen = mask.frozen_count_in(offset, end);
            let ratio = if *len == 0 {
                0.0
            } else {
                frozen as f64 / *len as f64
            };
            out.push((name.clone(), ratio));
            offset = end;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Gaia (Hsieh et al., NSDI 2017)
// ---------------------------------------------------------------------------

/// Gaia-style significance sparsification: a client uploads only the scalar
/// updates whose *relative* magnitude exceeds a significance threshold; the
/// rest accumulate locally until they become significant. The threshold
/// decays as `threshold0 / sqrt(round + 1)`, following the Gaia paper's
/// practice of shrinking the threshold over time (there, with the learning
/// rate).
///
/// Wire format for a sparse component is `(index, value)` = 8 bytes.
/// Gaia compresses only the *push* path; every touched index is broadcast
/// back to all clients (§7.4 notes APF beats this by compressing both
/// directions).
#[derive(Debug)]
pub struct Gaia {
    threshold0: f32,
    last_global: Vec<f32>,
}

impl Gaia {
    /// Creates Gaia with the paper's default 1% significance threshold.
    pub fn new(threshold0: f32) -> Self {
        assert!(threshold0 > 0.0, "threshold must be positive");
        Gaia {
            threshold0,
            last_global: Vec::new(),
        }
    }

    fn threshold_at(&self, round: u64) -> f32 {
        self.threshold0 / ((round + 1) as f32).sqrt()
    }
}

impl SyncStrategy for Gaia {
    fn name(&self) -> String {
        "gaia".to_owned()
    }

    fn init(&mut self, init_params: &[f32], _num_clients: usize) {
        self.last_global = init_params.to_vec();
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        let n = self.last_global.len();
        let thresh = self.threshold_at(round);
        let total_w: f32 = weights.iter().sum::<f32>().max(f32::EPSILON);
        // Decide significance per client, accumulate the server-side delta.
        let mut delta = vec![0.0f32; n];
        let mut touched = vec![false; n];
        let mut sent: Vec<Vec<bool>> = Vec::with_capacity(locals.len());
        let mut comm = RoundComm::default();
        let mut excluded_total = 0.0f32;
        for (l, &w) in locals.iter().zip(weights) {
            let mut s = vec![false; n];
            let mut count = 0u64;
            for j in 0..n {
                let u = l[j] - self.last_global[j];
                let denom = self.last_global[j].abs().max(1e-3);
                if u.abs() / denom > thresh {
                    s[j] = true;
                    count += 1;
                    if w > 0.0 {
                        delta[j] += w * u;
                        touched[j] = true;
                    }
                }
            }
            excluded_total += 1.0 - count as f32 / n.max(1) as f32;
            let bytes = count * 8;
            comm.bytes_up += bytes;
            comm.max_client_up = comm.max_client_up.max(bytes);
            sent.push(s);
        }
        // Apply aggregated significant updates.
        let touched_count = touched.iter().filter(|&&t| t).count() as u64;
        for j in 0..n {
            if touched[j] {
                self.last_global[j] += delta[j] / total_w;
            }
        }
        // Broadcast: every client pulls the touched indices. A client that
        // did *not* send its own update for a touched index keeps that
        // residual (measured against the old global, which `global` still
        // holds here) on top of the fresh global value — Gaia's local
        // accumulation semantics.
        for (l, s) in locals.iter_mut().zip(&sent) {
            for j in 0..n {
                if touched[j] {
                    let residual = if s[j] { 0.0 } else { l[j] - global[j] };
                    l[j] = self.last_global[j] + residual;
                }
            }
        }
        global.copy_from_slice(&self.last_global);
        let down = touched_count * 8;
        comm.bytes_down = down * locals.len() as u64;
        comm.max_client_down = down;
        comm.frozen_ratio = excluded_total / locals.len().max(1) as f32;
        comm
    }
}

// ---------------------------------------------------------------------------
// CMFL (Wang et al., ICDCS 2019)
// ---------------------------------------------------------------------------

/// CMFL-style relevance filtering: a client uploads its (full) update only
/// when the fraction of components whose sign agrees with the previous
/// global update exceeds a relevance threshold; irrelevant updates are
/// withheld entirely. The threshold decays multiplicatively per round, as in
/// the CMFL paper.
#[derive(Debug)]
pub struct Cmfl {
    threshold0: f32,
    decay: f32,
    last_global: Vec<f32>,
    prev_update: Vec<f32>,
}

impl Cmfl {
    /// Creates CMFL with the paper's default relevance threshold (0.8) and a
    /// gentle per-round threshold decay.
    pub fn new(threshold0: f32, decay: f32) -> Self {
        assert!((0.0..=1.0).contains(&threshold0), "threshold in [0,1]");
        assert!((0.0..=1.0).contains(&decay), "decay in [0,1]");
        Cmfl {
            threshold0,
            decay,
            last_global: Vec::new(),
            prev_update: Vec::new(),
        }
    }

    fn threshold_at(&self, round: u64) -> f32 {
        self.threshold0 * self.decay.powi(round.min(1_000_000) as i32)
    }

    /// Fraction of components of `update` whose sign matches `reference`.
    fn relevance(update: &[f32], reference: &[f32]) -> f32 {
        if update.is_empty() {
            return 1.0;
        }
        let same = update
            .iter()
            .zip(reference)
            .filter(|(u, r)| {
                (u.is_sign_positive() && **r >= 0.0) || (u.is_sign_negative() && **r < 0.0)
            })
            .count();
        same as f32 / update.len() as f32
    }
}

impl SyncStrategy for Cmfl {
    fn name(&self) -> String {
        "cmfl".to_owned()
    }

    fn init(&mut self, init_params: &[f32], _num_clients: usize) {
        self.last_global = init_params.to_vec();
        self.prev_update = vec![0.0; init_params.len()];
    }

    fn sync_round(
        &mut self,
        round: u64,
        locals: &mut [Vec<f32>],
        weights: &[f32],
        global: &mut Vec<f32>,
    ) -> RoundComm {
        let n = self.last_global.len();
        let thresh = self.threshold_at(round);
        // Relevance check per client (first round: everyone reports, since
        // there is no previous global update to compare against).
        let mut reporters = Vec::new();
        for (i, l) in locals.iter().enumerate() {
            if weights[i] <= 0.0 {
                continue;
            }
            let update: Vec<f32> = l
                .iter()
                .zip(&self.last_global)
                .map(|(a, b)| a - b)
                .collect();
            let relevant = round == 0 || Cmfl::relevance(&update, &self.prev_update) >= thresh;
            if relevant {
                reporters.push(i);
            }
        }
        if reporters.is_empty() {
            // Degenerate round: fall back to everyone to avoid stalling.
            reporters = (0..locals.len()).filter(|&i| weights[i] > 0.0).collect();
        }
        let rep_locals: Vec<Vec<f32>> = reporters.iter().map(|&i| locals[i].clone()).collect();
        let rep_weights: Vec<f32> = reporters.iter().map(|&i| weights[i]).collect();
        let new_global =
            weighted_mean(&rep_locals, &rep_weights).unwrap_or_else(|| self.last_global.clone());
        self.prev_update = new_global
            .iter()
            .zip(&self.last_global)
            .map(|(a, b)| a - b)
            .collect();
        self.last_global = new_global.clone();
        *global = new_global;
        for l in locals.iter_mut() {
            l.copy_from_slice(global);
        }
        let model_bytes = n as u64 * 4;
        RoundComm {
            bytes_up: reporters.len() as u64 * model_bytes,
            bytes_down: locals.len() as u64 * model_bytes,
            max_client_up: model_bytes,
            max_client_down: model_bytes,
            frozen_ratio: 1.0 - reporters.len() as f32 / locals.len().max(1) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf::ApfVariant;

    fn locals(n_clients: usize, n: usize, f: impl Fn(usize, usize) -> f32) -> Vec<Vec<f32>> {
        (0..n_clients)
            .map(|i| (0..n).map(|j| f(i, j)).collect())
            .collect()
    }

    #[test]
    fn full_sync_averages_and_distributes() {
        let mut s = FullSync::new();
        let mut ls = locals(2, 3, |i, j| (i * 3 + j) as f32);
        let mut g = vec![0.0; 3];
        let w = vec![1.0, 1.0];
        let comm = s.sync_round(0, &mut ls, &w, &mut g);
        assert_eq!(g, vec![1.5, 2.5, 3.5]);
        assert_eq!(ls[0], g);
        assert_eq!(ls[1], g);
        assert_eq!(comm.bytes_up, 2 * 3 * 4);
        assert_eq!(comm.bytes_down, 2 * 3 * 4);
        assert_eq!(comm.frozen_ratio, 0.0);
    }

    #[test]
    fn full_sync_zero_weight_drops_upload() {
        let mut s = FullSync::new();
        let mut ls = locals(2, 2, |i, _| i as f32);
        let mut g = vec![9.0, 9.0];
        let comm = s.sync_round(0, &mut ls, &[1.0, 0.0], &mut g);
        // Only client 0 contributes.
        assert_eq!(g, vec![0.0, 0.0]);
        assert_eq!(comm.bytes_up, 2 * 4);
        assert_eq!(comm.bytes_down, 2 * 2 * 4);
    }

    #[test]
    fn full_sync_all_dropped_keeps_global() {
        let mut s = FullSync::new();
        let mut ls = locals(2, 2, |_, _| 5.0);
        let mut g = vec![1.0, 2.0];
        s.sync_round(0, &mut ls, &[0.0, 0.0], &mut g);
        assert_eq!(g, vec![1.0, 2.0]);
        assert_eq!(ls[0], g);
    }

    #[test]
    fn partial_sync_excludes_stable_scalars_permanently() {
        let mut s = PartialSync::new(0.05, 0.99, 1);
        let init = vec![0.0f32; 2];
        s.init(&init, 2);
        let mut g = init.clone();
        // Scalar 0 oscillates (stable); scalar 1 drifts.
        let mut ls = locals(2, 2, |_, _| 0.0);
        let mut excluded_seen = false;
        for r in 0..60u64 {
            for l in ls.iter_mut() {
                l[0] += if r % 2 == 0 { 0.1 } else { -0.1 };
                l[1] += 0.1;
            }
            let comm = s.sync_round(r, &mut ls, &[1.0, 1.0], &mut g);
            if comm.frozen_ratio > 0.0 {
                excluded_seen = true;
                // Excluded scalars are no longer written back: the two
                // clients' scalar-0 values may now differ.
                assert!(comm.frozen_ratio <= 0.5 + 1e-6);
            }
        }
        assert!(excluded_seen, "oscillating scalar never became excluded");
        // Drifting scalar must still be synchronized.
        assert!((ls[0][1] - ls[1][1]).abs() < 1e-6);
    }

    #[test]
    fn apf_strategy_matches_manager_semantics() {
        let cfg = ApfConfig {
            check_every_rounds: 1,
            threshold_decay: None,
            ..ApfConfig::default()
        };
        let mut s = ApfStrategy::new(cfg).unwrap();
        let init = vec![0.0f32; 4];
        s.init(&init, 3);
        let mut g = init.clone();
        let mut ls = locals(3, 4, |_, _| 0.0);
        let mut saw_frozen = false;
        for r in 0..40u64 {
            for l in ls.iter_mut() {
                for (j, lj) in l.iter_mut().enumerate() {
                    if !s.managers()[0].is_frozen(j, r) {
                        *lj += if j < 2 {
                            if r % 2 == 0 {
                                0.1
                            } else {
                                -0.1
                            }
                        } else {
                            0.1
                        };
                    }
                }
            }
            let comm = s.sync_round(r, &mut ls, &[1.0; 3], &mut g);
            saw_frozen |= comm.frozen_ratio > 0.0;
            // All clients stay in lockstep.
            assert_eq!(ls[0], ls[1]);
            assert_eq!(ls[1], ls[2]);
            assert_eq!(g, ls[0]);
        }
        assert!(saw_frozen, "APF never froze the oscillators");
    }

    #[test]
    fn sparse_aggregation_matches_compact_reference() {
        // The run-driven sync (masked_axpy/masked_div + dense write-back)
        // against a hand-rolled compact select -> mean -> scatter using the
        // manager API directly — bitwise, f16 wire hop included.
        use apf::Aimd;
        use apf_quant::{f16_decode, f16_encode};
        let cfg = ApfConfig {
            check_every_rounds: 1,
            threshold_decay: None,
            ..ApfConfig::default()
        };
        let n = 150;
        let clients = 3;
        let weights = [1.0f32, 0.0, 2.0];
        let init = vec![0.0f32; n];
        let mut s = ApfStrategy::new(cfg).unwrap().with_f16();
        s.init(&init, clients);
        let ref_cfg = ApfConfig {
            bytes_per_scalar: 2,
            ..cfg
        };
        let mut ref_mgrs: Vec<ApfManager> = (0..clients)
            .map(|_| ApfManager::new(&init, ref_cfg, Box::new(Aimd::default())).unwrap())
            .collect();
        let mut ls = locals(clients, n, |_, _| 0.0);
        let mut ref_ls = ls.clone();
        let mut g = init.clone();
        for r in 0..25u64 {
            for (i, (l, rl)) in ls.iter_mut().zip(ref_ls.iter_mut()).enumerate() {
                for j in 0..n {
                    let d = ((i + 1) as f32 * 0.05) * ((r + j as u64) as f32 * 0.7).sin();
                    l[j] += d;
                    rl[j] += d;
                }
            }
            let comm = s.sync_round(r, &mut ls, &weights, &mut g);
            // Reference: the pre-optimization compact path.
            let mut ups = Vec::with_capacity(clients);
            for (m, rl) in ref_mgrs.iter().zip(ref_ls.iter_mut()) {
                m.rollback(rl, r);
                ups.push(f16_decode(&f16_encode(&m.select_unfrozen(rl, r))));
            }
            let agg = weighted_mean(&ups, &weights).unwrap_or_else(|| ups[0].clone());
            let agg = f16_decode(&f16_encode(&agg));
            let mut ref_up = 0u64;
            for (m, rl) in ref_mgrs.iter_mut().zip(ref_ls.iter_mut()) {
                m.apply_aggregate(rl, &agg, r);
                ref_up += m.finish_round(rl, r).bytes_up;
            }
            assert_eq!(ls, ref_ls, "round {r}: models diverged");
            assert_eq!(comm.bytes_up, ref_up, "round {r}: byte accounting diverged");
        }
    }

    #[test]
    fn filter_granularity_coarsens_strategy_masks() {
        let cfg = ApfConfig {
            check_every_rounds: 1,
            threshold_decay: None,
            ..ApfConfig::default()
        };
        let mut s = ApfStrategy::new(cfg).unwrap().with_filter_granularity(0.5);
        assert!(s.name().ends_with("+filt"));
        let n = 8;
        s.set_filter_layout(vec![4, 4]);
        s.init(&vec![0.0f32; n], 2);
        let mut g = vec![0.0f32; n];
        let mut ls = locals(2, n, |_, _| 0.0);
        // Scalars 0..3 oscillate (stabilize), 4..7 drift: at threshold 0.5
        // the first whole segment must freeze while the second never does.
        let mut saw_full_segment = false;
        for r in 0..40u64 {
            for l in ls.iter_mut() {
                for (j, v) in l.iter_mut().enumerate() {
                    if !s.managers()[0].is_frozen(j, r) {
                        *v += if j < 4 {
                            if r % 2 == 0 {
                                0.1
                            } else {
                                -0.1
                            }
                        } else {
                            0.1
                        };
                    }
                }
            }
            s.sync_round(r, &mut ls, &[1.0, 1.0], &mut g);
            assert_eq!(ls[0], ls[1], "round {r}");
            let mask = s.managers()[0].frozen_mask_packed(r + 1);
            let frozen_head = mask.frozen_count_in(0, 4);
            assert!(
                frozen_head == 0 || frozen_head == 4,
                "round {r}: filter segment partially frozen ({frozen_head}/4)"
            );
            assert_eq!(mask.frozen_count_in(4, 8), 0, "round {r}: drifters froze");
            saw_full_segment |= frozen_head == 4;
        }
        assert!(saw_full_segment, "oscillating segment never froze whole");
    }

    #[test]
    fn apf_f16_halves_bytes() {
        let cfg = ApfConfig::default();
        let mut plain = ApfStrategy::new(cfg).unwrap();
        let mut quant = ApfStrategy::new(cfg).unwrap().with_f16();
        let init = vec![0.5f32; 100];
        plain.init(&init, 2);
        quant.init(&init, 2);
        let mut g1 = init.clone();
        let mut g2 = init.clone();
        let mut l1 = locals(2, 100, |_, _| 0.5);
        let mut l2 = locals(2, 100, |_, _| 0.5);
        let c1 = plain.sync_round(0, &mut l1, &[1.0, 1.0], &mut g1);
        let c2 = quant.sync_round(0, &mut l2, &[1.0, 1.0], &mut g2);
        // f16 halves the packed-value bytes; the freeze bitmap (13 bytes for
        // 100 scalars) is unchanged.
        assert_eq!(c1.bytes_up, 2 * (13 + 100 * 4));
        assert_eq!(c2.bytes_up, 2 * (13 + 100 * 2));
        assert!(quant.name().ends_with("+q"));
    }

    #[test]
    fn permanent_freeze_never_unfreezes() {
        let cfg = ApfConfig {
            check_every_rounds: 1,
            threshold_decay: None,
            ..ApfConfig::default()
        };
        let mut s = ApfStrategy::permanent_freeze(cfg).unwrap();
        let init = vec![0.0f32];
        s.init(&init, 1);
        let mut g = init.clone();
        let mut ls = locals(1, 1, |_, _| 0.0);
        // Oscillate until frozen, then drift hard: it must stay frozen.
        let mut frozen_round = None;
        for r in 0..200u64 {
            if !s.managers()[0].is_frozen(0, r) {
                ls[0][0] += if r % 2 == 0 { 0.1 } else { -0.1 };
            } else if frozen_round.is_none() {
                frozen_round = Some(r);
            }
            s.sync_round(r, &mut ls, &[1.0], &mut g);
        }
        let fr = frozen_round.expect("never froze");
        // Check it stays frozen arbitrarily far in the future.
        assert!(s.managers()[0].is_frozen(0, fr + 1_000_000));
    }

    #[test]
    fn apf_sharp_reduces_traffic_relative_to_standard() {
        let n = 1000;
        let mk = |variant| {
            let cfg = ApfConfig {
                check_every_rounds: 1,
                variant,
                threshold_decay: None,
                ..ApfConfig::default()
            };
            let mut s = ApfStrategy::new(cfg).unwrap();
            s.init(&vec![0.0f32; n], 2);
            s
        };
        let mut std_apf = mk(ApfVariant::Standard);
        let mut sharp = mk(ApfVariant::Sharp { prob: 0.5 });
        let run = |s: &mut ApfStrategy| -> u64 {
            let mut g = vec![0.0f32; n];
            let mut ls = locals(2, n, |_, _| 0.0);
            let mut total = 0;
            for r in 0..10u64 {
                for l in ls.iter_mut() {
                    for (j, v) in l.iter_mut().enumerate() {
                        if !s.managers()[0].is_frozen(j, r) {
                            *v += 0.1 + j as f32 * 1e-5; // all drift: never stable
                        }
                    }
                }
                total += s.sync_round(r, &mut ls, &[1.0, 1.0], &mut g).bytes_up;
            }
            total
        };
        let b_std = run(&mut std_apf);
        let b_sharp = run(&mut sharp);
        assert!(
            (b_sharp as f64) < 0.7 * b_std as f64,
            "sharp {b_sharp} should be well under standard {b_std}"
        );
    }

    #[test]
    fn gaia_sends_only_significant_updates() {
        let mut s = Gaia::new(0.01);
        let init = vec![1.0f32; 4];
        s.init(&init, 2);
        let mut g = init.clone();
        // Client updates: scalar 0 large (significant), others tiny.
        let mut ls = vec![
            vec![1.5, 1.000001, 1.000001, 1.000001],
            vec![1.3, 1.000001, 1.000001, 1.000001],
        ];
        let comm = s.sync_round(0, &mut ls, &[1.0, 1.0], &mut g);
        assert_eq!(comm.bytes_up, 2 * 8, "one significant scalar per client");
        // The significant scalar aggregated to the mean of the updates.
        assert!((g[0] - 1.4).abs() < 1e-6, "g[0] = {}", g[0]);
        // Insignificant scalars unchanged globally.
        assert_eq!(g[1], 1.0);
        // Locals keep their unsent residuals.
        assert!((ls[0][1] - 1.000001).abs() < 1e-7);
    }

    #[test]
    fn gaia_accumulates_until_significant() {
        let mut s = Gaia::new(0.5); // very high threshold
        let init = vec![1.0f32];
        s.init(&init, 1);
        let mut g = init.clone();
        let mut ls = vec![vec![1.0f32]];
        // Drift by 0.2/round: insignificant alone (0.2 < 0.5), but the local
        // residual accumulates and eventually crosses the threshold.
        let mut sent_round = None;
        for r in 0..10u64 {
            ls[0][0] += 0.2;
            let comm = s.sync_round(r, &mut ls, &[1.0], &mut g);
            if comm.bytes_up > 0 && sent_round.is_none() {
                sent_round = Some(r);
            }
        }
        let sr = sent_round.expect("accumulated update never became significant");
        assert!(sr >= 1, "should need at least 2 rounds of accumulation");
        assert!(
            (g[0] - 1.0).abs() > 0.3,
            "global finally received the bulk update"
        );
    }

    #[test]
    fn cmfl_withholds_irrelevant_updates() {
        let mut s = Cmfl::new(0.8, 1.0);
        let init = vec![0.0f32; 4];
        s.init(&init, 2);
        let mut g = init.clone();
        // Round 0: both report (no reference yet); global update = +0.1.
        let mut ls = vec![vec![0.1; 4], vec![0.1; 4]];
        let c0 = s.sync_round(0, &mut ls, &[1.0, 1.0], &mut g);
        assert_eq!(c0.frozen_ratio, 0.0);
        // Round 1: client 0 moves with the trend, client 1 against it.
        ls[0].iter_mut().for_each(|v| *v += 0.1);
        ls[1].iter_mut().for_each(|v| *v -= 0.1);
        let c1 = s.sync_round(1, &mut ls, &[1.0, 1.0], &mut g);
        assert!(
            (c1.frozen_ratio - 0.5).abs() < 1e-6,
            "one of two clients withheld"
        );
        assert_eq!(c1.bytes_up, 4 * 4, "only one full-model upload");
        assert_eq!(c1.bytes_down, 2 * 4 * 4, "both still pull");
        // Global moved with the relevant client only.
        assert!(g[0] > 0.1);
    }

    #[test]
    fn cmfl_relevance_math() {
        assert_eq!(Cmfl::relevance(&[1.0, -1.0], &[2.0, -3.0]), 1.0);
        assert_eq!(Cmfl::relevance(&[1.0, 1.0], &[-1.0, 1.0]), 0.5);
        assert_eq!(Cmfl::relevance(&[], &[]), 1.0);
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let vs = vec![vec![0.0f32, 2.0], vec![4.0, 6.0]];
        let m = weighted_mean(&vs, &[3.0, 1.0]).unwrap();
        assert_eq!(m, vec![1.0, 3.0]);
        assert!(weighted_mean(&vs, &[0.0, 0.0]).is_none());
    }
}
