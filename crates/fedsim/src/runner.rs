//! The federated experiment runner: builds clients, drives rounds, logs
//! metrics.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use apf_data::Dataset;
use apf_nn::{models, Adam, LrSchedule, Optimizer, Sequential, Sgd, Trainer};
use apf_obs::{ObsServer, ObsState, RunInfo};
use apf_tensor::derive_seed;
use apf_trace::{event, span, Level};

use crate::client::Client;
use crate::ledger::{fnv1a64, LedgerRecord};
use crate::metrics::{ExperimentLog, RoundRecord};
use crate::network::NetworkModel;
use crate::strategy::{FullSync, SyncStrategy};

/// Which optimizer each client runs (§7.1: Adam for LeNet-5, SGD elsewhere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with optional momentum and weight decay.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Classical momentum (0 disables).
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with weight decay.
    Adam {
        /// Learning rate.
        lr: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
}

impl OptimizerKind {
    pub(crate) fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgd {
                lr,
                momentum,
                weight_decay,
            } => Box::new(
                Sgd::new(lr)
                    .with_momentum(momentum)
                    .with_weight_decay(weight_decay),
            ),
            OptimizerKind::Adam { lr, weight_decay } => {
                Box::new(Adam::new(lr).with_weight_decay(weight_decay))
            }
        }
    }

    fn base_lr(&self) -> f32 {
        match *self {
            OptimizerKind::Sgd { lr, .. } | OptimizerKind::Adam { lr, .. } => lr,
        }
    }
}

/// Federated-run hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlConfig {
    /// Local iterations per round (`F_s`, equivalently local epochs × steps).
    pub local_iters: usize,
    /// Number of communication rounds.
    pub rounds: usize,
    /// Mini-batch size (the paper uses 100; scaled setups use less).
    pub batch_size: usize,
    /// Evaluate the global model every this many rounds (always evaluates
    /// the final round).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Experiment seed (drives data order, initialization, APF randomness).
    pub seed: u64,
    /// FedProx proximal coefficient μ (None = plain local SGD).
    pub prox_mu: Option<f32>,
    /// Drop stragglers' uploads (FedAvg semantics in §7.7); FedProx keeps
    /// them.
    pub drop_stragglers: bool,
    /// Fraction of clients participating each round (§7.1 footnote 5:
    /// clients dynamically leave and join). Non-participants skip local
    /// training and contribute weight 0 to aggregation; with admission
    /// control they rejoin from the latest global model. 1.0 = everyone.
    pub participation: f32,
    /// Train clients concurrently on the `apf-par` pool (bounded by
    /// `APF_PAR_THREADS`). Aggregation order is by client index either way,
    /// so results are bitwise identical to the serial path.
    pub parallel: bool,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            local_iters: 10,
            rounds: 100,
            batch_size: 32,
            eval_every: 5,
            eval_batch: 100,
            seed: 0,
            prox_mu: None,
            drop_stragglers: false,
            participation: 1.0,
            parallel: true,
        }
    }
}

/// Builder for [`FlRunner`].
pub struct FlRunnerBuilder {
    model_factory: Box<dyn Fn(u64) -> Sequential>,
    cfg: FlConfig,
    optimizer: OptimizerKind,
    schedule: Option<LrSchedule>,
    client_data: Vec<Dataset>,
    stragglers: Vec<(usize, f32)>,
    test: Option<Dataset>,
    strategy: Option<Box<dyn SyncStrategy>>,
    network: NetworkModel,
    name: Option<String>,
    obs_addr: Option<String>,
    ledger_path: Option<PathBuf>,
    profile: bool,
}

impl FlRunnerBuilder {
    /// Sets the optimizer kind (default: SGD, lr 0.1, no momentum/decay).
    pub fn optimizer(mut self, kind: OptimizerKind) -> Self {
        self.optimizer = kind;
        self
    }

    /// Sets the learning-rate schedule (default: constant at the optimizer's
    /// base rate).
    pub fn schedule(mut self, s: LrSchedule) -> Self {
        self.schedule = Some(s);
        self
    }

    /// Creates one client per index set of `partition`, each holding its
    /// shard of `train`.
    ///
    /// # Panics
    /// Panics if any part is empty.
    pub fn clients_from_partition(mut self, train: &Dataset, partition: &[Vec<usize>]) -> Self {
        for part in partition {
            assert!(
                !part.is_empty(),
                "a client received no data; re-seed the partition"
            );
            self.client_data.push(train.select(part));
        }
        self
    }

    /// Marks client `index` as a straggler doing only `fraction` of the
    /// local work each round.
    pub fn straggler(mut self, index: usize, fraction: f32) -> Self {
        self.stragglers.push((index, fraction));
        self
    }

    /// Sets the held-out evaluation set.
    pub fn test_set(mut self, test: Dataset) -> Self {
        self.test = Some(test);
        self
    }

    /// Enables or disables parallel client training over the `apf-par` pool
    /// (results are identical either way; see [`FlConfig::parallel`]).
    pub fn parallel(mut self, on: bool) -> Self {
        self.cfg.parallel = on;
        self
    }

    /// Overrides the local iterations per round (`F_s`).
    pub fn local_iters(mut self, iters: usize) -> Self {
        self.cfg.local_iters = iters;
        self
    }

    /// Sets the per-round client participation fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn participation(mut self, fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "participation must be in (0, 1]"
        );
        self.cfg.participation = fraction;
        self
    }

    /// Enables the FedProx proximal term with coefficient `mu` (§7.7).
    pub fn prox_mu(mut self, mu: f32) -> Self {
        self.cfg.prox_mu = Some(mu);
        self
    }

    /// Makes the server drop stragglers' uploads (FedAvg semantics in §7.7).
    pub fn drop_stragglers(mut self) -> Self {
        self.cfg.drop_stragglers = true;
        self
    }

    /// Sets the synchronization strategy (default: [`FullSync`]).
    pub fn strategy(mut self, s: Box<dyn SyncStrategy>) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Sets the link model (default: the paper's 9/3 Mbps).
    pub fn network(mut self, n: NetworkModel) -> Self {
        self.network = n;
        self
    }

    /// Sets the experiment label (default: `"<model>/<strategy>"`).
    pub fn name(mut self, n: &str) -> Self {
        self.name = Some(n.to_owned());
        self
    }

    /// Serves live telemetry over HTTP from `addr` (e.g. `"127.0.0.1:9898"`,
    /// or port `0` for an ephemeral port) for the lifetime of the runner:
    /// `/metrics`, `/snapshot`, `/series`, `/healthz`.
    ///
    /// Also enabled without code changes by setting `APF_OBS_ADDR`; this
    /// method wins over the environment. When `APF_OBS_ADDR_FILE` is set,
    /// the actually-bound address is written there (how scripts discover an
    /// ephemeral port).
    pub fn serve(mut self, addr: &str) -> Self {
        self.obs_addr = Some(addr.to_owned());
        self
    }

    /// Appends a [`LedgerRecord`] for the run to the JSONL ledger at `path`
    /// when [`FlRunner::run`] completes (conventionally
    /// `results/ledger.jsonl`). Also enabled by `APF_LEDGER_FILE`; this
    /// method wins over the environment.
    pub fn ledger(mut self, path: impl Into<PathBuf>) -> Self {
        self.ledger_path = Some(path.into());
        self
    }

    /// Samples this run with the `apf-prof` profiler: when
    /// [`FlRunner::run`] completes it writes `flamegraph.pl`-compatible
    /// folded stacks to `APF_PROF_FILE` (when set) and emits a
    /// `profile_complete` summary event. Also enabled without code changes
    /// by `APF_PROF=1` (or `APF_PROF=alloc` for allocation-site
    /// attribution); if something else in the process already started a
    /// profiler session, the runner leaves it alone.
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Assembles the runner.
    ///
    /// # Panics
    /// Panics if no clients or no test set were configured.
    pub fn build(self) -> FlRunner {
        // Honor APF_TRACE/APF_TRACE_FILE for any entry point that reaches a
        // runner; idempotent and free after the first call.
        apf_trace::init_from_env();
        assert!(!self.client_data.is_empty(), "no clients configured");
        let test = self.test.expect("no test set configured");
        let cfg = self.cfg;
        // Every client starts from the SAME model (seeded identically): in
        // real FL the server distributes the initial model.
        let model_seed = derive_seed(cfg.seed, 0x30DE1);
        let schedule = self
            .schedule
            .unwrap_or(LrSchedule::Constant(self.optimizer.base_lr()));
        let mut clients: Vec<Client> = self
            .client_data
            .into_iter()
            .enumerate()
            .map(|(i, data)| {
                let trainer = Trainer::new(
                    (self.model_factory)(model_seed),
                    self.optimizer.build(),
                    schedule,
                );
                Client::new(
                    trainer,
                    data,
                    cfg.batch_size,
                    derive_seed(cfg.seed, i as u64),
                )
            })
            .collect();
        for (i, frac) in self.stragglers {
            clients[i].set_workload(frac);
        }
        let mut strategy = self.strategy.unwrap_or_else(|| Box::new(FullSync::new()));
        let init = clients[0].flat_params();
        let mut eval_model = (self.model_factory)(model_seed);
        let layout: Vec<(String, usize)> = eval_model
            .flat_spec()
            .params()
            .iter()
            .map(|p| (p.name.clone(), p.len))
            .collect();
        strategy.set_model_layout(layout);
        strategy.set_filter_layout(eval_model.filter_segments());
        strategy.init(&init, clients.len());
        let name = self
            .name
            .unwrap_or_else(|| format!("{}/{}", eval_model.name(), strategy.name()));
        let model_bytes = init.len() as u64 * 4;
        event!(Level::Info, target: "fedsim", "run_configured",
            name = name.as_str(),
            clients = clients.len(),
            model_scalars = init.len(),
            rounds = cfg.rounds,
            local_iters = cfg.local_iters,
            strategy = strategy.name(),
        );
        let model_name = eval_model.name().to_owned();
        let config_digest = fnv1a64(
            config_canonical(&cfg, &model_name, &strategy.name(), clients.len()).as_bytes(),
        );
        // Live telemetry is strictly opt-in: no `.serve()` and no
        // APF_OBS_ADDR means no listener and no per-round sampling cost.
        let obs_addr = self
            .obs_addr
            .or_else(|| std::env::var("APF_OBS_ADDR").ok())
            .filter(|s| !s.is_empty());
        let obs = obs_addr.and_then(|addr| {
            let state = ObsState::new();
            state.configure_run(RunInfo {
                name: name.clone(),
                model: model_name.clone(),
                strategy: strategy.name(),
                rounds_total: cfg.rounds as u64,
                threads: apf_par::threads() as u64,
                host_parallelism: host_parallelism(),
            });
            match ObsServer::bind(addr.as_str(), state) {
                Ok(server) => {
                    // Scripts binding port 0 discover the real port here.
                    if let Ok(path) = std::env::var("APF_OBS_ADDR_FILE") {
                        if !path.is_empty() {
                            let _ = std::fs::write(&path, server.addr().to_string());
                        }
                    }
                    Some(server)
                }
                Err(e) => {
                    event!(Level::Warn, target: "obs", "bind_failed",
                        addr = addr.as_str(), error = e.to_string());
                    None
                }
            }
        });
        let ledger_path = self.ledger_path.or_else(|| {
            std::env::var("APF_LEDGER_FILE")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
        });
        // Profiling: the builder flag forces a session on; otherwise defer
        // to APF_PROF. Either way the runner only *finishes* (and writes)
        // a session it started itself — a binary that began profiling
        // before building the runner (e.g. bench-kernels --prof-file)
        // keeps ownership of its session.
        let prof_owned = if self.profile {
            let file = std::env::var("APF_PROF_FILE")
                .ok()
                .filter(|s| !s.is_empty());
            apf_prof::start_with(apf_prof::env_interval(), file, apf_prof::env_wants_alloc())
        } else {
            apf_prof::init_from_env()
        };
        FlRunner {
            clients,
            strategy,
            cfg,
            global: init,
            eval_model,
            test,
            network: self.network,
            log: ExperimentLog::new(&name),
            cum_bytes: 0,
            cum_secs: 0.0,
            best_accuracy: 0.0,
            initial_model_bytes: model_bytes,
            model_name,
            config_digest,
            obs,
            ledger_path,
            prof_owned,
        }
    }
}

/// Canonical configuration string the ledger digest is computed over. Field
/// order is fixed; changing any run-relevant knob changes the digest.
pub(crate) fn config_canonical(
    cfg: &FlConfig,
    model: &str,
    strategy: &str,
    clients: usize,
) -> String {
    format!(
        "model={model};strategy={strategy};clients={clients};local_iters={};rounds={};\
         batch_size={};eval_every={};eval_batch={};seed={};prox_mu={:?};\
         drop_stragglers={};participation={}",
        cfg.local_iters,
        cfg.rounds,
        cfg.batch_size,
        cfg.eval_every,
        cfg.eval_batch,
        cfg.seed,
        cfg.prox_mu,
        cfg.drop_stragglers,
        cfg.participation,
    )
}

fn host_parallelism() -> u64 {
    std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
}

/// Drives a federated-learning run and records per-round metrics.
pub struct FlRunner {
    clients: Vec<Client>,
    strategy: Box<dyn SyncStrategy>,
    cfg: FlConfig,
    global: Vec<f32>,
    eval_model: Sequential,
    test: Dataset,
    network: NetworkModel,
    log: ExperimentLog,
    cum_bytes: u64,
    cum_secs: f64,
    best_accuracy: f32,
    initial_model_bytes: u64,
    model_name: String,
    config_digest: u64,
    obs: Option<ObsServer>,
    ledger_path: Option<PathBuf>,
    /// Whether this runner started the `apf-prof` session (and so finishes
    /// and writes it when [`FlRunner::run`] completes).
    prof_owned: bool,
}

impl std::fmt::Debug for FlRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlRunner")
            .field("name", &self.log.name)
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl FlRunner {
    /// Starts a builder. `model_factory` must be deterministic in its seed.
    pub fn builder(
        model_factory: impl Fn(u64) -> Sequential + 'static,
        cfg: FlConfig,
    ) -> FlRunnerBuilder {
        FlRunnerBuilder {
            model_factory: Box::new(model_factory),
            cfg,
            optimizer: OptimizerKind::Sgd {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
            schedule: None,
            client_data: Vec::new(),
            stragglers: Vec::new(),
            test: None,
            strategy: None,
            network: NetworkModel::default(),
            name: None,
            obs_addr: None,
            ledger_path: None,
            profile: false,
        }
    }

    /// Convenience builder for one of the paper models by name
    /// (`"lenet5"`, `"resnet"`, `"vgg"`, `"lstm"`).
    ///
    /// # Errors
    /// Returns [`models::ModelError`] (whose `Display` lists the valid
    /// names) for an unrecognized name, so CLI callers can print usage.
    pub fn builder_for_model(
        model: &'static str,
        cfg: FlConfig,
    ) -> Result<FlRunnerBuilder, models::ModelError> {
        if !models::MODEL_NAMES.contains(&model) {
            return Err(models::ModelError {
                name: model.to_owned(),
            });
        }
        Ok(FlRunner::builder(
            move |seed| models::by_name(model, seed).expect("name validated above"),
            cfg,
        ))
    }

    /// The metric log so far.
    pub fn log(&self) -> &ExperimentLog {
        &self.log
    }

    /// The current global flat model.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// The clients (for inspection).
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// The strategy (for inspection).
    pub fn strategy(&self) -> &dyn SyncStrategy {
        self.strategy.as_ref()
    }

    /// The live-telemetry server's bound address, when serving (resolves
    /// `:0` to the actual ephemeral port).
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs.as_ref().map(ObsServer::addr)
    }

    /// The observable state behind `/snapshot`, when serving.
    pub fn obs_state(&self) -> Option<&Arc<ObsState>> {
        self.obs.as_ref().map(ObsServer::state)
    }

    /// Evaluates the current global model on the held-out set.
    pub fn evaluate_global(&mut self) -> f32 {
        self.eval_model.load_flat(&self.global);
        apf_nn::evaluate(
            &mut self.eval_model,
            self.test.inputs(),
            self.test.labels(),
            self.cfg.eval_batch,
        )
    }

    /// Runs one communication round and returns its record.
    pub fn run_round(&mut self, round: u64) -> RoundRecord {
        let _round_span = span!(Level::Info, target: "fedsim", "round", round = round);
        if round == 0 {
            // Initial model distribution: every client pulls the full model.
            self.cum_bytes += self.initial_model_bytes * self.clients.len() as u64;
            self.cum_secs += self.network.transfer_secs(0, self.initial_model_bytes);
            event!(Level::Debug, target: "fedsim.comm", "transfer",
                round = round,
                phase = "init_broadcast",
                bytes_down = self.initial_model_bytes * self.clients.len() as u64,
                bytes_up = 0u64,
            );
        }
        let local_iters = self.cfg.local_iters;
        let strategy = &*self.strategy;
        // Sample this round's participants (everyone when participation = 1;
        // at least one client always participates).
        let participating: Vec<bool> = if self.cfg.participation >= 1.0 {
            vec![true; self.clients.len()]
        } else {
            let mut rng =
                apf_tensor::seeded_rng(apf_tensor::derive_seed(self.cfg.seed, 0x9A27 ^ round));
            let mut p: Vec<bool> = (0..self.clients.len())
                .map(|_| rng.gen::<f32>() < self.cfg.participation)
                .collect();
            if !p.iter().any(|&x| x) {
                let idx = rng.gen_range(0..p.len());
                p[idx] = true;
            }
            p
        };
        // Local training, optionally parallel across clients; compute time is
        // the slowest client's wall time (synchronous barrier).
        let local_span = span!(Level::Info, target: "fedsim", "local_train",
            round = round,
            participants = participating.iter().filter(|&&p| p).count());
        let mut losses = vec![0.0f32; self.clients.len()];
        let mut times = vec![0.0f64; self.clients.len()];
        if self.cfg.parallel && self.clients.len() > 1 {
            // One pool task per participating client, each writing into its
            // own (loss, time) slot; the pool bounds concurrency at
            // `apf_par::threads()` instead of one OS thread per client.
            // Aggregation below reads the slots in client-index order, so
            // results do not depend on completion order.
            apf_par::scope(|s| {
                let participating = &participating;
                for (((i, client), loss_slot), time_slot) in self
                    .clients
                    .iter_mut()
                    .enumerate()
                    .zip(losses.iter_mut())
                    .zip(times.iter_mut())
                {
                    s.spawn(move || {
                        if !participating[i] {
                            return;
                        }
                        let t0 = Instant::now();
                        let hook = move |p: &mut [f32]| {
                            strategy.post_local_iteration(round, i, p);
                        };
                        *loss_slot = client.local_round(local_iters, &hook);
                        *time_slot = t0.elapsed().as_secs_f64();
                    });
                }
            });
        } else {
            for (i, client) in self.clients.iter_mut().enumerate() {
                if !participating[i] {
                    continue;
                }
                let t0 = Instant::now();
                let hook = move |p: &mut [f32]| {
                    strategy.post_local_iteration(round, i, p);
                };
                losses[i] = client.local_round(local_iters, &hook);
                times[i] = t0.elapsed().as_secs_f64();
            }
        }
        drop(local_span);
        let compute_secs = times.iter().cloned().fold(0.0, f64::max);
        if apf_trace::enabled(Level::Debug) {
            for i in 0..self.clients.len() {
                if participating[i] {
                    event!(Level::Debug, target: "fedsim.client", "local_round",
                        round = round, client = i,
                        loss = losses[i], compute_secs = times[i]);
                }
            }
        }
        // Aggregation weights: non-participants contribute nothing, and
        // FedAvg additionally drops stragglers (FedProx keeps them).
        let weights: Vec<f32> = self
            .clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if !participating[i] || (self.cfg.drop_stragglers && c.workload() < 1.0) {
                    0.0
                } else {
                    1.0
                }
            })
            .collect();
        let comm = {
            let _s = span!(Level::Info, target: "fedsim", "aggregate", round = round);
            let mut locals: Vec<Vec<f32>> =
                self.clients.iter_mut().map(Client::flat_params).collect();
            let comm = self
                .strategy
                .sync_round(round, &mut locals, &weights, &mut self.global);
            for (c, l) in self.clients.iter_mut().zip(&locals) {
                c.load_flat(l);
            }
            comm
        };
        let sync_span = span!(Level::Info, target: "fedsim", "sync", round = round);
        // FedProx: anchor the next round's proximal term at the fresh global.
        if let Some(mu) = self.cfg.prox_mu {
            for c in self.clients.iter_mut() {
                c.trainer_mut().set_prox(mu, self.global.clone());
            }
        }
        let comm_secs = self
            .network
            .transfer_secs(comm.max_client_up, comm.max_client_down);
        self.cum_bytes += comm.bytes_up + comm.bytes_down;
        self.cum_secs += compute_secs + comm_secs;
        event!(Level::Debug, target: "fedsim.comm", "transfer",
            round = round,
            phase = "sync",
            bytes_up = comm.bytes_up,
            bytes_down = comm.bytes_down,
            max_client_up = comm.max_client_up,
            max_client_down = comm.max_client_down,
            comm_secs = comm_secs,
            compute_secs = compute_secs,
        );
        apf_trace::metrics::counter("fedsim.bytes_up").add(comm.bytes_up);
        apf_trace::metrics::counter("fedsim.bytes_down").add(comm.bytes_down);
        drop(sync_span);
        let accuracy = if round.is_multiple_of(self.cfg.eval_every as u64)
            || round + 1 == self.cfg.rounds as u64
        {
            let _s = span!(Level::Info, target: "fedsim", "eval", round = round);
            let acc = self.evaluate_global();
            self.best_accuracy = self.best_accuracy.max(acc);
            Some(acc)
        } else {
            None
        };
        let record = RoundRecord {
            round,
            loss: {
                let k = participating.iter().filter(|&&p| p).count().max(1);
                losses.iter().sum::<f32>() / k as f32
            },
            accuracy,
            best_accuracy: self.best_accuracy,
            frozen_ratio: comm.frozen_ratio,
            bytes_up: comm.bytes_up,
            bytes_down: comm.bytes_down,
            cum_bytes: self.cum_bytes,
            compute_secs,
            comm_secs,
            cum_secs: self.cum_secs,
        };
        self.log.push(record);
        apf_trace::metrics::counter("fedsim.rounds").inc();
        apf_trace::metrics::gauge("fedsim.round").set(round as f64);
        apf_trace::metrics::gauge("fedsim.loss").set(f64::from(record.loss));
        apf_trace::metrics::gauge("fedsim.frozen_ratio").set(f64::from(record.frozen_ratio));
        apf_trace::metrics::gauge("fedsim.best_accuracy").set(f64::from(record.best_accuracy));
        // Scratch-pool health at the round boundary: a healthy steady state
        // holds misses/alloc_bytes flat after the warm-up round.
        let (scratch_hits, scratch_misses, scratch_bytes) = apf_tensor::scratch::global_stats();
        apf_trace::metrics::gauge("scratch.hits").set(scratch_hits as f64);
        apf_trace::metrics::gauge("scratch.misses").set(scratch_misses as f64);
        apf_trace::metrics::gauge("scratch.alloc_bytes").set(scratch_bytes as f64);
        // Slab-store health, same contract as the scratch pool: steady state
        // means misses and alloc_bytes flat, resident_bytes bounded.
        let (slab_hits, slab_misses, slab_alloc, slab_resident) = apf_tensor::slab::global_stats();
        apf_trace::metrics::gauge("slab.hits").set(slab_hits as f64);
        apf_trace::metrics::gauge("slab.misses").set(slab_misses as f64);
        apf_trace::metrics::gauge("slab.alloc_bytes").set(slab_alloc as f64);
        apf_trace::metrics::gauge("slab.resident_bytes").set(slab_resident as f64);
        if let Some(obs) = &self.obs {
            // Round-boundary sample for /snapshot and /series.
            let mut fields: Vec<(&str, f64)> = vec![
                ("fedsim.loss", f64::from(record.loss)),
                ("fedsim.best_accuracy", f64::from(record.best_accuracy)),
                ("fedsim.frozen_ratio", f64::from(record.frozen_ratio)),
                ("fedsim.bytes_up", record.bytes_up as f64),
                ("fedsim.bytes_down", record.bytes_down as f64),
                ("fedsim.cum_bytes", record.cum_bytes as f64),
                ("fedsim.compute_secs", record.compute_secs),
                ("fedsim.comm_secs", record.comm_secs),
                ("fedsim.cum_secs", record.cum_secs),
                ("scratch.hits", scratch_hits as f64),
                ("scratch.misses", scratch_misses as f64),
                ("scratch.alloc_bytes", scratch_bytes as f64),
                ("slab.hits", slab_hits as f64),
                ("slab.misses", slab_misses as f64),
                ("slab.alloc_bytes", slab_alloc as f64),
                ("slab.resident_bytes", slab_resident as f64),
            ];
            if let Some(acc) = record.accuracy {
                fields.push(("fedsim.accuracy", f64::from(acc)));
            }
            obs.state()
                .record_round(round, &fields, self.strategy.layer_frozen_ratios(round));
        }
        event!(Level::Info, target: "fedsim", "round_complete",
            round = round,
            loss = record.loss,
            accuracy = record.accuracy.map_or(f32::NAN, |a| a),
            frozen_ratio = record.frozen_ratio,
            bytes_up = record.bytes_up,
            bytes_down = record.bytes_down,
            cum_bytes = record.cum_bytes,
            compute_secs = record.compute_secs,
            comm_secs = record.comm_secs,
        );
        record
    }

    /// Runs all configured rounds and returns the final log.
    ///
    /// On completion, dumps the metrics registry into the trace and flushes
    /// the sink (both no-ops when tracing is disabled), marks the telemetry
    /// snapshot completed, and — when a ledger is configured via
    /// [`FlRunnerBuilder::ledger`] or `APF_LEDGER_FILE` — appends a
    /// [`LedgerRecord`] for the run.
    pub fn run(&mut self) -> &ExperimentLog {
        let t0 = Instant::now();
        for r in 0..self.cfg.rounds as u64 {
            self.run_round(r);
        }
        let wall_secs = t0.elapsed().as_secs_f64();
        apf_trace::metrics::emit();
        if self.prof_owned {
            self.prof_owned = false;
            if let Some(profile) = apf_prof::finish() {
                event!(Level::Info, target: "prof", "profile_complete",
                    passes = profile.passes,
                    samples = profile.total_samples(),
                    stacks = profile.stacks.len());
            }
        }
        apf_trace::flush();
        if let Some(obs) = &self.obs {
            obs.state().mark_completed();
        }
        if let Some(path) = self.ledger_path.clone() {
            let mut record = LedgerRecord::from_log(
                &self.log,
                &self.model_name,
                &self.strategy.name(),
                self.config_digest,
                wall_secs,
            );
            if let Some(peak) = crate::ledger::peak_resident_bytes() {
                record
                    .metrics
                    .insert("peak_resident_bytes".to_owned(), peak as f64);
            }
            match record.append_to(&path) {
                Ok(()) => event!(Level::Info, target: "fedsim", "ledger_appended",
                    path = path.display().to_string(),
                    digest = record.config_digest.as_str()),
                Err(e) => event!(Level::Warn, target: "fedsim", "ledger_write_failed",
                    path = path.display().to_string(),
                    error = e.to_string()),
            }
        }
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ApfStrategy;
    use apf::ApfConfig;
    use apf_data::iid_partition;

    fn tiny_cfg(rounds: usize) -> FlConfig {
        FlConfig {
            local_iters: 3,
            rounds,
            batch_size: 10,
            eval_every: 2,
            eval_batch: 50,
            seed: 7,
            parallel: false,
            ..FlConfig::default()
        }
    }

    fn mlp_factory(seed: u64) -> Sequential {
        models::mlp("m", &[3 * 16 * 16, 24, 10], seed)
    }

    fn flat_images(n: usize, split: u64) -> Dataset {
        let ds = apf_data::synth_images_split(n, 1, split);
        Dataset::new(
            ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
            ds.labels().to_vec(),
            10,
        )
    }

    #[test]
    fn fedavg_run_improves_accuracy() {
        let train = flat_images(120, 1);
        let test = flat_images(100, 2);
        let parts = iid_partition(train.len(), 3, 7);
        let mut runner = FlRunner::builder(mlp_factory, tiny_cfg(12))
            .optimizer(OptimizerKind::Sgd {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            })
            .clients_from_partition(&train, &parts)
            .test_set(test)
            .build();
        let log = runner.run();
        assert_eq!(log.records.len(), 12);
        assert!(log.best_accuracy() > 0.3, "best {}", log.best_accuracy());
        // Cumulative bytes: initial distribution + 12 rounds full model.
        let model_bytes = (3 * 16 * 16 * 24 + 24 + 24 * 10 + 10) as u64 * 4;
        assert_eq!(
            log.total_bytes(),
            model_bytes * 3 + 12 * 2 * 3 * model_bytes
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let train = flat_images(60, 3);
        let test = flat_images(40, 4);
        let parts = iid_partition(train.len(), 2, 1);
        let run = |parallel: bool| {
            let cfg = FlConfig {
                parallel,
                ..tiny_cfg(4)
            };
            let mut runner = FlRunner::builder(mlp_factory, cfg)
                .clients_from_partition(&train, &parts)
                .test_set(test.clone())
                .build();
            runner.run();
            runner.global().to_vec()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b, "client parallelism must not change results");
    }

    #[test]
    fn apf_strategy_saves_bytes_eventually() {
        let train = flat_images(80, 5);
        let test = flat_images(40, 6);
        let parts = iid_partition(train.len(), 2, 2);
        let apf_cfg = ApfConfig {
            check_every_rounds: 2,
            ..ApfConfig::default()
        };
        let mut runner = FlRunner::builder(mlp_factory, tiny_cfg(20))
            .optimizer(OptimizerKind::Sgd {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            })
            .clients_from_partition(&train, &parts)
            .test_set(test)
            .strategy(Box::new(ApfStrategy::new(apf_cfg).unwrap()))
            .build();
        let log = runner.run();
        // Some freezing should have occurred by round 20.
        assert!(
            log.records.iter().any(|r| r.frozen_ratio > 0.0),
            "APF never froze anything in 20 rounds"
        );
    }

    #[test]
    fn straggler_weights_respected() {
        let train = flat_images(60, 8);
        let test = flat_images(30, 9);
        let parts = iid_partition(train.len(), 2, 3);
        let cfg = FlConfig {
            drop_stragglers: true,
            ..tiny_cfg(2)
        };
        let mut runner = FlRunner::builder(mlp_factory, cfg)
            .clients_from_partition(&train, &parts)
            .straggler(1, 0.5)
            .test_set(test)
            .build();
        let r0 = runner.run_round(0);
        // Only one client uploads: bytes_up is half of bytes_down.
        assert_eq!(r0.bytes_up * 2, r0.bytes_down);
    }

    #[test]
    fn fedprox_engages_after_first_round() {
        let train = flat_images(60, 10);
        let test = flat_images(30, 11);
        let parts = iid_partition(train.len(), 2, 4);
        let cfg = FlConfig {
            prox_mu: Some(0.01),
            ..tiny_cfg(3)
        };
        let mut runner = FlRunner::builder(mlp_factory, cfg)
            .clients_from_partition(&train, &parts)
            .test_set(test)
            .build();
        let log = runner.run();
        assert_eq!(log.records.len(), 3);
        assert!(log.records.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn eval_cadence() {
        let train = flat_images(40, 12);
        let test = flat_images(20, 13);
        let parts = iid_partition(train.len(), 2, 5);
        let mut runner = FlRunner::builder(mlp_factory, tiny_cfg(5))
            .clients_from_partition(&train, &parts)
            .test_set(test)
            .build();
        let log = runner.run();
        let evals: Vec<bool> = log.records.iter().map(|r| r.accuracy.is_some()).collect();
        // eval_every = 2 plus the final round.
        assert_eq!(evals, vec![true, false, true, false, true]);
    }

    #[test]
    fn partial_participation_reduces_uploads() {
        let train = flat_images(80, 16);
        let test = flat_images(30, 17);
        let parts = iid_partition(train.len(), 4, 7);
        let cfg = FlConfig {
            participation: 0.5,
            ..tiny_cfg(6)
        };
        let mut runner = FlRunner::builder(mlp_factory, cfg)
            .clients_from_partition(&train, &parts)
            .test_set(test.clone())
            .build();
        let log = runner.run().clone();
        let full_round_up = {
            let cfg = tiny_cfg(1);
            let mut r = FlRunner::builder(mlp_factory, cfg)
                .clients_from_partition(&train, &parts)
                .test_set(test)
                .build();
            r.run_round(0).bytes_up
        };
        // At 50% participation, at least one round must upload less than a
        // full-participation round.
        assert!(
            log.records.iter().any(|r| r.bytes_up < full_round_up),
            "no round had reduced uploads"
        );
        // And training still progresses.
        assert!(log.records.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn determinism_across_runs() {
        let train = flat_images(40, 14);
        let test = flat_images(20, 15);
        let parts = iid_partition(train.len(), 2, 6);
        let run = || {
            let mut r = FlRunner::builder(mlp_factory, tiny_cfg(3))
                .clients_from_partition(&train, &parts)
                .test_set(test.clone())
                .build();
            r.run();
            r.global().to_vec()
        };
        assert_eq!(run(), run());
    }
}
