//! Bit-exact run trajectories: the parity currency between the in-process
//! simulator and the `apf-net` networked runtime.
//!
//! A [`Trajectory`] is the per-round sequence of the *deterministic* metrics
//! of a run — loss, frozen ratio, accuracy (as raw f32 bit patterns, so no
//! formatting round-off can hide a divergence) plus the logical wire bytes.
//! Both execution paths extract one from their [`ExperimentLog`], serialize
//! it with [`Trajectory::encode`], and the multi-process harness compares the
//! files byte-for-byte; [`Trajectory::diff`] pinpoints the first divergent
//! round when they don't match.

use crate::metrics::ExperimentLog;

/// The deterministic metrics of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryRound {
    /// Round index.
    pub round: u64,
    /// Mean local loss, as f32 bits.
    pub loss_bits: u32,
    /// Frozen ratio, as f32 bits.
    pub frozen_bits: u32,
    /// Test accuracy as f32 bits; `None` on rounds that skip evaluation.
    pub accuracy_bits: Option<u32>,
    /// Logical upload bytes (all clients).
    pub bytes_up: u64,
    /// Logical download bytes (all clients).
    pub bytes_down: u64,
}

/// A whole run's deterministic trajectory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trajectory {
    /// One entry per round, in order.
    pub rounds: Vec<TrajectoryRound>,
}

impl Trajectory {
    /// Extracts the trajectory from a finished run's log.
    pub fn from_log(log: &ExperimentLog) -> Trajectory {
        Trajectory {
            rounds: log
                .records
                .iter()
                .map(|r| TrajectoryRound {
                    round: r.round,
                    loss_bits: r.loss.to_bits(),
                    frozen_bits: r.frozen_ratio.to_bits(),
                    accuracy_bits: r.accuracy.map(f32::to_bits),
                    bytes_up: r.bytes_up,
                    bytes_down: r.bytes_down,
                })
                .collect(),
        }
    }

    /// Text encoding: a version header, then one
    /// `round loss frozen accuracy bytes_up bytes_down` line per round with
    /// the f32 fields in hex bits (`-` for a skipped evaluation). Lines
    /// starting with `#` are comments and ignored by [`Trajectory::decode`].
    pub fn encode(&self) -> String {
        let mut out = String::from("apf-trajectory-v1\n");
        for r in &self.rounds {
            let acc = r
                .accuracy_bits
                .map_or("-".to_owned(), |a| format!("{a:08x}"));
            out.push_str(&format!(
                "{} {:08x} {:08x} {} {} {}\n",
                r.round, r.loss_bits, r.frozen_bits, acc, r.bytes_up, r.bytes_down
            ));
        }
        out
    }

    /// Parses a trajectory previously produced by [`Trajectory::encode`].
    ///
    /// # Errors
    /// Returns a line-numbered message on a bad header or malformed row.
    pub fn decode(text: &str) -> Result<Trajectory, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "apf-trajectory-v1")) => {}
            other => return Err(format!("bad header: {:?}", other.map(|(_, l)| l))),
        }
        let mut rounds = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let err = |what: &str| format!("line {}: bad {what}: {line:?}", i + 1);
            let [round, loss, frozen, acc, up, down] = fields.as_slice() else {
                return Err(err("field count"));
            };
            rounds.push(TrajectoryRound {
                round: round.parse().map_err(|_| err("round"))?,
                loss_bits: u32::from_str_radix(loss, 16).map_err(|_| err("loss bits"))?,
                frozen_bits: u32::from_str_radix(frozen, 16).map_err(|_| err("frozen bits"))?,
                accuracy_bits: if *acc == "-" {
                    None
                } else {
                    Some(u32::from_str_radix(acc, 16).map_err(|_| err("accuracy bits"))?)
                },
                bytes_up: up.parse().map_err(|_| err("bytes_up"))?,
                bytes_down: down.parse().map_err(|_| err("bytes_down"))?,
            });
        }
        Ok(Trajectory { rounds })
    }

    /// `None` when the trajectories are identical; otherwise a human-readable
    /// description of the first divergence (length mismatch or first
    /// differing round and field).
    pub fn diff(&self, other: &Trajectory) -> Option<String> {
        if self.rounds.len() != other.rounds.len() {
            return Some(format!(
                "round counts differ: {} vs {}",
                self.rounds.len(),
                other.rounds.len()
            ));
        }
        for (a, b) in self.rounds.iter().zip(&other.rounds) {
            if a == b {
                continue;
            }
            let field = if a.round != b.round {
                "round index"
            } else if a.loss_bits != b.loss_bits {
                "loss"
            } else if a.frozen_bits != b.frozen_bits {
                "frozen_ratio"
            } else if a.accuracy_bits != b.accuracy_bits {
                "accuracy"
            } else if a.bytes_up != b.bytes_up {
                "bytes_up"
            } else {
                "bytes_down"
            };
            return Some(format!(
                "first divergence at round {}: {field} ({a:?} vs {b:?})",
                a.round
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundRecord;

    fn log() -> ExperimentLog {
        let mut log = ExperimentLog::new("t");
        for round in 0..3u64 {
            log.push(RoundRecord {
                round,
                loss: 1.5 / (round + 1) as f32,
                accuracy: (round % 2 == 0).then_some(0.25 * (round + 1) as f32),
                best_accuracy: 0.5,
                frozen_ratio: 0.125 * round as f32,
                bytes_up: 100 + round,
                bytes_down: 200 + round,
                cum_bytes: 0,
                compute_secs: 0.1,
                comm_secs: 0.2,
                cum_secs: 0.3,
            });
        }
        log
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = Trajectory::from_log(&log());
        let back = Trajectory::decode(&t.encode()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_ignores_comments_and_blank_lines() {
        let t = Trajectory::from_log(&log());
        let mut text = t.encode();
        text.push_str("# wire_bytes=12345\n\n");
        assert_eq!(Trajectory::decode(&text).unwrap(), t);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(Trajectory::decode("").is_err());
        assert!(Trajectory::decode("apf-trajectory-v9\n").is_err());
        assert!(Trajectory::decode("apf-trajectory-v1\n0 xx yy - 1 2\n").is_err());
        assert!(Trajectory::decode("apf-trajectory-v1\n0 00000000\n").is_err());
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = Trajectory::from_log(&log());
        assert_eq!(a.diff(&a), None);
        let mut b = a.clone();
        b.rounds[1].loss_bits ^= 1;
        let msg = a.diff(&b).unwrap();
        assert!(msg.contains("round 1") && msg.contains("loss"), "{msg}");
        let mut c = a.clone();
        c.rounds.pop();
        assert!(
            a.diff(&c).unwrap().contains("round counts"),
            "{}",
            a.diff(&c).unwrap()
        );
    }
}
