//! A minimal in-tree JSON reader/writer.
//!
//! The workspace builds with zero external dependencies, so the experiment
//! logs that used to go through `serde_json` are serialized here instead.
//! The writer emits standard, pretty-printed JSON; the parser is a small
//! recursive-descent reader that is tolerant of whitespace and key order and
//! covers the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null).
//!
//! Numbers keep their source text ([`Value::Num`] stores the raw token), so
//! `u64` counters round-trip exactly even beyond 2^53, and floats are parsed
//! on demand. Non-finite floats serialize as `null` — JSON has no NaN/inf
//! literals, and a log that produced one should still be readable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted map).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a number value from an `f64`; non-finite maps to `null`.
    pub fn from_f64(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(format_float(x))
        } else {
            Value::Null
        }
    }

    /// Builds a number value from an `f32`; non-finite maps to `null`.
    pub fn from_f32(x: f32) -> Value {
        if x.is_finite() {
            Value::Num(format!("{x}"))
        } else {
            Value::Null
        }
    }

    /// Builds a number value from a `u64` (exact).
    pub fn from_u64(x: u64) -> Value {
        Value::Num(x.to_string())
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f32`, if it is a number.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer number (exact, no
    /// float detour).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form the
    /// run ledger appends (one record per line).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Formats an `f64` so it round-trips exactly through parsing (Rust's
/// shortest-representation `Display`).
fn format_float(x: f64) -> String {
    format!("{x}")
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a [`ParseError`] with the byte offset on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are replaced; the writer never emits
                            // them and the logs never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Num(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in [
            "null", "true", "false", "0", "-17", "3.25", "1e-3", "\"hi\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.pretty()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn compact_is_single_line_and_roundtrips() {
        let v = parse("{\"a\": [1, 2.5, null], \"b\": {\"c\": \"x y\"}}").unwrap();
        let line = v.compact();
        assert_eq!(line, "{\"a\":[1,2.5,null],\"b\":{\"c\":\"x y\"}}");
        assert!(!line.contains('\n'));
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"name": "a/b", "records": [{"x": 1, "y": [1, 2.5, null]}, {}], "ok": true}"#;
        let v = parse(src).unwrap();
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.get("name").unwrap().as_str(), Some("a/b"));
        assert_eq!(v.get("records").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn u64_counters_are_exact() {
        let big = u64::MAX - 3;
        let v = Value::from_u64(big);
        assert_eq!(parse(&v.pretty()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn float_shortest_repr_roundtrips() {
        for x in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, -1234.5678] {
            let v = Value::from_f32(x);
            let back = parse(&v.pretty()).unwrap().as_f32().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
        for x in [0.1f64, std::f64::consts::PI, 1e-300] {
            let v = Value::from_f64(x);
            let back = parse(&v.pretty()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::from_f32(f32::NAN), Value::Null);
        assert_eq!(Value::from_f64(f64::INFINITY), Value::Null);
        assert_eq!(Value::from_f64(f64::NEG_INFINITY), Value::Null);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}end é";
        let v = Value::Str(s.to_owned());
        assert_eq!(parse(&v.pretty()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn tolerant_of_whitespace() {
        let v = parse("  { \"a\" :\n[ 1 ,\t2 ] }  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"oops",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "[1] x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
