//! Integration test: a short federated run emits the documented span tree
//! and every JSONL line round-trips through the in-tree JSON parser.
//!
//! This file is its own test binary, so the process-global trace state it
//! installs cannot leak into other tests.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use apf::ApfConfig;
use apf_data::{iid_partition, synth_images_split, Dataset};
use apf_fedsim::json::{self, Value};
use apf_fedsim::{ApfStrategy, FlConfig, FlRunner, OptimizerKind};
use apf_nn::models;
use apf_trace::{Level, MemorySink};

const ROUNDS: usize = 3;

fn flat_images(n: usize, split: u64) -> Dataset {
    let ds = synth_images_split(n, 1, split);
    Dataset::new(
        ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
        ds.labels().to_vec(),
        10,
    )
}

fn mlp(seed: u64) -> apf_nn::Sequential {
    models::mlp("m", &[3 * 16 * 16, 12, 10], seed)
}

/// Runs 3 APF rounds once per process with an in-memory sink installed at
/// Debug level and returns the captured JSONL lines. Shared across the tests
/// in this binary because the trace sink and metrics registry are
/// process-global.
fn traced_run() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(traced_run_impl)
}

fn traced_run_impl() -> Vec<String> {
    let sink = Arc::new(MemorySink::new());
    apf_trace::init(Level::Debug, sink.clone());

    let train = flat_images(96, 0);
    let test = flat_images(48, 1);
    let parts = iid_partition(train.len(), 3, 7);
    let strategy = ApfStrategy::new(ApfConfig {
        check_every_rounds: 1,
        stability_threshold: 0.1,
        ema_alpha: 0.9,
        seed: 7,
        ..ApfConfig::default()
    })
    .unwrap();
    let mut runner = FlRunner::builder(
        mlp,
        FlConfig {
            local_iters: 2,
            rounds: ROUNDS,
            batch_size: 16,
            eval_every: 1,
            seed: 7,
            parallel: false,
            ..FlConfig::default()
        },
    )
    .optimizer(OptimizerKind::Sgd {
        lr: 0.05,
        momentum: 0.0,
        weight_decay: 0.0,
    })
    .clients_from_partition(&train, &parts)
    .test_set(test)
    .strategy(Box::new(strategy))
    .build();
    runner.run();

    apf_trace::shutdown();
    sink.lines()
}

/// Every line must parse as a JSON object with the documented envelope.
fn parse_all(lines: &[String]) -> Vec<Value> {
    lines
        .iter()
        .map(|l| {
            let v = json::parse(l).unwrap_or_else(|e| panic!("unparsable JSONL line {l:?}: {e:?}"));
            let t = v.get("t").and_then(Value::as_str).expect("missing t");
            assert!(t == "event" || t == "span", "unknown record type {t}");
            for key in ["ts_us", "lvl", "target"] {
                assert!(v.get(key).is_some(), "line missing {key:?}: {l}");
            }
            if t == "span" {
                for key in ["name", "id", "parent", "start_us", "dur_us"] {
                    assert!(v.get(key).is_some(), "span missing {key:?}: {l}");
                }
            } else {
                for key in ["msg", "span"] {
                    assert!(v.get(key).is_some(), "event missing {key:?}: {l}");
                }
            }
            v
        })
        .collect()
}

fn spans<'a>(records: &'a [Value], target: &str, name: &str) -> Vec<&'a Value> {
    records
        .iter()
        .filter(|v| {
            v.get("t").and_then(Value::as_str) == Some("span")
                && v.get("target").and_then(Value::as_str) == Some(target)
                && v.get("name").and_then(Value::as_str) == Some(name)
        })
        .collect()
}

fn events<'a>(records: &'a [Value], target: &str, msg: &str) -> Vec<&'a Value> {
    records
        .iter()
        .filter(|v| {
            v.get("t").and_then(Value::as_str) == Some("event")
                && v.get("target").and_then(Value::as_str) == Some(target)
                && v.get("msg").and_then(Value::as_str) == Some(msg)
        })
        .collect()
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get("fields")
        .and_then(|f| f.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

#[test]
fn three_round_run_emits_expected_span_tree() {
    let lines = traced_run();
    assert!(!lines.is_empty(), "traced run produced no output");
    let records = parse_all(lines);

    // One round span per round, each with a distinct id and no parent.
    let rounds = spans(&records, "fedsim", "round");
    assert_eq!(rounds.len(), ROUNDS, "expected one round span per round");
    let round_ids: Vec<u64> = rounds
        .iter()
        .map(|v| v.get("id").and_then(Value::as_u64).unwrap())
        .collect();
    let mut id_to_round: BTreeMap<u64, u64> = BTreeMap::new();
    for v in &rounds {
        let id = v.get("id").and_then(Value::as_u64).unwrap();
        assert_eq!(
            v.get("parent").and_then(Value::as_u64),
            Some(0),
            "round spans are roots"
        );
        id_to_round.insert(id, u64_field(v, "round"));
    }

    // Each round span has exactly one local_train / aggregate / sync / eval
    // child (eval_every = 1, so eval runs every round).
    for phase in ["local_train", "aggregate", "sync", "eval"] {
        let phase_spans = spans(&records, "fedsim", phase);
        assert_eq!(
            phase_spans.len(),
            ROUNDS,
            "expected {ROUNDS} {phase} spans, got {}",
            phase_spans.len()
        );
        let mut parents: Vec<u64> = phase_spans
            .iter()
            .map(|v| v.get("parent").and_then(Value::as_u64).unwrap())
            .collect();
        parents.sort_unstable();
        let mut expected = round_ids.clone();
        expected.sort_unstable();
        assert_eq!(
            parents, expected,
            "every {phase} span must be a direct child of a round span"
        );
    }

    // A child's duration cannot exceed its parent round's duration.
    let round_durs: BTreeMap<u64, u64> = rounds
        .iter()
        .map(|v| {
            (
                v.get("id").and_then(Value::as_u64).unwrap(),
                v.get("dur_us").and_then(Value::as_u64).unwrap(),
            )
        })
        .collect();
    for v in spans(&records, "fedsim", "local_train") {
        let parent = v.get("parent").and_then(Value::as_u64).unwrap();
        let dur = v.get("dur_us").and_then(Value::as_u64).unwrap();
        assert!(dur <= round_durs[&parent], "child longer than parent round");
    }
}

#[test]
fn three_round_run_emits_expected_events() {
    let lines = traced_run();
    let records = parse_all(lines);

    assert_eq!(events(&records, "fedsim", "run_configured").len(), 1);
    let complete = events(&records, "fedsim", "round_complete");
    assert_eq!(complete.len(), ROUNDS);
    let seen: Vec<u64> = complete.iter().map(|v| u64_field(v, "round")).collect();
    assert_eq!(seen, vec![0, 1, 2], "round_complete rounds in order");

    // Manager telemetry: one round summary per round per client manager
    // (bytes are per-client), plus per-layer freeze breakdowns covering
    // every parameter of the MLP each round (manager 0 only — masks are
    // identical across clients).
    let mgr_rounds = events(&records, "apf.manager", "round");
    assert_eq!(mgr_rounds.len(), ROUNDS * 3);
    let per_layer = events(&records, "apf.manager", "layer_freeze");
    // mlp [in, 12, 10] = 2 Linear layers x (weight + bias) = 4 named params.
    assert_eq!(per_layer.len(), ROUNDS * 4);
    let mut names: Vec<&str> = per_layer
        .iter()
        .filter_map(|v| {
            v.get("fields")
                .and_then(|f| f.get("layer"))
                .and_then(Value::as_str)
        })
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 4, "four distinct layer names: {names:?}");

    // Comm telemetry: the init broadcast at round 0 plus one sync per round.
    let transfers = events(&records, "fedsim.comm", "transfer");
    assert_eq!(transfers.len(), ROUNDS + 1);
    let phases: Vec<&str> = transfers
        .iter()
        .filter_map(|v| {
            v.get("fields")
                .and_then(|f| f.get("phase"))
                .and_then(Value::as_str)
        })
        .collect();
    assert_eq!(phases.iter().filter(|p| **p == "init_broadcast").count(), 1);
    assert_eq!(phases.iter().filter(|p| **p == "sync").count(), ROUNDS);

    // Per-client events: 3 clients x 3 rounds at Debug.
    assert_eq!(
        events(&records, "fedsim.client", "local_round").len(),
        3 * ROUNDS
    );

    // Metrics summary emitted by run(): counters include the round count.
    let counters = events(&records, "metrics", "counter");
    let fed_rounds = counters
        .iter()
        .find(|v| {
            v.get("fields")
                .and_then(|f| f.get("name"))
                .and_then(Value::as_str)
                == Some("fedsim.rounds")
        })
        .expect("fedsim.rounds counter emitted");
    assert!(u64_field(fed_rounds, "value") >= ROUNDS as u64);
}
