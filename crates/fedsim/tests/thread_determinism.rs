//! Golden-trajectory determinism: a full federated run — parallel clients,
//! APF freezing, evaluation — must be bitwise identical at any
//! `APF_PAR_THREADS`. This is the end-to-end check behind the apf-par
//! determinism contract; the per-kernel checks live in apf-tensor and
//! apf-nn.

use apf::ApfConfig;
use apf_data::{iid_partition, synth_images_split, Dataset};
use apf_fedsim::{ApfStrategy, FlConfig, FlRunner, OptimizerKind};
use apf_nn::models;

const ROUNDS: usize = 4;

fn flat_images(n: usize, split: u64) -> Dataset {
    let ds = synth_images_split(n, 1, split);
    Dataset::new(
        ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
        ds.labels().to_vec(),
        10,
    )
}

/// One complete run; returns the final global model (as bits) plus the
/// per-round losses and accuracies.
fn trajectory() -> (Vec<u32>, Vec<u32>, Vec<Option<u32>>) {
    let train = flat_images(96, 0);
    let test = flat_images(48, 1);
    let parts = iid_partition(train.len(), 3, 7);
    let strategy = ApfStrategy::new(ApfConfig {
        check_every_rounds: 1,
        stability_threshold: 0.1,
        ema_alpha: 0.9,
        seed: 7,
        ..ApfConfig::default()
    })
    .unwrap();
    let mut runner = FlRunner::builder(
        |seed| models::mlp("m", &[3 * 16 * 16, 12, 10], seed),
        FlConfig {
            local_iters: 2,
            rounds: ROUNDS,
            batch_size: 16,
            eval_every: 1,
            seed: 7,
            parallel: true,
            ..FlConfig::default()
        },
    )
    .optimizer(OptimizerKind::Sgd {
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
    })
    .clients_from_partition(&train, &parts)
    .test_set(test)
    .strategy(Box::new(strategy))
    .build();
    let log = runner.run();
    let losses: Vec<u32> = log.records.iter().map(|r| r.loss.to_bits()).collect();
    let accs: Vec<Option<u32>> = log
        .records
        .iter()
        .map(|r| r.accuracy.map(f32::to_bits))
        .collect();
    let bits = runner.global().iter().map(|v| v.to_bits()).collect();
    (bits, losses, accs)
}

#[test]
fn golden_trajectory_identical_across_thread_counts() {
    let golden = apf_par::with_threads(1, trajectory);
    for t in [2usize, 7] {
        let got = apf_par::with_threads(t, trajectory);
        assert_eq!(
            golden.0, got.0,
            "final global model diverged at {t} threads"
        );
        assert_eq!(golden.1, got.1, "loss trajectory diverged at {t} threads");
        assert_eq!(
            golden.2, got.2,
            "accuracy trajectory diverged at {t} threads"
        );
    }
}
