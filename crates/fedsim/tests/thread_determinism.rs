//! Golden-trajectory determinism: a full federated run — parallel clients,
//! APF freezing, evaluation — must be bitwise identical at any
//! `APF_PAR_THREADS`. This is the end-to-end check behind the apf-par
//! determinism contract; the per-kernel checks live in apf-tensor and
//! apf-nn.
//!
//! The fixture itself is [`RunSpec::golden`], recorded through the shared
//! `apf-testkit` golden helper — the same spec+helper pair the `apf-net`
//! parity harness replays against a live parameter server.

use apf_fedsim::RunSpec;
use apf_testkit::golden::{run_recorded, GoldenOutcome};

fn trajectory() -> GoldenOutcome {
    run_recorded(&RunSpec::golden())
}

#[test]
fn golden_trajectory_identical_across_thread_counts() {
    let golden = apf_par::with_threads(1, trajectory);
    assert_eq!(golden.log.records.len(), RunSpec::golden().rounds);
    for t in [2usize, 7] {
        let got = apf_par::with_threads(t, trajectory);
        assert_eq!(
            golden.global_bits(),
            got.global_bits(),
            "final global model diverged at {t} threads"
        );
        assert_eq!(
            golden.trajectory(),
            got.trajectory(),
            "metric trajectory diverged at {t} threads"
        );
    }
}
