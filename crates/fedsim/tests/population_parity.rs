//! Population-runner parity: at full participation (`cohort = 0`) with the
//! dense dormant codec, the event-driven [`apf_fedsim::PopulationRunner`]
//! must be **bitwise identical** to the classic [`apf_fedsim::FlRunner`] on
//! the golden fixture — same metric trajectory, same final global model —
//! at any thread count. This pins the whole suspend/resume chain: dormant
//! client blobs (RNG + step counter + optimizer state), shell recycling,
//! the single shared §6.2 manager, and its per-round dormant encode/decode
//! hop all have to be lossless for this to hold.

use apf_fedsim::{RunSpec, Trajectory};
use apf_testkit::golden::{run_recorded, GoldenOutcome};

fn population_outcome(spec: &RunSpec) -> GoldenOutcome {
    let mut runner = spec.build_population_runner();
    runner.run();
    GoldenOutcome {
        log: runner.log().clone(),
        global: runner.global().to_vec(),
    }
}

#[test]
fn full_participation_dense_matches_classic_goldens_bitwise() {
    let spec = RunSpec::golden();
    assert_eq!(spec.cohort, 0, "golden fixture means full participation");
    let classic = apf_par::with_threads(1, || run_recorded(&spec));
    for t in [1usize, 2, 7] {
        let pop = apf_par::with_threads(t, || population_outcome(&spec));
        assert_eq!(
            classic.global_bits(),
            pop.global_bits(),
            "population global model diverged from FlRunner at {t} threads"
        );
        assert_eq!(
            classic.trajectory(),
            pop.trajectory(),
            "population trajectory diverged from FlRunner at {t} threads"
        );
    }
}

#[test]
fn small_shell_pool_is_invisible() {
    // Forcing multiple blocks per round (2 shells for 3 clients) exercises
    // shell re-binding *within* a round; the trajectory must not move.
    use apf_fedsim::{PopulationConfig, PopulationData, PopulationRunner};
    use apf_nn::{models, LrSchedule};

    let spec = RunSpec::golden();
    let classic = run_recorded(&spec);
    let hidden = spec.hidden;
    let train = spec.train_set();
    let parts = spec.partition_indices(&train);
    let cfg = PopulationConfig {
        fl: spec.fl_config(),
        registered: spec.clients,
        cohort: 0,
        codec: apf_quant::EmaCodec::Dense,
        shells: 2,
        apf: spec.apf_config().expect("golden uses APF"),
        wire_f16: false,
        optimizer: apf_fedsim::OptimizerKind::Sgd {
            lr: spec.lr,
            momentum: spec.momentum,
            weight_decay: spec.weight_decay,
        },
        schedule: LrSchedule::Constant(spec.lr),
    };
    let mut runner = PopulationRunner::new(
        cfg,
        move |seed| models::mlp("m", &[3 * 16 * 16, hidden, 10], seed),
        PopulationData::Shared { train, parts },
        spec.test_set(),
    );
    runner.run();
    let pop = GoldenOutcome {
        log: runner.log().clone(),
        global: runner.global().to_vec(),
    };
    assert_eq!(classic.global_bits(), pop.global_bits());
    assert_eq!(classic.trajectory(), pop.trajectory());
}

#[test]
fn sampled_cohort_is_deterministic_across_reruns_and_threads() {
    // With real subsampling the run no longer matches FlRunner (different
    // algorithm), but it must still be self-deterministic: rerun-identical
    // and thread-count-invariant.
    let spec = RunSpec {
        clients: 12,
        cohort: 4,
        rounds: 5,
        ..RunSpec::golden()
    };
    let a = apf_par::with_threads(1, || population_outcome(&spec));
    let b = apf_par::with_threads(1, || population_outcome(&spec));
    // Wall-clock fields are not deterministic; the trajectory (loss /
    // frozen / accuracy bits, byte counts) and the model bits are.
    assert_eq!(a.global_bits(), b.global_bits(), "rerun diverged");
    assert_eq!(a.trajectory(), b.trajectory(), "rerun diverged");
    let c = apf_par::with_threads(7, || population_outcome(&spec));
    assert_eq!(a.global_bits(), c.global_bits(), "threads changed the run");
    assert_eq!(a.trajectory(), c.trajectory());
    // Subsampling must actually engage: fewer bytes than full participation
    // would move (4 of 12 clients upload).
    let full = population_outcome(&RunSpec {
        clients: 12,
        rounds: 5,
        ..RunSpec::golden()
    });
    let sampled_up: u64 = a.log.records.iter().map(|r| r.bytes_up).sum();
    let full_up: u64 = full.log.records.iter().map(|r| r.bytes_up).sum();
    assert!(
        sampled_up * 2 < full_up,
        "sampled {sampled_up} vs full {full_up}: cohort not engaged"
    );
}

#[test]
fn trajectory_encoding_roundtrips_population_runs() {
    // The trajectory text format (what verify.sh's smoke stage diffs) must
    // capture population runs losslessly.
    let spec = RunSpec {
        clients: 8,
        cohort: 3,
        rounds: 3,
        ..RunSpec::golden()
    };
    let out = population_outcome(&spec);
    let t = out.trajectory();
    let decoded = Trajectory::decode(&t.encode()).expect("self-encoded trajectory");
    assert_eq!(t, decoded);
}
