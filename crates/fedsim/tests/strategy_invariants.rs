//! Property-based invariants over all synchronization strategies: byte
//! accounting is non-negative and bounded by full-model traffic, the global
//! model matches strategy semantics, and APF's client lockstep holds under
//! random trajectories. (On `apf-testkit`.)

use apf::{ApfConfig, ApfVariant};
use apf_fedsim::{ApfStrategy, Cmfl, FullSync, Gaia, PartialSync, SyncStrategy, TopK};
use apf_testkit::{prop_assert, prop_assert_eq, property, u64s, usizes};

/// Drives a strategy with scripted pseudo-random local trajectories and
/// returns the per-round comm reports.
fn drive(
    strategy: &mut dyn SyncStrategy,
    n: usize,
    clients: usize,
    rounds: u64,
    seed: u64,
) -> Vec<apf_fedsim::RoundComm> {
    let init = vec![0.0f32; n];
    strategy.init(&init, clients);
    let mut locals = vec![init.clone(); clients];
    let mut global = init;
    let weights = vec![1.0f32; clients];
    let mut out = Vec::new();
    for r in 0..rounds {
        for (i, l) in locals.iter_mut().enumerate() {
            for (j, v) in l.iter_mut().enumerate() {
                let h = apf_tensor::splitmix64(seed ^ (r * 7919 + i as u64 * 131 + j as u64));
                let noise = ((h % 1000) as f32 / 1000.0 - 0.5) * 0.2;
                let drift = if j % 3 == 0 { 0.02 } else { 0.0 };
                *v += drift + noise;
            }
            strategy.post_local_iteration(r, i, l);
        }
        out.push(strategy.sync_round(r, &mut locals, &weights, &mut global));
    }
    out
}

fn all_strategies(n: usize, seed: u64) -> Vec<Box<dyn SyncStrategy>> {
    let cfg = ApfConfig {
        check_every_rounds: 1,
        stability_threshold: 0.1,
        ema_alpha: 0.9,
        seed,
        ..ApfConfig::default()
    };
    let _ = n;
    vec![
        Box::new(FullSync::new()),
        Box::new(PartialSync::new(0.1, 0.9, 1)),
        Box::new(ApfStrategy::new(cfg).unwrap()),
        Box::new(
            ApfStrategy::new(ApfConfig {
                variant: ApfVariant::Sharp { prob: 0.3 },
                ..cfg
            })
            .unwrap(),
        ),
        Box::new(Gaia::new(0.01)),
        Box::new(Cmfl::new(0.8, 0.99)),
        Box::new(TopK::new(0.3)),
    ]
}

property! {
    [12]
    fn bytes_bounded_by_full_model_traffic(
        n in usizes(4..64),
        clients in usizes(1..5),
        rounds in u64s(1..12),
        seed in u64s(0..500),
    ) {
        for mut s in all_strategies(n, seed) {
            let reports = drive(s.as_mut(), n, clients, rounds, seed);
            let full = (clients * n * 8) as u64; // f32 up + down per client
            for (r, c) in reports.iter().enumerate() {
                // Sparse formats pay 8 bytes/scalar, so the ceiling is 2x
                // the dense full-model bill.
                prop_assert!(
                    c.bytes_up + c.bytes_down <= 2 * full * 2,
                    "{} round {}: {} bytes", s.name(), r, c.bytes_up + c.bytes_down
                );
                prop_assert!(c.max_client_up <= c.bytes_up.max(1));
                prop_assert!((0.0..=1.0).contains(&c.frozen_ratio), "{}", c.frozen_ratio);
            }
        }
    }

    [12]
    fn full_sync_strategies_keep_clients_identical(
        n in usizes(4..48),
        clients in usizes(2..5),
        rounds in u64s(1..10),
        seed in u64s(0..500),
    ) {
        // Strategies that re-distribute a consistent model must leave every
        // client bit-identical after each round.
        let cfg = ApfConfig {
            check_every_rounds: 1,
            stability_threshold: 0.1,
            ema_alpha: 0.9,
            seed,
            ..ApfConfig::default()
        };
        let strategies: Vec<Box<dyn SyncStrategy>> = vec![
            Box::new(FullSync::new()),
            Box::new(ApfStrategy::new(cfg).unwrap()),
            Box::new(Cmfl::new(0.8, 0.99)),
        ];
        for mut s in strategies {
            let init = vec![0.0f32; n];
            s.init(&init, clients);
            let mut locals = vec![init.clone(); clients];
            let mut global = init;
            let weights = vec![1.0f32; clients];
            for r in 0..rounds {
                for (i, l) in locals.iter_mut().enumerate() {
                    for (j, v) in l.iter_mut().enumerate() {
                        let h = apf_tensor::splitmix64(seed ^ (r * 31 + i as u64 * 7 + j as u64));
                        *v += ((h % 100) as f32 / 100.0) - 0.5;
                    }
                    s.post_local_iteration(r, i, l);
                }
                s.sync_round(r, &mut locals, &weights, &mut global);
                for l in &locals[1..] {
                    prop_assert_eq!(&locals[0], l, "{} diverged at round {}", s.name(), r);
                }
                prop_assert_eq!(&global, &locals[0], "{} global != locals", s.name());
            }
        }
    }

    [12]
    fn gaia_and_topk_never_lose_mass_silently(
        n in usizes(2..32),
        seed in u64s(0..500),
    ) {
        let _ = seed;
        // Single client: whatever the client learned must eventually reach
        // the global model (residual accumulation), so after enough rounds
        // of a constant drift the global tracks the local.
        for mut s in [
            Box::new(Gaia::new(0.05)) as Box<dyn SyncStrategy>,
            Box::new(TopK::new(0.5)),
        ] {
            let init = vec![1.0f32; n];
            s.init(&init, 1);
            let mut locals = vec![init.clone()];
            let mut global = init;
            for r in 0..30u64 {
                for v in locals[0].iter_mut() {
                    *v += 0.05;
                }
                s.sync_round(r, &mut locals, &[1.0], &mut global);
            }
            // Local has drifted by 1.5 total; global must have followed to
            // within the not-yet-shipped residual of a couple rounds.
            for (j, (&g, &l)) in global.iter().zip(&locals[0]).enumerate() {
                prop_assert!(
                    (l - g).abs() < 0.5,
                    "{}: scalar {} residual {} never shipped", s.name(), j, l - g
                );
            }
        }
    }
}
