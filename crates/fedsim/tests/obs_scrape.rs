//! Live-telemetry integration: scrape the HTTP endpoints *while* a
//! federated run is training, validate every `/metrics` exposition with the
//! in-repo Prometheus parser, check counter monotonicity across scrapes,
//! and round-trip `/snapshot` and `/series` through the in-tree JSON
//! parser.

use std::sync::mpsc;
use std::time::Duration;

use apf_data::Dataset;
use apf_fedsim::{json, FlConfig, FlRunner};
use apf_nn::models;
use apf_obs::{http_get, prometheus};

fn flat_images(n: usize, split: u64) -> Dataset {
    let ds = apf_data::synth_images_split(n, 1, split);
    Dataset::new(
        ds.inputs().reshape(&[ds.len(), 3 * 16 * 16]),
        ds.labels().to_vec(),
        10,
    )
}

fn mlp_factory(seed: u64) -> apf_nn::Sequential {
    models::mlp("m", &[3 * 16 * 16, 24, 10], seed)
}

fn runner(rounds: usize, serve: bool, ledger: Option<&std::path::Path>) -> FlRunner {
    let train = flat_images(120, 21);
    let test = flat_images(60, 22);
    let parts = apf_data::iid_partition(train.len(), 3, 7);
    let cfg = FlConfig {
        local_iters: 4,
        rounds,
        batch_size: 10,
        eval_every: 2,
        eval_batch: 30,
        seed: 5,
        parallel: false,
        ..FlConfig::default()
    };
    let mut b = FlRunner::builder(mlp_factory, cfg)
        .clients_from_partition(&train, &parts)
        .test_set(test);
    if serve {
        b = b.serve("127.0.0.1:0");
    }
    if let Some(path) = ledger {
        b = b.ledger(path);
    }
    b.build()
}

#[test]
fn concurrent_scrapes_during_training_are_valid_and_monotone() {
    let mut r = runner(12, true, None);
    let addr = r.obs_addr().expect("server bound");
    assert_eq!(http_get(addr, "/healthz").unwrap().0, 200);

    // Scrape continuously from another thread while the run trains.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let scraper = std::thread::spawn(move || {
        let mut last_rounds = f64::NEG_INFINITY;
        let mut last_bytes = f64::NEG_INFINITY;
        let mut scrapes = 0u32;
        loop {
            let (status, body) = http_get(addr, "/metrics").expect("scrape");
            assert_eq!(status, 200);
            let samples = prometheus::parse_text(&body)
                .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
            for (metric, last) in [
                ("fedsim_rounds_total", &mut last_rounds),
                ("fedsim_bytes_up_total", &mut last_bytes),
            ] {
                if let Some(s) = samples.iter().find(|s| s.name == metric) {
                    assert!(
                        s.value >= *last,
                        "{metric} went backwards: {} -> {}",
                        *last,
                        s.value
                    );
                    *last = s.value;
                }
            }
            scrapes += 1;
            if stop_rx.try_recv().is_ok() {
                return scrapes;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    let log = r.run().clone();
    stop_tx.send(()).unwrap();
    let scrapes = scraper.join().expect("scraper panicked");
    assert!(scrapes > 0);
    assert_eq!(log.records.len(), 12);

    // Final /metrics agrees with the run's own accounting.
    let (_, body) = http_get(addr, "/metrics").unwrap();
    let samples = prometheus::parse_text(&body).unwrap();
    let rounds = samples
        .iter()
        .find(|s| s.name == "fedsim_rounds_total")
        .expect("fedsim_rounds_total exposed");
    assert!(rounds.value >= 12.0, "rounds counter {}", rounds.value);

    // /snapshot round-trips through the in-tree JSON parser.
    let (status, body) = http_get(addr, "/snapshot").unwrap();
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap_or_else(|e| panic!("snapshot not JSON: {e}\n{body}"));
    assert_eq!(
        doc.get("run")
            .and_then(|r| r.get("model"))
            .and_then(json::Value::as_str),
        Some("m")
    );
    assert_eq!(doc.get("round").and_then(json::Value::as_u64), Some(11));
    assert_eq!(doc.get("completed"), Some(&json::Value::Bool(true)));
    let latest = doc.get("latest").expect("latest object");
    let loss = latest
        .get("fedsim.loss")
        .and_then(json::Value::as_f32)
        .expect("latest loss");
    assert!((loss - log.records[11].loss).abs() < 1e-6);

    // /series history matches the experiment log, point for point.
    let (status, body) = http_get(addr, "/series?name=fedsim.loss").unwrap();
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    let points = doc.get("points").and_then(json::Value::as_arr).unwrap();
    assert_eq!(points.len(), 12);
    for (p, rec) in points.iter().zip(&log.records) {
        let xy = p.as_arr().unwrap();
        assert_eq!(xy[0].as_u64(), Some(rec.round));
        assert!((xy[1].as_f32().unwrap() - rec.loss).abs() < 1e-6);
    }
}

#[test]
fn no_listener_without_opt_in() {
    let r = runner(1, false, None);
    assert!(r.obs_addr().is_none());
    assert!(r.obs_state().is_none());
}

#[test]
fn ledger_records_identical_reruns_identically() {
    let path = std::env::temp_dir().join("apf_fedsim_test_ledger.jsonl");
    let _ = std::fs::remove_file(&path);
    for _ in 0..2 {
        runner(4, false, Some(&path)).run();
    }
    let records = apf_fedsim::load_ledger(&path).unwrap();
    assert_eq!(records.len(), 2);
    let (a, b) = (&records[0], &records[1]);
    assert_eq!(a.config_digest, b.config_digest);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.total_bytes, b.total_bytes);
    // Bitwise series comparison: the accuracy series uses NaN for
    // unevaluated rounds, and NaN != NaN under f64 equality.
    for key in ["loss", "frozen_ratio", "cum_bytes", "accuracy"] {
        let (sa, sb) = (&a.series[key], &b.series[key]);
        assert_eq!(sa.len(), sb.len(), "{key}");
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{key}");
        }
    }
    assert_eq!(a.rounds, 4);
    assert!(a.total_bytes > 0);
    assert!(a.wall_secs > 0.0);
    assert_eq!(a.model, "m");
    assert_eq!(a.strategy, "fedavg");
    let _ = std::fs::remove_file(&path);
}
