//! From-scratch neural-network library for the APF reproduction.
//!
//! The paper trains LeNet-5, ResNet-18 and a 2-layer LSTM with PyTorch; this
//! crate provides the equivalent substrate in pure Rust: layers with manual
//! backward passes, a [`Sequential`] container with *named* parameter tensors
//! (the per-tensor names drive the Fig. 3 stability analysis), cross-entropy
//! loss, SGD/Adam optimizers with learning-rate schedules, and — crucially for
//! APF — *flat parameter views*: the whole model as one `Vec<f32>` of scalars,
//! which is the representation §3.2.2 of the paper operates on.
//!
//! # Parallelism
//!
//! Forward/backward passes inherit parallel matmul/conv kernels from
//! `apf-tensor`; optimizer steps and the FedProx proximal gradient are
//! additionally chunked over the `apf-par` pool for large flat vectors. All
//! of it is bitwise deterministic at any `APF_PAR_THREADS` (see the
//! `apf-par` crate docs for the contract).
//!
//! # Example
//!
//! ```
//! use apf_nn::{models, Mode};
//! use apf_tensor::Tensor;
//!
//! let mut model = models::mlp("m", &[4, 8, 3], 0);
//! let x = Tensor::zeros(&[2, 4]);
//! let logits = model.forward(x, Mode::Eval);
//! assert_eq!(logits.shape(), &[2, 3]);
//! ```

mod flat;
mod layer;
mod layers;
mod loss;
pub mod models;
mod optim;
mod sequential;
mod train;

pub use flat::{FlatSpec, ParamSpec};
pub use layer::{Layer, Mode};
pub use layers::{
    Activation, ActivationKind, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, LastStep,
    Linear, LstmLayer, MaxPool2d, ResidualBlock,
};
pub use loss::{accuracy, softmax, softmax_cross_entropy, softmax_in_place};
pub use optim::{Adam, LrSchedule, Optimizer, Sgd};
pub use sequential::Sequential;
pub use train::{evaluate, train_batch, Trainer};
