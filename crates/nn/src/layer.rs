//! The [`Layer`] trait: forward, backward, and named-parameter traversal.

use apf_tensor::Rng;
use apf_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Training mode enables dropout masks and batch-statistics in
/// [`crate::BatchNorm2d`]; evaluation mode uses running statistics and
/// disables stochastic regularizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic regularizers active, batch statistics used.
    Train,
    /// Evaluation: deterministic forward pass.
    Eval,
}

/// A neural-network layer with a manual backward pass.
///
/// Layers cache whatever they need during [`Layer::forward`] and consume the
/// cache in [`Layer::backward`]. Parameter gradients *accumulate* into each
/// layer's grad tensors; call sites zero them between steps via
/// [`crate::Sequential::zero_grads`].
///
/// The `visit_params` traversal yields `(name, trainable, value, grad)` for
/// every parameter tensor in a deterministic order. Non-trainable entries are
/// buffers (e.g. batch-norm running statistics) that participate in
/// synchronization and freezing but are never touched by optimizers.
pub trait Layer: Send {
    /// Runs the layer forward, caching state for the next `backward` call.
    fn forward(&mut self, x: Tensor, mode: Mode, rng: &mut Rng) -> Tensor;

    /// Propagates `grad` (w.r.t. this layer's output) backward, accumulating
    /// parameter gradients and returning the gradient w.r.t. the input.
    ///
    /// # Panics
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad: Tensor) -> Tensor;

    /// Visits every parameter tensor as `(name, trainable, value, grad)`.
    ///
    /// The default is a no-op for parameterless layers.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {}

    /// A short human-readable kind tag, e.g. `"linear"`.
    fn kind(&self) -> &'static str;
}
