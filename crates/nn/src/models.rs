//! Model zoo: the architectures of the paper's evaluation (§7.1, Fig. 9), at
//! laptop scale, plus a generic MLP for quick tests.
//!
//! | Paper model | Here | Input | Notes |
//! |---|---|---|---|
//! | LeNet-5 (CIFAR-10) | [`lenet5`] | `[N,3,16,16]` | classic conv-pool-fc stack |
//! | ResNet-18 (CIFAR-10) | [`resnet`] | `[N,3,16,16]` | residual CNN, deliberately over-parameterized for the synthetic task (reproduces the Fig. 9 random-walk behaviour) |
//! | VGG (Fig. 9) | [`vgg`] | `[N,3,16,16]` | plain conv-conv-pool stack with a wide FC head, the most over-parameterized model |
//! | 2-layer LSTM, hidden 64 (KWS) | [`lstm_classifier`] | `[N,20,10]` | same depth/width as the paper |

use apf_tensor::{seeded_rng, ConvSpec};

use crate::layers::{
    Activation, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, LastStep, Linear, LstmLayer,
    MaxPool2d, ResidualBlock,
};
use crate::sequential::Sequential;

/// Number of classes in all bundled tasks.
pub const NUM_CLASSES: usize = 10;
/// Image side for the synthetic CIFAR-10 stand-in.
pub const IMAGE_SIDE: usize = 16;
/// Image channels.
pub const IMAGE_CHANNELS: usize = 3;
/// Sequence length for the synthetic keyword-spotting stand-in.
pub const SEQ_LEN: usize = 20;
/// Feature dimension per sequence step.
pub const SEQ_FEATURES: usize = 10;

/// LeNet-5 for `[N, 3, 16, 16]` inputs.
///
/// The layer/tensor names (`conv1-w`, `fc2-b`, ...) follow Fig. 3 of the
/// paper so the per-tensor stability analysis prints familiar labels.
pub fn lenet5(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new("lenet5", seed)
        .push(Conv2d::new(
            "conv1",
            ConvSpec {
                in_channels: IMAGE_CHANNELS,
                out_channels: 6,
                kernel: 5,
                stride: 1,
                padding: 2,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(MaxPool2d::new(2, 2)) // 16x16 -> 8x8
        .push(Conv2d::new(
            "conv2",
            ConvSpec {
                in_channels: 6,
                out_channels: 16,
                kernel: 5,
                stride: 1,
                padding: 0,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(MaxPool2d::new(2, 2)) // 4x4 -> 2x2
        .push(Flatten::new())
        .push(Linear::new("fc1", 16 * 2 * 2, 120, &mut rng))
        .push(Activation::relu())
        .push(Linear::new("fc2", 120, 84, &mut rng))
        .push(Activation::relu())
        .push(Linear::new("fc3", 84, NUM_CLASSES, &mut rng))
}

/// A residual CNN standing in for ResNet-18 on `[N, 3, 16, 16]` inputs.
///
/// Three basic blocks over two widths (16, 32) after a stem convolution;
/// ~40k parameters — far more capacity than the synthetic task needs, which
/// is exactly the over-parameterized regime §5 of the paper targets with
/// APF++.
pub fn resnet(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new("resnet", seed)
        .push(Conv2d::new(
            "stem",
            ConvSpec {
                in_channels: IMAGE_CHANNELS,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &mut rng,
        ))
        .push(BatchNorm2d::new("stem-bn", 16))
        .push(Activation::relu())
        .push(ResidualBlock::new("rb1", 16, 16, 1, &mut rng))
        .push(ResidualBlock::new("rb2", 16, 32, 2, &mut rng)) // 16x16 -> 8x8
        .push(ResidualBlock::new("rb3", 32, 32, 1, &mut rng))
        .push(GlobalAvgPool::new())
        .push(Linear::new("fc", 32, NUM_CLASSES, &mut rng))
}

/// A VGG-style plain CNN for `[N, 3, 16, 16]` inputs (Fig. 9 of the paper
/// also samples VGG parameters when discussing over-parameterized models):
/// two conv-conv-pool stages followed by a wide fully connected head —
/// ~90k parameters, the most over-parameterized model in the zoo.
pub fn vgg(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new("vgg", seed)
        .push(Conv2d::new(
            "conv1a",
            ConvSpec {
                in_channels: IMAGE_CHANNELS,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(Conv2d::new(
            "conv1b",
            ConvSpec {
                in_channels: 16,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(MaxPool2d::new(2, 2)) // 16x16 -> 8x8
        .push(Conv2d::new(
            "conv2a",
            ConvSpec {
                in_channels: 16,
                out_channels: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(Conv2d::new(
            "conv2b",
            ConvSpec {
                in_channels: 32,
                out_channels: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            &mut rng,
        ))
        .push(Activation::relu())
        .push(MaxPool2d::new(2, 2)) // 8x8 -> 4x4
        .push(Flatten::new())
        .push(Linear::new("fc1", 32 * 4 * 4, 128, &mut rng))
        .push(Activation::relu())
        .push(Dropout::new(0.3))
        .push(Linear::new("fc2", 128, NUM_CLASSES, &mut rng))
}

/// A 2-layer LSTM classifier (hidden size 64, as §7.1) for `[N, 20, 10]`
/// sequences.
pub fn lstm_classifier(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new("lstm", seed)
        .push(LstmLayer::new("lstm1", SEQ_FEATURES, 64, &mut rng))
        .push(LstmLayer::new("lstm2", 64, 64, &mut rng))
        .push(LastStep::new())
        .push(Linear::new("fc", 64, NUM_CLASSES, &mut rng))
}

/// A generic ReLU MLP: `dims = [in, hidden..., out]`.
///
/// # Panics
/// Panics if `dims` has fewer than two entries.
pub fn mlp(name: &str, dims: &[usize], seed: u64) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut rng = seeded_rng(seed);
    let mut model = Sequential::new(name, seed);
    for (i, win) in dims.windows(2).enumerate() {
        model = model.push(Linear::new(
            &format!("fc{}", i + 1),
            win[0],
            win[1],
            &mut rng,
        ));
        if i + 2 < dims.len() {
            model = model.push(Activation::relu());
        }
    }
    model
}

/// The error returned by [`by_name`] for an unrecognized model name.
///
/// `Display` lists the valid names so CLI callers can print it as usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown model {:?}; expected one of: {}",
            self.name,
            MODEL_NAMES.join(" | ")
        )
    }
}

impl std::error::Error for ModelError {}

/// The model names [`by_name`] accepts.
pub const MODEL_NAMES: [&str; 4] = ["lenet5", "resnet", "vgg", "lstm"];

/// Builds one of the bundled models by name.
///
/// # Errors
/// Returns [`ModelError`] for a name outside [`MODEL_NAMES`].
pub fn by_name(name: &str, seed: u64) -> Result<Sequential, ModelError> {
    match name {
        "lenet5" => Ok(lenet5(seed)),
        "resnet" => Ok(resnet(seed)),
        "vgg" => Ok(vgg(seed)),
        "lstm" => Ok(lstm_classifier(seed)),
        other => Err(ModelError {
            name: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use apf_tensor::Tensor;

    #[test]
    fn lenet_shapes_and_names() {
        let mut m = lenet5(0);
        let y = m.forward(Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 10]);
        let spec = m.flat_spec();
        let names: Vec<&str> = spec.params().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "conv1-w", "conv1-b", "conv2-w", "conv2-b", "fc1-w", "fc1-b", "fc2-w", "fc2-b",
                "fc3-w", "fc3-b"
            ]
        );
        // 10 tensors, like the paper's LeNet-5 (Fig. 3 caption).
        assert_eq!(spec.params().len(), 10);
    }

    #[test]
    fn lenet_param_count() {
        let mut m = lenet5(0);
        // conv1: 6*3*25+6, conv2: 16*6*25+16, fc1: 120*64+120,
        // fc2: 84*120+84, fc3: 10*84+10.
        let expected =
            (6 * 75 + 6) + (16 * 150 + 16) + (120 * 64 + 120) + (84 * 120 + 84) + (10 * 84 + 10);
        assert_eq!(m.num_params(), expected);
    }

    #[test]
    fn resnet_shapes_and_overparameterization() {
        let mut m = resnet(1);
        let y = m.forward(Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 10]);
        let mut lenet = lenet5(1);
        assert!(
            m.num_params() > lenet.num_params(),
            "resnet should be larger"
        );
    }

    #[test]
    fn lstm_shapes() {
        let mut m = lstm_classifier(2);
        let y = m.forward(Tensor::zeros(&[3, 20, 10]), Mode::Eval);
        assert_eq!(y.shape(), &[3, 10]);
        // 2 recurrent layers, hidden 64, like the paper.
        assert!(m.num_params() > 50_000);
    }

    #[test]
    fn by_name_dispatch() {
        assert_eq!(by_name("lenet5", 0).unwrap().name(), "lenet5");
        assert_eq!(by_name("resnet", 0).unwrap().name(), "resnet");
        assert_eq!(by_name("vgg", 0).unwrap().name(), "vgg");
        assert_eq!(by_name("lstm", 0).unwrap().name(), "lstm");
    }

    #[test]
    fn vgg_is_most_overparameterized() {
        let mut v = vgg(0);
        let y = v.forward(Tensor::zeros(&[1, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 10]);
        let mut r = resnet(0);
        assert!(v.num_params() > r.num_params());
        assert!(v.num_params() > 80_000);
    }

    #[test]
    fn by_name_rejects_unknown_with_usage() {
        let err = by_name("transformer", 0).unwrap_err();
        assert_eq!(err.name, "transformer");
        let msg = err.to_string();
        for name in MODEL_NAMES {
            assert!(msg.contains(name), "usage message missing {name}: {msg}");
        }
    }

    #[test]
    fn mlp_dims() {
        let mut m = mlp("m", &[4, 16, 8, 3], 0);
        let y = m.forward(Tensor::zeros(&[1, 4]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(m.num_params(), 4 * 16 + 16 + 16 * 8 + 8 + 8 * 3 + 3);
    }
}
