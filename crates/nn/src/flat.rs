//! Flat parameter views: the model as one vector of scalars.
//!
//! APF manipulates the model at scalar granularity (§3.2.2): "that vector can
//! be obtained by first expanding all the model tensors into a vector and
//! then concatenating those vectors together". [`FlatSpec`] records that
//! concatenation order once, so per-tensor names can be mapped back onto
//! ranges of the flat vector (used by the Fig. 3 per-layer analysis).

use apf::FreezeMask;

/// One named parameter tensor inside the flat concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Tensor name, e.g. `"conv1-w"`.
    pub name: String,
    /// Offset of the first scalar in the flat vector.
    pub offset: usize,
    /// Number of scalars.
    pub len: usize,
    /// Whether optimizers may update these scalars (false for buffers such
    /// as batch-norm running statistics).
    pub trainable: bool,
}

/// The full layout of a model's flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatSpec {
    params: Vec<ParamSpec>,
    total: usize,
}

impl FlatSpec {
    /// Builds a spec from `(name, len, trainable)` triples in traversal order.
    pub fn from_entries(entries: impl IntoIterator<Item = (String, usize, bool)>) -> Self {
        let mut params = Vec::new();
        let mut offset = 0;
        for (name, len, trainable) in entries {
            params.push(ParamSpec {
                name,
                offset,
                len,
                trainable,
            });
            offset += len;
        }
        FlatSpec {
            params,
            total: offset,
        }
    }

    /// Total number of scalars.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// The named tensors in concatenation order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Looks up a tensor range by name.
    pub fn get(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// A per-scalar trainability mask of length [`FlatSpec::total_len`].
    pub fn trainable_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.total];
        for p in &self.params {
            if p.trainable {
                mask[p.offset..p.offset + p.len].fill(true);
            }
        }
        mask
    }

    /// The bit-packed freeze mask optimizers consume: buffer scalars
    /// (batch-norm running statistics) frozen, everything else unfrozen —
    /// the packed complement of [`FlatSpec::trainable_mask`].
    pub fn freeze_mask(&self) -> FreezeMask {
        let mut mask = FreezeMask::all_frozen(self.total);
        for p in &self.params {
            if p.trainable {
                for j in p.offset..p.offset + p.len {
                    mask.set(j, false);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlatSpec {
        FlatSpec::from_entries(vec![
            ("conv1-w".to_owned(), 4, true),
            ("conv1-b".to_owned(), 2, true),
            ("bn-rm".to_owned(), 2, false),
        ])
    }

    #[test]
    fn offsets_accumulate() {
        let s = spec();
        assert_eq!(s.total_len(), 8);
        assert_eq!(s.get("conv1-b").unwrap().offset, 4);
        assert_eq!(s.get("bn-rm").unwrap().offset, 6);
        assert!(s.get("nope").is_none());
    }

    #[test]
    fn trainable_mask_marks_buffers() {
        let m = spec().trainable_mask();
        assert_eq!(m, vec![true, true, true, true, true, true, false, false]);
    }

    #[test]
    fn freeze_mask_is_packed_complement_of_trainable() {
        let s = spec();
        let frozen = s.freeze_mask();
        let trainable = s.trainable_mask();
        assert_eq!(frozen.len(), s.total_len());
        for (j, &t) in trainable.iter().enumerate() {
            assert_eq!(frozen.is_frozen(j), !t, "scalar {j}");
        }
    }
}
