//! Optimizers operating on flat parameter/gradient vectors, plus
//! learning-rate schedules.
//!
//! The paper's setup (§7.1): Adam for LeNet-5, SGD for ResNet-18 and LSTM,
//! with weight decay 0.01; §7.8 additionally evaluates a multiplicative
//! learning-rate decay.
//!
//! Optimizer steps are elementwise over the flat vector, so large models
//! update in parallel chunks over the `apf-par` pool; every scalar's update
//! uses only its own index, making results bitwise identical at any
//! `APF_PAR_THREADS`.
//!
//! Frozen scalars are skipped at *run* granularity: the bit-packed
//! [`FreezeMask`] is walked word-at-a-time, so an all-frozen 64-bit word
//! costs one compare and unfrozen stretches run dense inner loops. Because
//! the per-scalar arithmetic is unchanged and skipped scalars were never
//! touched by the dense path either, the fast path is bitwise identical to
//! the per-scalar reference (selectable with `APF_MASKED_STEP=0`).

use apf::FreezeMask;

/// Minimum scalars before an optimizer step is dispatched to the pool.
const PAR_STEP_MIN: usize = 1 << 15;

/// Whether the run-skipping masked step paths are enabled (`APF_MASKED_STEP`,
/// default on; set `0` to force the per-scalar dense reference). Cached after
/// the first read: 0 = unknown, 1 = off, 2 = on.
fn masked_step_enabled() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static MASKED: AtomicU8 = AtomicU8::new(0);
    match MASKED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("APF_MASKED_STEP").map_or(true, |v| v != "0");
            MASKED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// One chunk of a plain (no-momentum) SGD step over the global scalar range
/// `off..off + p.len()`.
fn sgd_chunk_plain(
    lr: f32,
    wd: f32,
    p: &mut [f32],
    g: &[f32],
    frozen: &FreezeMask,
    off: usize,
    masked: bool,
) {
    if masked {
        frozen.for_each_unfrozen_run_in(off, off + p.len(), |s, e| {
            for i in s - off..e - off {
                p[i] -= lr * (g[i] + wd * p[i]);
            }
        });
        return;
    }
    for i in 0..p.len() {
        if frozen.is_frozen(off + i) {
            continue;
        }
        p[i] -= lr * (g[i] + wd * p[i]);
    }
}

/// One chunk of a momentum SGD step over the global range `off..`.
#[allow(clippy::too_many_arguments)]
fn sgd_chunk_momentum(
    lr: f32,
    momentum: f32,
    wd: f32,
    p: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    frozen: &FreezeMask,
    off: usize,
    masked: bool,
) {
    if masked {
        frozen.for_each_unfrozen_run_in(off, off + p.len(), |s, e| {
            for i in s - off..e - off {
                let grad = g[i] + wd * p[i];
                let vel = momentum * v[i] + grad;
                v[i] = vel;
                p[i] -= lr * vel;
            }
        });
        return;
    }
    for i in 0..p.len() {
        if frozen.is_frozen(off + i) {
            continue;
        }
        let grad = g[i] + wd * p[i];
        let vel = momentum * v[i] + grad;
        v[i] = vel;
        p[i] -= lr * vel;
    }
}

/// One chunk of an Adam step (`b1t`/`b2t` are the bias corrections) over the
/// global range `off..`.
#[allow(clippy::too_many_arguments)]
fn adam_chunk(
    lr: f32,
    betas: (f32, f32),
    eps: f32,
    wd: f32,
    corr: (f32, f32),
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    frozen: &FreezeMask,
    off: usize,
    masked: bool,
) {
    let (beta1, beta2) = betas;
    let (b1t, b2t) = corr;
    if masked {
        frozen.for_each_unfrozen_run_in(off, off + p.len(), |s, e| {
            for i in s - off..e - off {
                let grad = g[i] + wd * p[i];
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
                v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
        return;
    }
    for i in 0..p.len() {
        if frozen.is_frozen(off + i) {
            continue;
        }
        let grad = g[i] + wd * p[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
        v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
        let mhat = m[i] / b1t;
        let vhat = v[i] / b2t;
        p[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

/// A learning-rate schedule mapping a step index to a learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The same rate forever.
    Constant(f32),
    /// `initial * factor^(step / every)`: multiply by `factor` once every
    /// `every` steps (the paper's "multiply by 0.99 every 10 epochs").
    Multiplicative {
        /// Rate at step 0.
        initial: f32,
        /// Per-interval multiplier (e.g. 0.99).
        factor: f32,
        /// Interval length in steps.
        every: usize,
    },
    /// `initial / sqrt(1 + step)`: the `O(1/sqrt(T))` choice that satisfies
    /// the convergence condition of Theorem 2 (Eq. 16).
    InverseSqrt {
        /// Rate at step 0.
        initial: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Multiplicative {
                initial,
                factor,
                every,
            } => initial * factor.powi((step / every.max(1)) as i32),
            LrSchedule::InverseSqrt { initial } => initial / (1.0 + step as f32).sqrt(),
        }
    }
}

/// An optimizer updating a flat parameter vector in place.
///
/// `frozen` marks scalars optimizers must *not* touch — buffer scalars
/// (batch-norm running statistics) and anything else the caller wants
/// skipped entirely: no update, no weight decay, no momentum/moment state
/// change (see [`crate::FlatSpec::freeze_mask`]).
pub trait Optimizer: Send {
    /// Applies one update step.
    ///
    /// # Panics
    /// Implementations panic if `params`, `grads` and `frozen` lengths
    /// disagree.
    fn step(&mut self, params: &mut [f32], grads: &[f32], frozen: &FreezeMask);

    /// Overrides the current learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Clears momentum/moment state (used when a client is reinitialized).
    fn reset_state(&mut self);

    /// Serializes the optimizer's mutable state (momentum/moments/step
    /// counters) into a flat `f32` vector, for suspending a client to
    /// compact dormant storage. Stateless optimizers return an empty
    /// vector. Counters are stored as raw bit patterns, so the round-trip
    /// through [`Optimizer::import_state`] is exact.
    fn export_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores state captured by [`Optimizer::export_state`]. Passing an
    /// empty slice resets to the fresh state.
    ///
    /// # Panics
    /// Implementations panic when `state` has an incompatible layout.
    fn import_state(&mut self, state: &[f32]) {
        assert!(
            state.is_empty(),
            "this optimizer carries no importable state"
        );
        self.reset_state();
    }
}

/// Stochastic gradient descent with classical momentum and decoupled-style
/// L2 weight decay (`grad + wd * param`).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates plain SGD (no momentum, no decay).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], frozen: &FreezeMask) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), frozen.len(), "param/mask length mismatch");
        if self.momentum != 0.0 && self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let (lr, momentum, wd) = (self.lr, self.momentum, self.weight_decay);
        let masked = masked_step_enabled();
        let serial = apf_par::threads() <= 1 || params.len() < PAR_STEP_MIN;
        if momentum != 0.0 {
            if serial {
                sgd_chunk_momentum(
                    lr,
                    momentum,
                    wd,
                    params,
                    &mut self.velocity,
                    grads,
                    frozen,
                    0,
                    masked,
                );
                return;
            }
            let chunk = apf_par::chunk_len(params.len());
            apf_par::scope(|s| {
                for (ci, ((p, v), g)) in params
                    .chunks_mut(chunk)
                    .zip(self.velocity.chunks_mut(chunk))
                    .zip(grads.chunks(chunk))
                    .enumerate()
                {
                    let off = ci * chunk;
                    s.spawn(move || {
                        sgd_chunk_momentum(lr, momentum, wd, p, v, g, frozen, off, masked)
                    });
                }
            });
        } else if serial {
            sgd_chunk_plain(lr, wd, params, grads, frozen, 0, masked);
        } else {
            let chunk = apf_par::chunk_len(params.len());
            apf_par::scope(|s| {
                for (ci, (p, g)) in params
                    .chunks_mut(chunk)
                    .zip(grads.chunks(chunk))
                    .enumerate()
                {
                    let off = ci * chunk;
                    s.spawn(move || sgd_chunk_plain(lr, wd, p, g, frozen, off, masked));
                }
            });
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn reset_state(&mut self) {
        self.velocity.clear();
    }

    fn export_state(&self) -> Vec<f32> {
        self.velocity.clone()
    }

    fn import_state(&mut self, state: &[f32]) {
        self.velocity.clear();
        self.velocity.extend_from_slice(state);
    }
}

/// Adam (Kingma & Ba) with L2 weight decay folded into the gradient,
/// matching PyTorch's `torch.optim.Adam(weight_decay=...)` semantics used by
/// the paper for LeNet-5.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32], frozen: &FreezeMask) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), frozen.len(), "param/mask length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let corr = (
            1.0 - self.beta1.powi(self.t as i32),
            1.0 - self.beta2.powi(self.t as i32),
        );
        let (lr, betas, eps, wd) = (
            self.lr,
            (self.beta1, self.beta2),
            self.eps,
            self.weight_decay,
        );
        let masked = masked_step_enabled();
        if apf_par::threads() <= 1 || params.len() < PAR_STEP_MIN {
            adam_chunk(
                lr,
                betas,
                eps,
                wd,
                corr,
                params,
                &mut self.m,
                &mut self.v,
                grads,
                frozen,
                0,
                masked,
            );
            return;
        }
        let chunk = apf_par::chunk_len(params.len());
        apf_par::scope(|s| {
            for (ci, (((p, m), v), g)) in params
                .chunks_mut(chunk)
                .zip(self.m.chunks_mut(chunk))
                .zip(self.v.chunks_mut(chunk))
                .zip(grads.chunks(chunk))
                .enumerate()
            {
                let off = ci * chunk;
                s.spawn(move || {
                    adam_chunk(lr, betas, eps, wd, corr, p, m, v, g, frozen, off, masked)
                });
            }
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn reset_state(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn export_state(&self) -> Vec<f32> {
        if self.m.is_empty() {
            return Vec::new();
        }
        // Layout: [t_lo_bits, t_hi_bits, m..., v...] — the step counter is
        // carried as raw bit patterns, so the round-trip is exact.
        let mut out = Vec::with_capacity(2 + self.m.len() + self.v.len());
        out.push(f32::from_bits(self.t as u32));
        out.push(f32::from_bits((self.t >> 32) as u32));
        out.extend_from_slice(&self.m);
        out.extend_from_slice(&self.v);
        out
    }

    fn import_state(&mut self, state: &[f32]) {
        if state.is_empty() {
            self.reset_state();
            return;
        }
        assert!(
            state.len() >= 2 && (state.len() - 2).is_multiple_of(2),
            "malformed Adam state (len {})",
            state.len()
        );
        let n = (state.len() - 2) / 2;
        self.t = u64::from(state[0].to_bits()) | (u64::from(state[1].to_bits()) << 32);
        self.m.clear();
        self.m.extend_from_slice(&state[2..2 + n]);
        self.v.clear();
        self.v.extend_from_slice(&state[2 + n..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn none_frozen(n: usize) -> FreezeMask {
        FreezeMask::all_unfrozen(n)
    }

    #[test]
    fn sgd_descends_quadratic() {
        // f(x) = x^2, grad = 2x.
        let mut x = vec![10.0f32];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g, &none_frozen(1));
        }
        assert!(x[0].abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut x = vec![10.0f32];
            let mut opt = Sgd::new(0.01).with_momentum(momentum);
            for _ in 0..50 {
                let g = vec![2.0 * x[0]];
                opt.step(&mut x, &g, &none_frozen(1));
            }
            x[0]
        };
        assert!(run(0.9).abs() < run(0.0).abs());
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut x = vec![1.0f32];
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        opt.step(&mut x, &[0.0], &none_frozen(1));
        assert!((x[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_scalars_untouched() {
        let mut x = vec![1.0f32, 1.0];
        let g = vec![1.0f32, 1.0];
        let mask = FreezeMask::from_fn(2, |j| j == 1);
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.1);
        sgd.step(&mut x, &g, &mask);
        assert_ne!(x[0], 1.0);
        assert_eq!(x[1], 1.0);
        let mut adam = Adam::new(0.1).with_weight_decay(0.1);
        let mut y = vec![1.0f32, 1.0];
        adam.step(&mut y, &g, &mask);
        assert_ne!(y[0], 1.0);
        assert_eq!(y[1], 1.0);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut x = vec![3.0f32];
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g, &none_frozen(1));
        }
        assert!(x[0].abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step is ~lr regardless of
        // gradient magnitude.
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.05);
        opt.step(&mut x, &[1e-4], &none_frozen(1));
        assert!((x[0].abs() - 0.05).abs() < 1e-3, "step {}", x[0]);
    }

    #[test]
    fn schedules() {
        let c = LrSchedule::Constant(0.1);
        assert_eq!(c.lr_at(0), 0.1);
        assert_eq!(c.lr_at(1000), 0.1);
        let m = LrSchedule::Multiplicative {
            initial: 1.0,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(m.lr_at(0), 1.0);
        assert_eq!(m.lr_at(9), 1.0);
        assert_eq!(m.lr_at(10), 0.5);
        assert_eq!(m.lr_at(25), 0.25);
        let i = LrSchedule::InverseSqrt { initial: 1.0 };
        assert_eq!(i.lr_at(0), 1.0);
        assert!((i.lr_at(3) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn steps_bitwise_identical_across_thread_counts() {
        // Large enough to cross PAR_STEP_MIN so the pool path actually runs.
        let n = PAR_STEP_MIN + 100;
        let params: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.013).sin()).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.031).cos()).collect();
        let mask = FreezeMask::from_fn(n, |i| i % 17 == 0);
        let run = |t: usize| {
            apf_par::with_threads(t, || {
                let mut sp = params.clone();
                let mut sgd = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(0.01);
                sgd.step(&mut sp, &grads, &mask);
                sgd.step(&mut sp, &grads, &mask);
                let mut ap = params.clone();
                let mut adam = Adam::new(0.05).with_weight_decay(0.01);
                adam.step(&mut ap, &grads, &mask);
                adam.step(&mut ap, &grads, &mask);
                (sp, ap)
            })
        };
        let (sgd1, adam1) = run(1);
        for t in [2usize, 4, 7] {
            let (sgd_t, adam_t) = run(t);
            assert_eq!(sgd1, sgd_t, "sgd threads={t}");
            assert_eq!(adam1, adam_t, "adam threads={t}");
        }
    }

    #[test]
    fn run_skipping_matches_per_scalar_reference() {
        // The run-based fast path against the dense chunk functions forced
        // into per-scalar mode — exact equality, mixed/all-frozen words
        // included (scalars 64..128 form an all-frozen word).
        let n = 300;
        let params: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.017).sin()).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.029).cos()).collect();
        let mask = FreezeMask::from_fn(n, |i| (64..128).contains(&i) || i % 5 == 0);
        let mut fast = params.clone();
        let mut fast_v = vec![0.0f32; n];
        sgd_chunk_momentum(
            0.05,
            0.9,
            0.01,
            &mut fast,
            &mut fast_v,
            &grads,
            &mask,
            0,
            true,
        );
        let mut dense = params.clone();
        let mut dense_v = vec![0.0f32; n];
        sgd_chunk_momentum(
            0.05,
            0.9,
            0.01,
            &mut dense,
            &mut dense_v,
            &grads,
            &mask,
            0,
            false,
        );
        assert_eq!(fast, dense);
        assert_eq!(fast_v, dense_v);
        let corr = (1.0 - 0.9f32, 1.0 - 0.999f32);
        let (mut fa, mut fm, mut fv) = (params.clone(), vec![0.0f32; n], vec![0.0f32; n]);
        adam_chunk(
            0.05,
            (0.9, 0.999),
            1e-8,
            0.01,
            corr,
            &mut fa,
            &mut fm,
            &mut fv,
            &grads,
            &mask,
            0,
            true,
        );
        let (mut da, mut dm, mut dv) = (params.clone(), vec![0.0f32; n], vec![0.0f32; n]);
        adam_chunk(
            0.05,
            (0.9, 0.999),
            1e-8,
            0.01,
            corr,
            &mut da,
            &mut dm,
            &mut dv,
            &grads,
            &mask,
            0,
            false,
        );
        assert_eq!(fa, da);
        assert_eq!(fm, dm);
        assert_eq!(fv, dv);
    }

    #[test]
    fn exported_state_resumes_bitwise_identically() {
        let grads = [0.3f32, -0.7, 1.1, 0.05];
        let mask = none_frozen(4);
        // Run a reference optimizer straight through; run a second one that is
        // suspended/resumed mid-stream via export_state/import_state.
        for (mut reference, mut resumed) in [
            (
                Box::new(Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-3))
                    as Box<dyn Optimizer>,
                Box::new(Sgd::new(0.1).with_momentum(0.9).with_weight_decay(1e-3))
                    as Box<dyn Optimizer>,
            ),
            (
                Box::new(Adam::new(0.05)) as Box<dyn Optimizer>,
                Box::new(Adam::new(0.05)) as Box<dyn Optimizer>,
            ),
        ] {
            let mut a = vec![1.0f32, -2.0, 0.5, 3.0];
            let mut b = a.clone();
            for _ in 0..3 {
                reference.step(&mut a, &grads, &mask);
                resumed.step(&mut b, &grads, &mask);
            }
            let blob = resumed.export_state();
            resumed.reset_state(); // clobber, then restore
            resumed.import_state(&blob);
            for _ in 0..3 {
                reference.step(&mut a, &grads, &mask);
                resumed.step(&mut b, &grads, &mask);
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_state_import_resets() {
        let mut opt = Adam::new(0.05);
        let mut x = vec![1.0f32, 2.0];
        opt.step(&mut x, &[0.5, 0.5], &none_frozen(2));
        assert!(!opt.export_state().is_empty());
        opt.import_state(&[]);
        assert!(opt.export_state().is_empty());
    }

    #[test]
    fn reset_state_clears_momentum() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut x = vec![1.0f32];
        opt.step(&mut x, &[1.0], &none_frozen(1));
        opt.reset_state();
        let mut y = vec![1.0f32];
        let mut fresh = Sgd::new(0.1).with_momentum(0.9);
        fresh.step(&mut y, &[1.0], &none_frozen(1));
        let mut x2 = vec![1.0f32];
        opt.step(&mut x2, &[1.0], &none_frozen(1));
        assert_eq!(x2, y);
    }
}
