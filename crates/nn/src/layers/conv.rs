//! Convolutional layer wrapping the fused im2col kernels of `apf-tensor`.

use apf_tensor::Rng;
use apf_tensor::{conv2d_backward_fused, conv2d_forward_fused, kaiming_uniform, ConvSpec, Tensor};

use crate::layer::{Layer, Mode};

/// A 2-D convolution layer with square kernels.
///
/// Weight is stored pre-flattened as `[out_channels, in_channels*k*k]`;
/// parameter names are `"<name>-w"` / `"<name>-b"` (cf. `conv1-w` in Fig. 3
/// of the paper).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    spec: ConvSpec,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    // The forward input, kept for the fused backward pass (which re-derives
    // im2col entries from it instead of caching the much larger `cols`).
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform weights.
    pub fn new(name: &str, spec: ConvSpec, rng: &mut Rng) -> Self {
        let fan_in = spec.in_channels * spec.kernel * spec.kernel;
        Conv2d {
            name: name.to_owned(),
            spec,
            weight: kaiming_uniform(&[spec.out_channels, fan_in], fan_in, rng),
            bias: Tensor::zeros(&[spec.out_channels]),
            grad_weight: Tensor::zeros(&[spec.out_channels, fan_in]),
            grad_bias: Tensor::zeros(&[spec.out_channels]),
            cached_input: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        assert_eq!(x.shape().len(), 4, "conv2d expects [N,C,H,W]");
        let out = conv2d_forward_fused(&x, &self.weight, &self.bias, &self.spec);
        // Replace-and-recycle so eval-only loops return the stale cached
        // input to the scratch pool instead of dropping it every batch.
        if let Some(old) = self.cached_input.replace(x) {
            old.recycle();
        }
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("conv2d backward before forward");
        let grads = conv2d_backward_fused(&grad, &x, &self.weight, &self.spec);
        self.grad_weight.axpy(1.0, &grads.weight);
        self.grad_bias.axpy(1.0, &grads.bias);
        grads.weight.recycle();
        grads.bias.recycle();
        grad.recycle();
        x.recycle();
        grads.input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        let wn = format!("{}-w", self.name);
        f(&wn, true, &mut self.weight, &mut self.grad_weight);
        let bn = format!("{}-b", self.name);
        f(&bn, true, &mut self.bias, &mut self.grad_bias);
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn forward_output_shape() {
        let mut rng = seeded_rng(0);
        let spec = ConvSpec {
            in_channels: 3,
            out_channels: 6,
            kernel: 5,
            stride: 1,
            padding: 2,
        };
        let mut conv = Conv2d::new("conv1", spec, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = conv.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 6, 16, 16]);
    }

    #[test]
    fn backward_finite_difference_on_weight() {
        let mut rng = seeded_rng(1);
        let spec = ConvSpec {
            in_channels: 2,
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let mut conv = Conv2d::new("c", spec, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 2 * 4 * 4).map(|i| (i as f32 * 0.7).sin()).collect(),
            &[2, 2, 4, 4],
        );
        let y = conv.forward(x.clone(), Mode::Train, &mut rng);
        conv.backward(Tensor::ones(y.shape()));
        let mut analytic = Tensor::default();
        conv.visit_params(&mut |n, _, _, g| {
            if n.ends_with("-w") {
                analytic = g.clone();
            }
        });
        let eps = 1e-2;
        for idx in [0usize, 7, 17, 35] {
            let bump = |d: f32, c: &mut Conv2d| {
                c.visit_params(&mut |n, _, v, _| {
                    if n.ends_with("-w") {
                        v.data_mut()[idx] += d;
                    }
                });
            };
            bump(eps, &mut conv);
            let yp = conv.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(-2.0 * eps, &mut conv);
            let ym = conv.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(eps, &mut conv);
            let fd = (yp - ym) / (2.0 * eps);
            let an = analytic.data()[idx];
            assert!((fd - an).abs() < 0.05 * (1.0 + an.abs()), "fd={fd} an={an}");
        }
    }

    #[test]
    fn backward_input_gradient_shape() {
        let mut rng = seeded_rng(2);
        let spec = ConvSpec {
            in_channels: 1,
            out_channels: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let mut conv = Conv2d::new("c", spec, &mut rng);
        let x = Tensor::ones(&[3, 1, 8, 8]);
        let y = conv.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[3, 4, 4, 4]);
        let gi = conv.backward(Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), &[3, 1, 8, 8]);
    }
}
