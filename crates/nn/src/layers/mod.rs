//! Concrete layer implementations.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod lstm;
mod pool;
mod residual;

pub use activation::{Activation, ActivationKind};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use lstm::{LastStep, LstmLayer};
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
