//! Fully connected layer.

use apf_tensor::Rng;
use apf_tensor::{kaiming_uniform, Tensor};

use crate::layer::{Layer, Mode};

/// A fully connected (dense) layer: `y = x W^T + b`.
///
/// Weight has shape `[out, in]`, bias `[out]`. Parameter names are
/// `"<name>-w"` and `"<name>-b"`, matching the paper's tensor naming
/// convention (`fc2-b` etc. in Fig. 3).
#[derive(Debug)]
pub struct Linear {
    name: String,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            name: name.to_owned(),
            weight: kaiming_uniform(&[out_features, in_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects [N, in]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "linear input width mismatch"
        );
        let mut out = x.matmul_nt(&self.weight);
        out.add_row_in_place(&self.bias);
        // Replace (not just overwrite) the cache so an eval-only loop, which
        // never runs backward, still returns the previous input's buffer to
        // the scratch pool instead of dropping it every batch.
        if let Some(old) = self.cached_input.replace(x) {
            old.recycle();
        }
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("linear backward called before forward");
        // dW = grad^T x; db = column sums; dx = grad W.
        let dw = grad.matmul_tn(&x);
        self.grad_weight.axpy(1.0, &dw);
        dw.recycle();
        let db = grad.sum_rows();
        self.grad_bias.axpy(1.0, &db);
        db.recycle();
        x.recycle();
        let dx = grad.matmul(&self.weight);
        grad.recycle();
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        let wn = format!("{}-w", self.name);
        f(&wn, true, &mut self.weight, &mut self.grad_weight);
        let bn = format!("{}-b", self.name);
        f(&bn, true, &mut self.bias, &mut self.grad_bias);
    }

    fn kind(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded_rng(0);
        let mut l = Linear::new("fc", 3, 2, &mut rng);
        l.visit_params(&mut |name, _, v, _| {
            if name.ends_with("-b") {
                v.fill(1.0);
            } else {
                v.fill(0.0);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = l.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 2]);
        assert!(y.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = seeded_rng(1);
        let mut l = Linear::new("fc", 4, 3, &mut rng);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.3 - 1.0).collect(), &[2, 4]);
        let y = l.forward(x.clone(), Mode::Train, &mut rng);
        let grad_in = l.backward(Tensor::ones(y.shape()));
        // Finite differences on the weight.
        let eps = 1e-3;
        let mut analytic = Tensor::zeros(&[3, 4]);
        l.visit_params(&mut |name, _, _, g| {
            if name.ends_with("-w") {
                analytic = g.clone();
            }
        });
        for idx in [0usize, 5, 11] {
            let bump = |delta: f32, l: &mut Linear| {
                l.visit_params(&mut |name, _, v, _| {
                    if name.ends_with("-w") {
                        v.data_mut()[idx] += delta;
                    }
                });
            };
            bump(eps, &mut l);
            let yp = l.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(-2.0 * eps, &mut l);
            let ym = l.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(eps, &mut l);
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - analytic.data()[idx]).abs() < 1e-2,
                "w[{idx}]: fd={fd} analytic={}",
                analytic.data()[idx]
            );
        }
        // Input gradient: each input scalar's gradient is the column sum of W.
        let w_colsum = {
            let mut t = vec![0.0f32; 4];
            l.visit_params(&mut |name, _, v, _| {
                if name.ends_with("-w") {
                    for o in 0..3 {
                        for (i, ti) in t.iter_mut().enumerate() {
                            *ti += v.data()[o * 4 + i];
                        }
                    }
                }
            });
            t
        };
        for n in 0..2 {
            for (i, &want) in w_colsum.iter().enumerate() {
                assert!((grad_in.at2(n, i) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = seeded_rng(2);
        let mut l = Linear::new("fc", 2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        for _ in 0..2 {
            let y = l.forward(x.clone(), Mode::Train, &mut rng);
            l.backward(Tensor::ones(y.shape()));
        }
        l.visit_params(&mut |name, _, _, g| {
            if name.ends_with("-b") {
                assert_eq!(g.data(), &[2.0, 2.0]);
            }
        });
    }

    #[test]
    fn param_names_follow_convention() {
        let mut rng = seeded_rng(3);
        let mut l = Linear::new("fc1", 2, 2, &mut rng);
        let mut names = Vec::new();
        l.visit_params(&mut |n, t, _, _| {
            names.push(n.to_owned());
            assert!(t);
        });
        assert_eq!(names, vec!["fc1-w", "fc1-b"]);
    }
}
