//! Shape adapter from `[N, C, H, W]` (or any rank ≥ 2) to `[N, features]`.

use apf_tensor::Rng;
use apf_tensor::Tensor;

use crate::layer::{Layer, Mode};

/// Flattens every non-batch dimension into one feature axis.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let shape = x.shape().to_vec();
        assert!(shape.len() >= 2, "flatten expects rank >= 2");
        let n = shape[0];
        let features: usize = shape[1..].iter().product();
        self.cached_shape = Some(shape);
        let mut out = x;
        out.reshape_in_place(&[n, features]);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("flatten backward before forward");
        let mut g = grad;
        g.reshape_in_place(&shape);
        g
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn roundtrip_shapes() {
        let mut rng = seeded_rng(0);
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[3, 2, 4, 4]);
        let y = fl.forward(x, Mode::Eval, &mut rng);
        assert_eq!(y.shape(), &[3, 32]);
        let g = fl.backward(Tensor::ones(&[3, 32]));
        assert_eq!(g.shape(), &[3, 2, 4, 4]);
    }
}
