//! 2-D batch normalization with running statistics.

use apf_tensor::Rng;
use apf_tensor::Tensor;

use crate::layer::{Layer, Mode};

const EPS: f32 = 1e-5;

/// Batch normalization over `[N, C, H, W]`, normalizing each channel across
/// the batch and spatial dimensions.
///
/// Trainable parameters are `"<name>-g"` (gamma) and `"<name>-b"` (beta).
/// The running mean/variance are exposed to the parameter traversal as
/// *non-trainable buffers* (`"<name>-rm"` / `"<name>-rv"`): they take part in
/// federated synchronization and in APF freezing, but optimizers never touch
/// them — this mirrors how FedAvg synchronizes BN state in practice.
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Zero-filled grad slots so buffers fit the uniform traversal signature.
    zero_grad_rm: Tensor,
    zero_grad_rv: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>, // per channel
    x_minus_mu: Tensor,
    mode: Mode,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            name: name.to_owned(),
            channels,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            zero_grad_rm: Tensor::zeros(&[channels]),
            zero_grad_rv: Tensor::zeros(&[channels]),
            cache: None,
        }
    }

    fn channel_stats(&self, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let s = x.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = (n * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        let data = x.data();
        for ni in 0..n {
            for ci in 0..c {
                let plane = &data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                mean[ci] += plane.iter().sum::<f32>();
            }
        }
        for v in &mut mean {
            *v /= m;
        }
        for ni in 0..n {
            for ci in 0..c {
                let plane = &data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                var[ci] += plane
                    .iter()
                    .map(|&x| (x - mean[ci]) * (x - mean[ci]))
                    .sum::<f32>();
            }
        }
        for v in &mut var {
            *v /= m;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: Tensor, mode: Mode, _rng: &mut Rng) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "batchnorm expects [N,C,H,W]");
        assert_eq!(s[1], self.channels, "channel count mismatch");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (mean, var) = match mode {
            Mode::Train => {
                let (mean, var) = self.channel_stats(&x);
                for ci in 0..c {
                    let rm = self.running_mean.data_mut();
                    rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean[ci];
                    let rv = self.running_var.data_mut();
                    rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var[ci];
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            ),
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let mut xhat = vec![0.0f32; x.numel()];
        let mut xmm = vec![0.0f32; x.numel()];
        let mut out = vec![0.0f32; x.numel()];
        let data = x.data();
        let g = self.gamma.data();
        let b = self.beta.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in 0..h * w {
                    let centered = data[base + i] - mean[ci];
                    let nh = centered * inv_std[ci];
                    xmm[base + i] = centered;
                    xhat[base + i] = nh;
                    out[base + i] = g[ci] * nh + b[ci];
                }
            }
        }
        self.cache = Some(BnCache {
            xhat: Tensor::from_vec(xhat, &s),
            inv_std,
            x_minus_mu: Tensor::from_vec(xmm, &s),
            mode,
        });
        Tensor::from_vec(out, &s)
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("batchnorm backward before forward");
        let s = grad.shape().to_vec();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let m = (n * h * w) as f32;
        let gd = grad.data();
        let xhat = cache.xhat.data();
        let gamma = self.gamma.data().to_vec();

        // Parameter gradients (identical for train and eval mode).
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in 0..h * w {
                    dgamma[ci] += gd[base + i] * xhat[base + i];
                    dbeta[ci] += gd[base + i];
                }
            }
        }
        for ci in 0..c {
            self.grad_gamma.data_mut()[ci] += dgamma[ci];
            self.grad_beta.data_mut()[ci] += dbeta[ci];
        }

        let mut out = vec![0.0f32; grad.numel()];
        match cache.mode {
            Mode::Eval => {
                // Running stats are constants: dx = dy * gamma * inv_std.
                for ni in 0..n {
                    for (ci, (&g, &is)) in gamma.iter().zip(&cache.inv_std).enumerate() {
                        let base = (ni * c + ci) * h * w;
                        let k = g * is;
                        for i in 0..h * w {
                            out[base + i] = gd[base + i] * k;
                        }
                    }
                }
            }
            Mode::Train => {
                // Standard batch-norm backward:
                // dx = (gamma*inv_std/m) * (m*dy - sum(dy) - xhat * sum(dy*xhat))
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * h * w;
                        let k = gamma[ci] * cache.inv_std[ci] / m;
                        for i in 0..h * w {
                            out[base + i] =
                                k * (m * gd[base + i] - dbeta[ci] - xhat[base + i] * dgamma[ci]);
                        }
                    }
                }
            }
        }
        let _ = cache.x_minus_mu; // kept in cache for debuggability
        Tensor::from_vec(out, &s)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        let gn = format!("{}-g", self.name);
        f(&gn, true, &mut self.gamma, &mut self.grad_gamma);
        let bn = format!("{}-b", self.name);
        f(&bn, true, &mut self.beta, &mut self.grad_beta);
        let rmn = format!("{}-rm", self.name);
        f(&rmn, false, &mut self.running_mean, &mut self.zero_grad_rm);
        let rvn = format!("{}-rv", self.name);
        f(&rvn, false, &mut self.running_var, &mut self.zero_grad_rv);
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::{normal_init, seeded_rng};

    #[test]
    fn train_forward_normalizes() {
        let mut rng = seeded_rng(0);
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = normal_init(&[4, 2, 3, 3], 5.0, 3.0, &mut rng);
        let y = bn.forward(x, Mode::Train, &mut rng);
        // Per-channel output should be ~N(0,1) since gamma=1, beta=0.
        let s = y.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                vals.extend_from_slice(&y.data()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut rng = seeded_rng(1);
        let mut bn = BatchNorm2d::new("bn", 1);
        let x = normal_init(&[8, 1, 4, 4], 2.0, 1.0, &mut rng);
        for _ in 0..200 {
            let _ = bn.forward(x.clone(), Mode::Train, &mut rng);
        }
        let rm = bn.running_mean.data()[0];
        assert!((rm - 2.0).abs() < 0.2, "running mean {rm}");
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = seeded_rng(2);
        let mut bn = BatchNorm2d::new("bn", 1);
        // With default running stats (mean 0, var 1) eval is ~identity.
        let x = normal_init(&[2, 1, 2, 2], 0.0, 1.0, &mut rng);
        let y = bn.forward(x.clone(), Mode::Eval, &mut rng);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = seeded_rng(3);
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = normal_init(&[2, 2, 2, 2], 1.0, 2.0, &mut rng);
        // Loss: weighted sum to get non-uniform gradients.
        let wvec: Vec<f32> = (0..x.numel()).map(|i| ((i % 5) as f32) - 2.0).collect();
        let loss = |bn: &mut BatchNorm2d, x: &Tensor, rng: &mut Rng| -> f32 {
            let y = bn.forward(x.clone(), Mode::Train, rng);
            y.data().iter().zip(&wvec).map(|(a, b)| a * b).sum()
        };
        let _ = loss(&mut bn, &x, &mut rng);
        let grad = Tensor::from_vec(wvec.clone(), x.shape());
        let gi = bn.backward(grad);
        let eps = 1e-2;
        for idx in [0usize, 3, 9, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            // Fresh layers so running-stat updates don't pollute the check.
            let mut bn2 = BatchNorm2d::new("bn", 2);
            let yp = loss(&mut bn2, &xp, &mut rng);
            let mut bn3 = BatchNorm2d::new("bn", 2);
            let ym = loss(&mut bn3, &xm, &mut rng);
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - gi.data()[idx]).abs() < 0.05 * (1.0 + fd.abs()),
                "idx {idx}: fd={fd} analytic={}",
                gi.data()[idx]
            );
        }
    }

    #[test]
    fn buffers_are_not_trainable() {
        let mut bn = BatchNorm2d::new("bn1", 3);
        let mut seen = Vec::new();
        bn.visit_params(&mut |n, t, _, _| seen.push((n.to_owned(), t)));
        assert_eq!(
            seen,
            vec![
                ("bn1-g".to_owned(), true),
                ("bn1-b".to_owned(), true),
                ("bn1-rm".to_owned(), false),
                ("bn1-rv".to_owned(), false),
            ]
        );
    }
}
