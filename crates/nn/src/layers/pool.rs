//! Pooling layers.

use apf_tensor::Rng;
use apf_tensor::{maxpool2d_backward, maxpool2d_forward, PoolSpec, Tensor};

use crate::layer::{Layer, Mode};

/// 2-D max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    spec: PoolSpec,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// Creates a max-pooling layer with a square window and equal stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            spec: PoolSpec { kernel, stride },
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let shape = x.shape().to_vec();
        let (out, arg) = maxpool2d_forward(&x, &self.spec);
        x.recycle();
        self.cache = Some((arg, shape));
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let (arg, shape) = self.cache.take().expect("maxpool backward before forward");
        let gi = maxpool2d_backward(&grad, &arg, &shape);
        grad.recycle();
        gi
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "global avg pool expects [N,C,H,W]");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor::scratch(&[n, c]);
        for (o, plane) in out.data_mut().iter_mut().zip(x.data().chunks_exact(h * w)) {
            *o = plane.iter().sum::<f32>() * inv;
        }
        x.recycle();
        self.cached_shape = Some(s);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let s = self
            .cached_shape
            .take()
            .expect("global avg pool backward before forward");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut out = Tensor::scratch(&s);
        for nc in 0..n * c {
            let g = grad.data()[nc] * inv;
            out.data_mut()[nc * h * w..(nc + 1) * h * w].fill(g);
        }
        grad.recycle();
        out
    }

    fn kind(&self) -> &'static str {
        "global_avg_pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn global_avg_pool_mean_and_grad() {
        let mut rng = seeded_rng(1);
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]);
        let y = gap.forward(x, Mode::Eval, &mut rng);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let g = gap.backward(Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn forward_backward_roundtrip() {
        let mut rng = seeded_rng(0);
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = pool.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let g = pool.backward(Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.data()[5], 1.0);
        assert_eq!(g.data()[15], 1.0);
    }
}
