//! Elementwise activation layers.

use apf_tensor::Rng;
use apf_tensor::Tensor;

use crate::layer::{Layer, Mode};

/// Which elementwise nonlinearity an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// A parameterless elementwise activation layer.
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_output: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_output: None,
        }
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Activation::new(ActivationKind::Relu)
    }
}

pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Activation {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let mut out = x;
        match self.kind {
            ActivationKind::Relu => out.map_in_place(|v| v.max(0.0)),
            ActivationKind::Tanh => out.map_in_place(f32::tanh),
            ActivationKind::Sigmoid => out.map_in_place(sigmoid),
        }
        // All three derivatives are expressible from the *output*, so caching
        // the output alone suffices; replace-and-recycle keeps eval-only
        // loops allocation-free.
        if let Some(old) = self.cached_output.replace(out.scratch_copy()) {
            old.recycle();
        }
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("activation backward before forward");
        let mut g = grad;
        match self.kind {
            ActivationKind::Relu => g.zip_with(&y, |g, o| if o > 0.0 { g } else { 0.0 }),
            ActivationKind::Tanh => g.zip_with(&y, |g, o| g * (1.0 - o * o)),
            ActivationKind::Sigmoid => g.zip_with(&y, |g, o| g * o * (1.0 - o)),
        }
        y.recycle();
        g
    }

    fn kind(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    fn fd_check(kind: ActivationKind) {
        let mut rng = seeded_rng(0);
        let mut act = Activation::new(kind);
        // Avoid 0.0: ReLU is non-differentiable there and finite differences
        // straddle the kink.
        let xs = [-2.0f32, -0.5, 0.1, 0.3, 1.7];
        let x = Tensor::from_vec(xs.to_vec(), &[1, 5]);
        let _ = act.forward(x.clone(), Mode::Train, &mut rng);
        let gi = act.backward(Tensor::ones(&[1, 5]));
        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = act.forward(xp, Mode::Train, &mut rng).sum();
            let _ = act.backward(Tensor::ones(&[1, 5]));
            let ym = act.forward(xm, Mode::Train, &mut rng).sum();
            let _ = act.backward(Tensor::ones(&[1, 5]));
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - gi.data()[i]).abs() < 1e-2,
                "{kind:?} x={} fd={fd} analytic={}",
                xs[i],
                gi.data()[i]
            );
        }
    }

    #[test]
    fn relu_gradient() {
        fd_check(ActivationKind::Relu);
    }

    #[test]
    fn tanh_gradient() {
        fd_check(ActivationKind::Tanh);
    }

    #[test]
    fn sigmoid_gradient() {
        fd_check(ActivationKind::Sigmoid);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut rng = seeded_rng(1);
        let mut act = Activation::relu();
        let y = act.forward(
            Tensor::from_vec(vec![-1.0, 2.0], &[2]),
            Mode::Eval,
            &mut rng,
        );
        assert_eq!(y.data(), &[0.0, 2.0]);
    }

    #[test]
    fn sigmoid_range() {
        let mut rng = seeded_rng(2);
        let mut act = Activation::new(ActivationKind::Sigmoid);
        let y = act.forward(
            Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]),
            Mode::Eval,
            &mut rng,
        );
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }
}
