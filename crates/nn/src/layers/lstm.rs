//! LSTM layer with full backpropagation-through-time, plus the [`LastStep`]
//! adapter that feeds the final hidden state into a classification head.

use apf_tensor::Rng;
use apf_tensor::{xavier_uniform, Tensor};

use crate::layer::{Layer, Mode};
use crate::layers::activation::sigmoid;

/// A single LSTM layer processing a whole sequence.
///
/// Input is `[N, T, input_size]`, output is the hidden sequence
/// `[N, T, hidden]`. Gates are packed `i, f, g, o` along the `4H` axis.
/// Parameters: `"<name>-wih"` (`[4H, D]`), `"<name>-whh"` (`[4H, H]`),
/// `"<name>-b"` (`[4H]`).
pub struct LstmLayer {
    name: String,
    input_size: usize,
    hidden: usize,
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    grad_w_ih: Tensor,
    grad_w_hh: Tensor,
    grad_bias: Tensor,
    cache: Option<LstmCache>,
}

struct LstmCache {
    /// Per-timestep input `[N, D]`.
    xs: Vec<Tensor>,
    /// h_{t} for t = -1..T-1 (index 0 is the initial zero state) `[N, H]`.
    hs: Vec<Tensor>,
    /// c_{t} for t = -1..T-1, same convention.
    cs: Vec<Tensor>,
    /// Post-activation gates per timestep `[N, 4H]` packed i,f,g,o.
    gates: Vec<Tensor>,
    n: usize,
    t: usize,
}

impl std::fmt::Debug for LstmLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LstmLayer")
            .field("name", &self.name)
            .field("input_size", &self.input_size)
            .field("hidden", &self.hidden)
            .finish()
    }
}

impl LstmLayer {
    /// Creates an LSTM layer with Xavier-uniform weights.
    ///
    /// The forget-gate bias is initialized to 1.0 (standard trick easing
    /// gradient flow early in training).
    pub fn new(name: &str, input_size: usize, hidden: usize, rng: &mut Rng) -> Self {
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for i in hidden..2 * hidden {
            bias.data_mut()[i] = 1.0;
        }
        LstmLayer {
            name: name.to_owned(),
            input_size,
            hidden,
            w_ih: xavier_uniform(&[4 * hidden, input_size], input_size, hidden, rng),
            w_hh: xavier_uniform(&[4 * hidden, hidden], hidden, hidden, rng),
            bias,
            grad_w_ih: Tensor::zeros(&[4 * hidden, input_size]),
            grad_w_hh: Tensor::zeros(&[4 * hidden, hidden]),
            grad_bias: Tensor::zeros(&[4 * hidden]),
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Layer for LstmLayer {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "lstm expects [N, T, D]");
        let (n, t, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.input_size, "lstm input width mismatch");
        let h = self.hidden;

        let mut xs = Vec::with_capacity(t);
        for ti in 0..t {
            // Gather x[:, ti, :] into [N, D].
            let mut step = vec![0.0f32; n * d];
            for ni in 0..n {
                let src = &x.data()[(ni * t + ti) * d..(ni * t + ti + 1) * d];
                step[ni * d..(ni + 1) * d].copy_from_slice(src);
            }
            xs.push(Tensor::from_vec(step, &[n, d]));
        }

        let mut hs = vec![Tensor::zeros(&[n, h])];
        let mut cs = vec![Tensor::zeros(&[n, h])];
        let mut gates = Vec::with_capacity(t);
        let mut out = vec![0.0f32; n * t * h];

        for ti in 0..t {
            // pre = x_t W_ih^T + h_{t-1} W_hh^T + b  -> [N, 4H]
            let mut pre = xs[ti].matmul_nt(&self.w_ih);
            pre.axpy(1.0, &hs[ti].matmul_nt(&self.w_hh));
            pre.add_row_in_place(&self.bias);

            let mut gate = vec![0.0f32; n * 4 * h];
            let mut c_t = vec![0.0f32; n * h];
            let mut h_t = vec![0.0f32; n * h];
            let c_prev = cs[ti].data();
            let pd = pre.data();
            for ni in 0..n {
                for hi in 0..h {
                    let base = ni * 4 * h;
                    let ig = sigmoid(pd[base + hi]);
                    let fg = sigmoid(pd[base + h + hi]);
                    let gg = pd[base + 2 * h + hi].tanh();
                    let og = sigmoid(pd[base + 3 * h + hi]);
                    let c = fg * c_prev[ni * h + hi] + ig * gg;
                    gate[base + hi] = ig;
                    gate[base + h + hi] = fg;
                    gate[base + 2 * h + hi] = gg;
                    gate[base + 3 * h + hi] = og;
                    c_t[ni * h + hi] = c;
                    let hv = og * c.tanh();
                    h_t[ni * h + hi] = hv;
                    out[(ni * t + ti) * h + hi] = hv;
                }
            }
            gates.push(Tensor::from_vec(gate, &[n, 4 * h]));
            cs.push(Tensor::from_vec(c_t, &[n, h]));
            hs.push(Tensor::from_vec(h_t, &[n, h]));
        }

        self.cache = Some(LstmCache {
            xs,
            hs,
            cs,
            gates,
            n,
            t,
        });
        Tensor::from_vec(out, &[n, t, h])
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self.cache.take().expect("lstm backward before forward");
        let (n, t, h) = (cache.n, cache.t, self.hidden);
        assert_eq!(grad.shape(), &[n, t, h], "lstm grad shape mismatch");
        let d = self.input_size;

        let mut dh_next = Tensor::zeros(&[n, h]);
        let mut dc_next = Tensor::zeros(&[n, h]);
        let mut grad_x = vec![0.0f32; n * t * d];

        for ti in (0..t).rev() {
            // dh_t = grad from output sequence + carry from t+1.
            let mut dh = dh_next.clone();
            for ni in 0..n {
                for hi in 0..h {
                    dh.data_mut()[ni * h + hi] += grad.data()[(ni * t + ti) * h + hi];
                }
            }
            let gate = cache.gates[ti].data();
            let c_t = cache.cs[ti + 1].data();
            let c_prev = cache.cs[ti].data();

            let mut dpre = vec![0.0f32; n * 4 * h];
            let mut dc_prev = vec![0.0f32; n * h];
            for ni in 0..n {
                for hi in 0..h {
                    let base = ni * 4 * h;
                    let ig = gate[base + hi];
                    let fg = gate[base + h + hi];
                    let gg = gate[base + 2 * h + hi];
                    let og = gate[base + 3 * h + hi];
                    let tc = c_t[ni * h + hi].tanh();
                    let dhv = dh.data()[ni * h + hi];
                    let mut dc = dc_next.data()[ni * h + hi];
                    dc += dhv * og * (1.0 - tc * tc);
                    let do_ = dhv * tc;
                    let di = dc * gg;
                    let dg = dc * ig;
                    let df = dc * c_prev[ni * h + hi];
                    dc_prev[ni * h + hi] = dc * fg;
                    dpre[base + hi] = di * ig * (1.0 - ig);
                    dpre[base + h + hi] = df * fg * (1.0 - fg);
                    dpre[base + 2 * h + hi] = dg * (1.0 - gg * gg);
                    dpre[base + 3 * h + hi] = do_ * og * (1.0 - og);
                }
            }
            let dpre_t = Tensor::from_vec(dpre, &[n, 4 * h]);

            // Parameter gradients.
            self.grad_w_ih.axpy(1.0, &dpre_t.matmul_tn(&cache.xs[ti]));
            self.grad_w_hh.axpy(1.0, &dpre_t.matmul_tn(&cache.hs[ti]));
            self.grad_bias.axpy(1.0, &dpre_t.sum_rows());

            // Input and recurrent gradients.
            let dx_t = dpre_t.matmul(&self.w_ih); // [N, D]
            for ni in 0..n {
                let dst = &mut grad_x[(ni * t + ti) * d..(ni * t + ti + 1) * d];
                let src = &dx_t.data()[ni * d..(ni + 1) * d];
                dst.copy_from_slice(src);
            }
            dh_next = dpre_t.matmul(&self.w_hh); // [N, H]
            dc_next = Tensor::from_vec(dc_prev, &[n, h]);
        }

        Tensor::from_vec(grad_x, &[n, t, d])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        let a = format!("{}-wih", self.name);
        f(&a, true, &mut self.w_ih, &mut self.grad_w_ih);
        let b = format!("{}-whh", self.name);
        f(&b, true, &mut self.w_hh, &mut self.grad_w_hh);
        let c = format!("{}-b", self.name);
        f(&c, true, &mut self.bias, &mut self.grad_bias);
    }

    fn kind(&self) -> &'static str {
        "lstm"
    }
}

/// Extracts the final timestep of a `[N, T, H]` sequence as `[N, H]`.
///
/// Its backward pass scatters the gradient to the last step and zeros
/// everywhere else, so it composes with [`LstmLayer`] in a [`crate::Sequential`].
#[derive(Debug, Default)]
pub struct LastStep {
    cached_shape: Option<Vec<usize>>,
}

impl LastStep {
    /// Creates the adapter.
    pub fn new() -> Self {
        LastStep::default()
    }
}

impl Layer for LastStep {
    fn forward(&mut self, x: Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 3, "last-step expects [N, T, H]");
        let (n, t, h) = (s[0], s[1], s[2]);
        let mut out = vec![0.0f32; n * h];
        for ni in 0..n {
            let src = &x.data()[(ni * t + t - 1) * h..(ni * t + t) * h];
            out[ni * h..(ni + 1) * h].copy_from_slice(src);
        }
        self.cached_shape = Some(s);
        Tensor::from_vec(out, &[n, h])
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let s = self
            .cached_shape
            .take()
            .expect("last-step backward before forward");
        let (n, t, h) = (s[0], s[1], s[2]);
        let mut out = vec![0.0f32; n * t * h];
        for ni in 0..n {
            let dst = &mut out[(ni * t + t - 1) * h..(ni * t + t) * h];
            dst.copy_from_slice(&grad.data()[ni * h..(ni + 1) * h]);
        }
        Tensor::from_vec(out, &s)
    }

    fn kind(&self) -> &'static str {
        "last_step"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded_rng(0);
        let mut lstm = LstmLayer::new("l1", 5, 7, &mut rng);
        let x = Tensor::zeros(&[3, 4, 5]);
        let y = lstm.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[3, 4, 7]);
    }

    #[test]
    fn zero_input_zero_weights_gives_zero_hidden() {
        let mut rng = seeded_rng(1);
        let mut lstm = LstmLayer::new("l", 2, 3, &mut rng);
        lstm.visit_params(&mut |_, _, v, _| v.fill(0.0));
        let y = lstm.forward(Tensor::zeros(&[1, 3, 2]), Mode::Train, &mut rng);
        // All gates 0.5/0, c stays 0, h = 0.5*tanh(0) = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn backward_matches_finite_difference_weights() {
        let mut rng = seeded_rng(2);
        let mut lstm = LstmLayer::new("l", 3, 4, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 3 * 3)
                .map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.2)
                .collect(),
            &[2, 3, 3],
        );
        // Loss: sum of all hidden outputs.
        let y = lstm.forward(x.clone(), Mode::Train, &mut rng);
        lstm.backward(Tensor::ones(y.shape()));
        for (pick, idx) in [("-wih", 5usize), ("-whh", 9), ("-b", 2), ("-b", 6)] {
            let mut analytic = 0.0;
            lstm.visit_params(&mut |n, _, _, g| {
                if n.ends_with(pick) {
                    analytic = g.data()[idx];
                }
            });
            let eps = 1e-3;
            let bump = |d: f32, l: &mut LstmLayer| {
                l.visit_params(&mut |n, _, v, _| {
                    if n.ends_with(pick) {
                        v.data_mut()[idx] += d;
                    }
                });
            };
            bump(eps, &mut lstm);
            let yp = lstm.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(-2.0 * eps, &mut lstm);
            let ym = lstm.forward(x.clone(), Mode::Train, &mut rng).sum();
            bump(eps, &mut lstm);
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 0.02 * (1.0 + fd.abs()),
                "{pick}[{idx}]: fd={fd} analytic={analytic}"
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference_input() {
        let mut rng = seeded_rng(3);
        let mut lstm = LstmLayer::new("l", 2, 3, &mut rng);
        let x = Tensor::from_vec(
            (0..4 * 2).map(|i| (i as f32 * 0.37).cos() * 0.5).collect(),
            &[1, 4, 2],
        );
        let y = lstm.forward(x.clone(), Mode::Train, &mut rng);
        let gi = lstm.backward(Tensor::ones(y.shape()));
        let eps = 1e-3;
        for idx in [0usize, 3, 5, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp = lstm.forward(xp, Mode::Train, &mut rng).sum();
            let ym = lstm.forward(xm, Mode::Train, &mut rng).sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - gi.data()[idx]).abs() < 0.02 * (1.0 + fd.abs()),
                "x[{idx}]: fd={fd} analytic={}",
                gi.data()[idx]
            );
        }
    }

    #[test]
    fn last_step_extracts_and_scatters() {
        let mut rng = seeded_rng(4);
        let mut ls = LastStep::new();
        let x = Tensor::from_vec((0..2 * 3 * 2).map(|i| i as f32).collect(), &[2, 3, 2]);
        let y = ls.forward(x, Mode::Eval, &mut rng);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 10.0, 11.0]);
        let g = ls.backward(Tensor::ones(&[2, 2]));
        assert_eq!(g.shape(), &[2, 3, 2]);
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.data()[4], 1.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = seeded_rng(5);
        let mut lstm = LstmLayer::new("l", 2, 3, &mut rng);
        lstm.visit_params(&mut |n, _, v, _| {
            if n.ends_with("-b") {
                assert_eq!(&v.data()[3..6], &[1.0, 1.0, 1.0]);
                assert_eq!(&v.data()[0..3], &[0.0, 0.0, 0.0]);
            }
        });
    }
}
