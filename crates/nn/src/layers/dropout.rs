//! Inverted dropout.
//!
//! The paper motivates APF# by analogy to Dropout (§5); we also keep a real
//! Dropout layer in the substrate so models can use it as a regularizer.

use apf_tensor::Rng;
use apf_tensor::Tensor;

use crate::layer::{Layer, Mode};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; evaluation is the identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout { p, mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        match mode {
            Mode::Eval => {
                self.mask = None;
                x
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask = Tensor::from_vec(
                    (0..x.numel())
                        .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
                        .collect(),
                    x.shape(),
                );
                let out = x.zip_map(&mask, |a, m| a * m);
                self.mask = Some(mask);
                out
            }
        }
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        match self.mask.take() {
            None => grad,
            Some(mask) => grad.zip_map(&mask, |g, m| g * m),
        }
    }

    fn kind(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::seeded_rng;

    #[test]
    fn eval_is_identity() {
        let mut rng = seeded_rng(0);
        let mut d = Dropout::new(0.5);
        let x = Tensor::ones(&[2, 8]);
        let y = d.forward(x.clone(), Mode::Eval, &mut rng);
        assert_eq!(y, x);
        let g = d.backward(Tensor::ones(&[2, 8]));
        assert_eq!(g, Tensor::ones(&[2, 8]));
    }

    #[test]
    fn train_preserves_expectation() {
        let mut rng = seeded_rng(1);
        let mut d = Dropout::new(0.3);
        let x = Tensor::ones(&[1, 20000]);
        let y = d.forward(x, Mode::Train, &mut rng);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = seeded_rng(2);
        let mut d = Dropout::new(0.5);
        let y = d.forward(Tensor::ones(&[1, 64]), Mode::Train, &mut rng);
        let g = d.backward(Tensor::ones(&[1, 64]));
        // Zeroed positions in the output must be zeroed in the gradient too.
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0);
    }
}
