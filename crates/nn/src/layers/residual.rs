//! Residual block (the ResNet-18 building block, §7.1 of the paper).

use apf_tensor::Rng;
use apf_tensor::{avgpool2d_backward, avgpool2d_forward, ConvSpec, PoolSpec, Tensor};

use crate::layer::{Layer, Mode};
use crate::layers::{Activation, BatchNorm2d, Conv2d};

/// A basic pre-activation-free residual block:
/// `y = relu( bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x) )`.
///
/// When `stride > 1` or channel counts change, the shortcut is a strided
/// 2x2 average-pool (if strided) followed by zero-padding of channels — the
/// parameter-free "option A" shortcut of the original ResNet paper, which
/// keeps the block's parameter inventory to its two convolutions and
/// batch-norms.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Activation,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
    cache: Option<ResidualCache>,
}

struct ResidualCache {
    input_shape: Vec<usize>,
    pre_relu: Tensor,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("in_channels", &self.in_channels)
            .field("out_channels", &self.out_channels)
            .field("stride", &self.stride)
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a residual block `in_channels -> out_channels` whose first
    /// convolution uses `stride`.
    ///
    /// # Panics
    /// Panics if `out_channels < in_channels` (this block only widens).
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            out_channels >= in_channels,
            "residual block cannot shrink channels"
        );
        let spec1 = ConvSpec {
            in_channels,
            out_channels,
            kernel: 3,
            stride,
            padding: 1,
        };
        let spec2 = ConvSpec {
            in_channels: out_channels,
            out_channels,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        ResidualBlock {
            conv1: Conv2d::new(&format!("{name}-c1"), spec1, rng),
            bn1: BatchNorm2d::new(&format!("{name}-bn1"), out_channels),
            relu1: Activation::relu(),
            conv2: Conv2d::new(&format!("{name}-c2"), spec2, rng),
            bn2: BatchNorm2d::new(&format!("{name}-bn2"), out_channels),
            in_channels,
            out_channels,
            stride,
            cache: None,
        }
    }

    /// Shortcut forward: identity, or strided avg-pool + channel zero-pad.
    fn shortcut(&self, x: &Tensor) -> Tensor {
        let pooled = if self.stride > 1 {
            avgpool2d_forward(
                x,
                &PoolSpec {
                    kernel: self.stride,
                    stride: self.stride,
                },
            )
        } else {
            x.clone()
        };
        if self.out_channels == self.in_channels {
            return pooled;
        }
        let s = pooled.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let mut out = Tensor::zeros(&[n, self.out_channels, h, w]);
        for ni in 0..n {
            for ci in 0..c {
                let src = &pooled.data()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let dst_base = (ni * self.out_channels + ci) * h * w;
                out.data_mut()[dst_base..dst_base + h * w].copy_from_slice(src);
            }
        }
        out
    }

    /// Shortcut backward given `grad` of the shortcut output.
    fn shortcut_backward(&self, grad: &Tensor, input_shape: &[usize]) -> Tensor {
        // Undo channel padding: keep the first in_channels channels.
        let s = grad.shape();
        let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
        let narrowed = if self.out_channels != self.in_channels {
            let mut out = Tensor::zeros(&[n, self.in_channels, h, w]);
            for ni in 0..n {
                for ci in 0..self.in_channels {
                    let src_base = (ni * self.out_channels + ci) * h * w;
                    let src = &grad.data()[src_base..src_base + h * w];
                    let dst_base = (ni * self.in_channels + ci) * h * w;
                    out.data_mut()[dst_base..dst_base + h * w].copy_from_slice(src);
                }
            }
            out
        } else {
            grad.clone()
        };
        if self.stride > 1 {
            avgpool2d_backward(
                &narrowed,
                &PoolSpec {
                    kernel: self.stride,
                    stride: self.stride,
                },
                input_shape,
            )
        } else {
            narrowed
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        let input_shape = x.shape().to_vec();
        let shortcut = self.shortcut(&x);
        let mut y = self.conv1.forward(x, mode, rng);
        y = self.bn1.forward(y, mode, rng);
        y = self.relu1.forward(y, mode, rng);
        y = self.conv2.forward(y, mode, rng);
        y = self.bn2.forward(y, mode, rng);
        y.axpy(1.0, &shortcut);
        let pre_relu = y.clone();
        let out = y.map(|v| v.max(0.0));
        self.cache = Some(ResidualCache {
            input_shape,
            pre_relu,
        });
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let cache = self.cache.take().expect("residual backward before forward");
        // Through the output ReLU.
        let g = grad.zip_map(&cache.pre_relu, |g, p| if p > 0.0 { g } else { 0.0 });
        // Branch 1: main path.
        let mut main = self.bn2.backward(g.clone());
        main = self.conv2.backward(main);
        main = self.relu1.backward(main);
        main = self.bn1.backward(main);
        main = self.conv1.backward(main);
        // Branch 2: shortcut.
        let short = self.shortcut_backward(&g, &cache.input_shape);
        main.axpy(1.0, &short);
        main
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
    }

    fn kind(&self) -> &'static str {
        "residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_tensor::{normal_init, seeded_rng};

    #[test]
    fn identity_block_shapes() {
        let mut rng = seeded_rng(0);
        let mut block = ResidualBlock::new("r1", 8, 8, 1, &mut rng);
        let x = normal_init(&[2, 8, 6, 6], 0.0, 1.0, &mut rng);
        let y = block.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 8, 6, 6]);
        let g = block.backward(Tensor::ones(&[2, 8, 6, 6]));
        assert_eq!(g.shape(), &[2, 8, 6, 6]);
    }

    #[test]
    fn downsampling_block_shapes() {
        let mut rng = seeded_rng(1);
        let mut block = ResidualBlock::new("r2", 8, 16, 2, &mut rng);
        let x = normal_init(&[2, 8, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(x, Mode::Train, &mut rng);
        assert_eq!(y.shape(), &[2, 16, 4, 4]);
        let g = block.backward(Tensor::ones(&[2, 16, 4, 4]));
        assert_eq!(g.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn zero_main_path_passes_shortcut() {
        let mut rng = seeded_rng(2);
        let mut block = ResidualBlock::new("r", 4, 4, 1, &mut rng);
        // Zero the convolutions; bn(0)=0, so output = relu(shortcut).
        block.visit_params(&mut |n, _, v, _| {
            if n.contains("-c") {
                v.fill(0.0);
            }
        });
        let x = normal_init(&[1, 4, 3, 3], 0.0, 1.0, &mut rng);
        let y = block.forward(x.clone(), Mode::Train, &mut rng);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b.max(0.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_flows_through_shortcut_even_with_dead_main_path() {
        let mut rng = seeded_rng(3);
        let mut block = ResidualBlock::new("r", 2, 2, 1, &mut rng);
        block.visit_params(&mut |n, _, v, _| {
            if n.contains("-c") {
                v.fill(0.0);
            }
        });
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = block.forward(x, Mode::Train, &mut rng);
        let g = block.backward(Tensor::ones(y.shape()));
        // Shortcut is identity; since x > 0 the ReLU is open everywhere.
        assert!(g.data().iter().all(|&v| v > 0.0), "{:?}", g);
    }

    #[test]
    fn finite_difference_through_block_input() {
        let mut rng = seeded_rng(4);
        let mut block = ResidualBlock::new("r", 2, 2, 1, &mut rng);
        let x = normal_init(&[1, 2, 3, 3], 0.5, 0.5, &mut rng);
        // Use eval mode so batch statistics don't change with the bump
        // (batch-norm in train mode has a nonlocal dependence on the batch).
        let y = block.forward(x.clone(), Mode::Eval, &mut rng);
        let gi = block.backward(Tensor::ones(y.shape()));
        let eps = 1e-3;
        for idx in [0usize, 7, 13] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp = block.forward(xp, Mode::Eval, &mut rng).sum();
            let ym = block.forward(xm, Mode::Eval, &mut rng).sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - gi.data()[idx]).abs() < 0.05 * (1.0 + fd.abs()),
                "x[{idx}]: fd={fd} analytic={}",
                gi.data()[idx]
            );
        }
    }
}
