//! The [`Sequential`] model container.

use apf_tensor::Rng;
use apf_tensor::{derive_seed, seeded_rng, Tensor};
use apf_trace::{span, Level};

use crate::flat::FlatSpec;
use crate::layer::{Layer, Mode};

/// An ordered stack of layers with named parameters and flat-vector views.
///
/// `Sequential` owns an internal RNG (for dropout masks); construct it with a
/// seed so forward passes are reproducible.
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    rng: Rng,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.layers.iter().map(|l| l.kind()).collect();
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field("layers", &kinds)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty model with the given name and RNG seed.
    pub fn new(name: &str, seed: u64) -> Self {
        Sequential {
            name: name.to_owned(),
            layers: Vec::new(),
            rng: seeded_rng(derive_seed(seed, 0xF0F0)),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Model name (e.g. `"lenet5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs all layers forward.
    pub fn forward(&mut self, x: Tensor, mode: Mode) -> Tensor {
        let mut cur = x;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let _s = span!(Level::Trace, target: "nn.layer", "forward",
                layer = i, kind = layer.kind());
            cur = layer.forward(cur, mode, &mut self.rng);
        }
        cur
    }

    /// Runs all layers backward, accumulating parameter gradients.
    pub fn backward(&mut self, grad: Tensor) -> Tensor {
        let mut cur = grad;
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter_mut().rev().enumerate() {
            let _s = span!(Level::Trace, target: "nn.layer", "backward",
                layer = last - i, kind = layer.kind());
            cur = layer.backward(cur);
        }
        cur
    }

    /// Visits every parameter as `(name, trainable, value, grad)`.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&str, bool, &mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// The flat-vector layout of this model's parameters.
    pub fn flat_spec(&mut self) -> FlatSpec {
        let mut entries = Vec::new();
        self.visit_params(&mut |name, trainable, v, _| {
            entries.push((name.to_owned(), v.numel(), trainable));
        });
        FlatSpec::from_entries(entries)
    }

    /// Filter-granular segment lengths covering the flat parameter vector:
    /// one segment per output filter / row for tensors with ≥2 dims, one
    /// segment per whole tensor otherwise (biases, buffers). Segment lengths
    /// sum to [`Sequential::param_count`], in concatenation order — the
    /// layout `apf` expects for filter-granular freezing.
    pub fn filter_segments(&mut self) -> Vec<usize> {
        let mut segs = Vec::new();
        self.visit_params(&mut |_, _, v, _| {
            let shape = v.shape();
            if shape.len() >= 2 && shape[0] > 0 {
                let per = v.numel() / shape[0];
                segs.extend(std::iter::repeat_n(per, shape[0]));
            } else if v.numel() > 0 {
                segs.push(v.numel());
            }
        });
        segs
    }

    /// Total number of parameter scalars (including buffers).
    ///
    /// Requires `&mut self` because parameter traversal is defined on mutable
    /// layers; the model is not modified.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, _, v, _| n += v.numel());
        n
    }

    /// Total number of parameter scalars (trainable or not).
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, _, v, _| n += v.numel());
        n
    }

    /// Copies all parameters into one flat vector (concatenation order).
    ///
    /// The returned buffer comes from the scratch pool; hot-loop callers
    /// should hand it back via [`apf_tensor::scratch::give`] (or reuse
    /// [`Sequential::flat_params_into`] with a persistent buffer).
    pub fn flat_params(&mut self) -> Vec<f32> {
        let mut out = apf_tensor::scratch::take_reserved(self.param_count());
        self.flat_params_into(&mut out);
        out
    }

    /// Clears `out` and fills it with all parameters (concatenation order).
    pub fn flat_params_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |_, _, v, _| out.extend_from_slice(v.data()));
    }

    /// Copies all gradients into one flat vector (same order).
    ///
    /// Scratch-pooled like [`Sequential::flat_params`].
    pub fn flat_grads(&mut self) -> Vec<f32> {
        let mut out = apf_tensor::scratch::take_reserved(self.param_count());
        self.flat_grads_into(&mut out);
        out
    }

    /// Clears `out` and fills it with all gradients (same order).
    pub fn flat_grads_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        self.visit_params(&mut |_, _, _, g| out.extend_from_slice(g.data()));
    }

    /// Loads parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `flat.len()` differs from the model's parameter count.
    pub fn load_flat(&mut self, flat: &[f32]) {
        let mut offset = 0;
        self.visit_params(&mut |_, _, v, _| {
            let n = v.numel();
            v.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        assert_eq!(offset, flat.len(), "flat vector length mismatch");
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |_, _, _, g| g.fill(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Linear};
    use apf_tensor::seeded_rng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new("tiny", seed)
            .push(Linear::new("fc1", 3, 4, &mut rng))
            .push(Activation::relu())
            .push(Linear::new("fc2", 4, 2, &mut rng))
    }

    #[test]
    fn forward_shape() {
        let mut m = tiny_model(0);
        let y = m.forward(Tensor::zeros(&[5, 3]), Mode::Eval);
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn flat_roundtrip_preserves_model() {
        let mut m = tiny_model(1);
        let flat = m.flat_params();
        assert_eq!(flat.len(), 3 * 4 + 4 + 4 * 2 + 2);
        let x = Tensor::ones(&[1, 3]);
        let y1 = m.forward(x.clone(), Mode::Eval);
        let mut perturbed = flat.clone();
        for v in &mut perturbed {
            *v += 1.0;
        }
        m.load_flat(&perturbed);
        let y2 = m.forward(x.clone(), Mode::Eval);
        assert_ne!(y1.data(), y2.data());
        m.load_flat(&flat);
        let y3 = m.forward(x, Mode::Eval);
        assert_eq!(y1.data(), y3.data());
    }

    #[test]
    fn flat_spec_names_in_order() {
        let mut m = tiny_model(2);
        let spec = m.flat_spec();
        let names: Vec<&str> = spec.params().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["fc1-w", "fc1-b", "fc2-w", "fc2-b"]);
        assert_eq!(spec.total_len(), m.num_params());
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut m = tiny_model(3);
        let y = m.forward(Tensor::ones(&[2, 3]), Mode::Train);
        m.backward(Tensor::ones(y.shape()));
        assert!(m.flat_grads().iter().any(|&g| g != 0.0));
        m.zero_grads();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn same_seed_same_init() {
        let mut a = tiny_model(7);
        let mut b = tiny_model(7);
        assert_eq!(a.flat_params(), b.flat_params());
        let mut c = tiny_model(8);
        assert_ne!(a.flat_params(), c.flat_params());
    }
}
