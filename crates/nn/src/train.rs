//! Local training driver: one SGD/Adam step per batch, with optional FedProx
//! proximal term, plus evaluation helpers.

use apf::FreezeMask;
use apf_tensor::Tensor;
use apf_trace::{span, Level};

use crate::layer::Mode;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::{LrSchedule, Optimizer};
use crate::sequential::Sequential;

/// Performs one training step on `model` with the given optimizer.
///
/// Returns the batch loss. `frozen` is the bit-packed per-scalar freeze mask
/// (see [`crate::FlatSpec::freeze_mask`]); `prox` optionally adds the
/// FedProx proximal gradient `mu * (x - anchor)` (Li et al., MLSys 2020,
/// used in §7.7 of the paper).
///
/// # Panics
/// Panics on shape mismatches between the model, mask and anchor.
pub fn train_batch(
    model: &mut Sequential,
    optimizer: &mut dyn Optimizer,
    x: &Tensor,
    labels: &[usize],
    frozen: &FreezeMask,
    prox: Option<(f32, &[f32])>,
) -> f32 {
    model.zero_grads();
    let logits = {
        let _s = span!(Level::Debug, target: "nn.train", "forward", batch = labels.len());
        model.forward(x.scratch_copy(), Mode::Train)
    };
    let (loss, grad) = softmax_cross_entropy(&logits, labels);
    logits.recycle();
    {
        let _s = span!(Level::Debug, target: "nn.train", "backward");
        model.backward(grad).recycle();
    }
    let _s = span!(Level::Debug, target: "nn.train", "optimizer");
    let mut params = model.flat_params();
    let mut grads = model.flat_grads();
    if let Some((mu, anchor)) = prox {
        assert_eq!(anchor.len(), params.len(), "prox anchor length mismatch");
        // Elementwise, so chunking over the pool cannot change any value;
        // the run iterator skips whole frozen words.
        let chunk = apf_par::chunk_len(grads.len());
        apf_par::par_chunks_mut(&mut grads, chunk, |ci, g| {
            let off = ci * chunk;
            frozen.for_each_unfrozen_run_in(off, off + g.len(), |s, e| {
                for i in s..e {
                    g[i - off] += mu * (params[i] - anchor[i]);
                }
            });
        });
    }
    optimizer.step(&mut params, &grads, frozen);
    model.load_flat(&params);
    apf_tensor::scratch::give(params);
    apf_tensor::scratch::give(grads);
    loss
}

/// Evaluates classification accuracy over `(x, labels)` in mini-batches.
///
/// # Panics
/// Panics if `labels.len()` differs from the number of rows in `x` or if
/// `batch_size` is zero.
pub fn evaluate(model: &mut Sequential, x: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = x.shape()[0];
    assert_eq!(labels.len(), n, "label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let row: usize = x.shape()[1..].iter().product();
    let mut correct = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let mut shape = x.shape().to_vec();
        shape[0] = end - start;
        let batch = Tensor::scratch_from(&x.data()[start * row..end * row], &shape);
        let logits = model.forward(batch, Mode::Eval);
        correct += (accuracy(&logits, &labels[start..end]) * (end - start) as f32).round() as usize;
        logits.recycle();
        start = end;
    }
    correct as f32 / n as f32
}

/// Owns a model, optimizer and schedule, counting steps.
///
/// This is the unit a federated client wraps: it performs local iterations
/// and exposes the flat parameter vector for synchronization.
pub struct Trainer {
    model: Sequential,
    optimizer: Box<dyn Optimizer>,
    schedule: LrSchedule,
    frozen: FreezeMask,
    step: usize,
    prox: Option<(f32, Vec<f32>)>,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("model", &self.model)
            .field("step", &self.step)
            .finish()
    }
}

impl Trainer {
    /// Wraps a model with an optimizer and learning-rate schedule.
    pub fn new(mut model: Sequential, optimizer: Box<dyn Optimizer>, schedule: LrSchedule) -> Self {
        let frozen = model.flat_spec().freeze_mask();
        Trainer {
            model,
            optimizer,
            schedule,
            frozen,
            step: 0,
            prox: None,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Number of completed training steps.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Overwrites the step counter — used when a dormant client resumes, so
    /// the learning-rate schedule picks up exactly where it left off.
    pub fn set_step_count(&mut self, step: usize) {
        self.step = step;
    }

    /// Serialized optimizer state (see [`Optimizer::export_state`]).
    pub fn optimizer_state(&self) -> Vec<f32> {
        self.optimizer.export_state()
    }

    /// Restores optimizer state captured by [`Trainer::optimizer_state`].
    /// An empty slice resets the optimizer to its fresh state.
    ///
    /// # Panics
    /// Panics when `state` does not match the optimizer's layout.
    pub fn load_optimizer_state(&mut self, state: &[f32]) {
        self.optimizer.import_state(state);
    }

    /// The bit-packed per-scalar freeze mask the optimizer skips (buffer
    /// scalars such as batch-norm running statistics).
    pub fn freeze_mask(&self) -> &FreezeMask {
        &self.frozen
    }

    /// Enables the FedProx proximal term anchored at `anchor`.
    pub fn set_prox(&mut self, mu: f32, anchor: Vec<f32>) {
        self.prox = Some((mu, anchor));
    }

    /// Disables the FedProx proximal term.
    pub fn clear_prox(&mut self) {
        self.prox = None;
    }

    /// Runs one training step; returns the batch loss.
    pub fn train_batch(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let lr = self.schedule.lr_at(self.step);
        self.optimizer.set_lr(lr);
        let prox = self.prox.as_ref().map(|(mu, a)| (*mu, a.as_slice()));
        let loss = train_batch(
            &mut self.model,
            self.optimizer.as_mut(),
            x,
            labels,
            &self.frozen,
            prox,
        );
        self.step += 1;
        loss
    }

    /// Evaluates accuracy on `(x, labels)`.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize], batch_size: usize) -> f32 {
        evaluate(&mut self.model, x, labels, batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Linear};
    use crate::optim::Sgd;
    use apf_tensor::{normal_init, seeded_rng};

    fn toy_problem(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        // Two Gaussian blobs in 2-D: class 0 around (-1,-1), class 1 around (1,1).
        let mut rng = seeded_rng(seed);
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -1.0 } else { 1.0 };
            let noise = normal_init(&[2], 0.0, 0.3, &mut rng);
            x.push(center + noise.data()[0]);
            x.push(center + noise.data()[1]);
            y.push(c);
        }
        (Tensor::from_vec(x, &[n, 2]), y)
    }

    fn toy_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new("toy", seed)
            .push(Linear::new("fc1", 2, 8, &mut rng))
            .push(Activation::relu())
            .push(Linear::new("fc2", 8, 2, &mut rng))
    }

    #[test]
    fn training_learns_blobs() {
        let (x, y) = toy_problem(64, 0);
        let mut trainer = Trainer::new(
            toy_model(0),
            Box::new(Sgd::new(0.1).with_momentum(0.9)),
            LrSchedule::Constant(0.1),
        );
        let initial = trainer.evaluate(&x, &y, 16);
        let mut last_loss = f32::INFINITY;
        for _ in 0..100 {
            last_loss = trainer.train_batch(&x, &y);
        }
        let final_acc = trainer.evaluate(&x, &y, 16);
        assert!(final_acc > 0.95, "accuracy {final_acc} (initial {initial})");
        assert!(last_loss < 0.2, "loss {last_loss}");
        assert_eq!(trainer.step_count(), 100);
    }

    #[test]
    fn prox_term_pulls_toward_anchor() {
        let (x, y) = toy_problem(32, 1);
        // Strong proximal pull toward the initial parameters should keep the
        // model close to them even under training pressure.
        let mut free = Trainer::new(
            toy_model(2),
            Box::new(Sgd::new(0.05)),
            LrSchedule::Constant(0.05),
        );
        let mut proxed = Trainer::new(
            toy_model(2),
            Box::new(Sgd::new(0.05)),
            LrSchedule::Constant(0.05),
        );
        let anchor = proxed.model_mut().flat_params();
        // lr * mu = 0.5: a stable, strongly contracting proximal pull.
        proxed.set_prox(10.0, anchor.clone());
        for _ in 0..20 {
            free.train_batch(&x, &y);
            proxed.train_batch(&x, &y);
        }
        let drift = |t: &mut Trainer| -> f32 {
            t.model_mut()
                .flat_params()
                .iter()
                .zip(&anchor)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        let d_free = drift(&mut free);
        let d_prox = drift(&mut proxed);
        assert!(
            d_prox < d_free * 0.5,
            "prox drift {d_prox} vs free {d_free}"
        );
    }

    #[test]
    fn evaluate_handles_uneven_batches() {
        let (x, y) = toy_problem(10, 3);
        let mut model = toy_model(3);
        let a1 = evaluate(&mut model, &x, &y, 3);
        let a2 = evaluate(&mut model, &x, &y, 10);
        assert!((a1 - a2).abs() < 1e-6);
    }

    #[test]
    fn trainer_suspend_resume_is_bitwise_exact() {
        let (x, y) = toy_problem(16, 5);
        let schedule = LrSchedule::Multiplicative {
            initial: 0.1,
            factor: 0.5,
            every: 2,
        };
        let mut reference = Trainer::new(
            toy_model(5),
            Box::new(Sgd::new(0.1).with_momentum(0.9)),
            schedule,
        );
        for _ in 0..3 {
            reference.train_batch(&x, &y);
        }
        // Capture the dormant snapshot: params + optimizer state + step count.
        let params = reference.model_mut().flat_params();
        let opt_state = reference.optimizer_state();
        let step = reference.step_count();
        // Rebuild from a differently-seeded model and restore everything.
        let mut resumed = Trainer::new(
            toy_model(99),
            Box::new(Sgd::new(0.1).with_momentum(0.9)),
            schedule,
        );
        resumed.model_mut().load_flat(&params);
        resumed.load_optimizer_state(&opt_state);
        resumed.set_step_count(step);
        for _ in 0..3 {
            reference.train_batch(&x, &y);
            resumed.train_batch(&x, &y);
        }
        assert_eq!(
            reference.model_mut().flat_params(),
            resumed.model_mut().flat_params()
        );
    }

    #[test]
    fn schedule_decays_lr() {
        let (x, y) = toy_problem(8, 4);
        let mut t = Trainer::new(
            toy_model(4),
            Box::new(Sgd::new(1.0)),
            LrSchedule::Multiplicative {
                initial: 1.0,
                factor: 0.5,
                every: 1,
            },
        );
        t.train_batch(&x, &y);
        t.train_batch(&x, &y);
        // After two steps the internal optimizer lr must have decayed.
        assert!(t.optimizer.lr() <= 0.5);
    }
}
