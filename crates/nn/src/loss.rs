//! Softmax cross-entropy loss and accuracy metrics.

use apf_tensor::Tensor;

/// Row-wise numerically stable softmax of a `[N, C]` logit matrix.
///
/// # Panics
/// Panics if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = logits.scratch_copy();
    softmax_in_place(&mut out);
    out
}

/// In-place row-wise numerically stable softmax of a `[N, C]` matrix.
///
/// # Panics
/// Panics if `x` is not rank 2.
pub fn softmax_in_place(x: &mut Tensor) {
    assert_eq!(x.shape().len(), 2, "softmax expects [N, C]");
    let c = x.shape()[1];
    for row in x.data_mut().chunks_mut(c) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Mean softmax cross-entropy over a batch, plus the gradient w.r.t. logits.
///
/// Returns `(loss, grad)` where `grad` already includes the `1/N` batch
/// averaging, so callers can backpropagate it directly.
///
/// # Panics
/// Panics if `labels.len()` differs from the batch size or any label is out
/// of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "loss expects [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    // One scratch copy serves as both the probabilities and the gradient:
    // read each row's target probability for the loss, then turn the row
    // into the gradient in place.
    let mut grad = softmax(logits);
    let mut loss = 0.0f32;
    let inv_n = 1.0 / n as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = grad.data()[i * c + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[i * c + label] -= 1.0;
    }
    grad.scale(inv_n);
    (loss * inv_n, grad)
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
/// Panics if `labels.len()` differs from the number of rows.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let p = softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.3], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: fd={fd} analytic={}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, 0.1, -0.7, 1.0, 2.0, 3.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        for row in grad.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]), 0.0);
    }
}
