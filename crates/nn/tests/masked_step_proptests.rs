//! Property tests for the skip-frozen optimizer fast paths: a full
//! [`Sgd`] / [`Adam`] step over a random bit-packed [`FreezeMask`] must be
//! bitwise identical to a per-scalar reference that applies the textbook
//! update to unfrozen scalars and skips frozen ones entirely (parameters
//! *and* optimizer state untouched), and bitwise invariant across
//! `APF_PAR_THREADS` ∈ {1, 2, 7}.
//!
//! Masks are generated word-by-word from a class generator so every run
//! exercises all-frozen words (skipped with one compare), all-unfrozen
//! words (one whole-word run), and mixed words (bit-run decomposition),
//! plus a ragged tail word.

use apf::FreezeMask;
use apf_nn::{Adam, Optimizer, Sgd};
use apf_testkit::{prop_assert_eq, property, u64s, u8s, usizes, vecs};

/// Expands per-word classes into a frozen vector of
/// `(classes.len() - 1) * 64 + tail` scalars. Classes: 0 = all frozen,
/// 1 = all unfrozen, 2 = alternating bits, 3 = seeded pseudo-random.
fn mask_from_classes(classes: &[u8], tail: usize, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    let mut frozen = Vec::with_capacity(classes.len() * 64);
    for (w, &class) in classes.iter().enumerate() {
        let nbits = if w + 1 == classes.len() { tail } else { 64 };
        for j in 0..nbits {
            frozen.push(match class {
                0 => true,
                1 => false,
                2 => j % 2 == 0,
                _ => {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state.wrapping_mul(0x2545_f491_4f6c_dd1d) & (1 << 63) != 0
                }
            });
        }
    }
    frozen
}

/// Deterministic well-formed f32 data in roughly [-2, 2).
fn data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 22) as f32) - 2.0
        })
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Per-scalar SGD reference: frozen scalars are skipped entirely, so the
/// velocity of a frozen scalar does not advance.
fn sgd_reference(
    lr: f32,
    momentum: f32,
    wd: f32,
    p: &mut [f32],
    vel: &mut [f32],
    g: &[f32],
    frozen: &[bool],
) {
    for i in 0..p.len() {
        if frozen[i] {
            continue;
        }
        let grad = g[i] + wd * p[i];
        if momentum != 0.0 {
            let v = momentum * vel[i] + grad;
            vel[i] = v;
            p[i] -= lr * v;
        } else {
            p[i] -= lr * grad;
        }
    }
}

/// Per-scalar Adam reference with the step-count bias correction shared
/// across the whole vector (state `t` advances per step, not per scalar).
#[allow(clippy::too_many_arguments)]
fn adam_reference(
    lr: f32,
    wd: f32,
    t: u64,
    p: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    frozen: &[bool],
) {
    let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);
    let b1t = 1.0 - beta1.powi(t as i32);
    let b2t = 1.0 - beta2.powi(t as i32);
    for i in 0..p.len() {
        if frozen[i] {
            continue;
        }
        let grad = g[i] + wd * p[i];
        m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
        v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
        let mhat = m[i] / b1t;
        let vhat = v[i] / b2t;
        p[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

property! {
    // Three consecutive fast-path steps equal the per-scalar reference bit
    // for bit — multiple steps so stale optimizer state on a frozen scalar
    // (velocity, moments) would surface as divergence, not just a one-step
    // parameter mismatch.
    fn steps_match_per_scalar_reference(
        classes in vecs(u8s(0..4), 1..6),
        tail in usizes(1..65),
        seed in u64s(0..u64::MAX),
        lr_raw in u8s(1..100),
        wd_on in u8s(0..2)
    ) {
        let frozen = mask_from_classes(&classes, tail, seed);
        let mask = FreezeMask::from_bools(&frozen);
        let n = frozen.len();
        let lr = lr_raw as f32 / 500.0;
        let wd = if wd_on == 1 { 0.01 } else { 0.0 };
        let init = data(n, seed ^ 0xfeed);

        let mut sgd = Sgd::new(lr).with_momentum(0.9).with_weight_decay(wd);
        let mut plain = Sgd::new(lr).with_weight_decay(wd);
        let mut adam = Adam::new(lr).with_weight_decay(wd);
        let mut sgd_p = init.clone();
        let mut plain_p = init.clone();
        let mut adam_p = init.clone();
        let (mut ref_sgd_p, mut ref_vel) = (init.clone(), vec![0.0f32; n]);
        let mut ref_plain_p = init.clone();
        let (mut ref_adam_p, mut ref_m, mut ref_v) =
            (init.clone(), vec![0.0f32; n], vec![0.0f32; n]);

        for step in 1..=3u64 {
            let g = data(n, seed ^ (0x60 + step));
            sgd.step(&mut sgd_p, &g, &mask);
            plain.step(&mut plain_p, &g, &mask);
            adam.step(&mut adam_p, &g, &mask);
            sgd_reference(lr, 0.9, wd, &mut ref_sgd_p, &mut ref_vel, &g, &frozen);
            sgd_reference(lr, 0.0, wd, &mut ref_plain_p, &mut [], &g, &frozen);
            adam_reference(lr, wd, step, &mut ref_adam_p, &mut ref_m, &mut ref_v, &g, &frozen);
            prop_assert_eq!(bits(&sgd_p), bits(&ref_sgd_p), "sgd+momentum step {step}");
            prop_assert_eq!(bits(&plain_p), bits(&ref_plain_p), "plain sgd step {step}");
            prop_assert_eq!(bits(&adam_p), bits(&ref_adam_p), "adam step {step}");
            // Frozen parameters are exactly the initial values — never read,
            // never written, not even rewritten with an identical value via
            // a wasted arithmetic pass.
            for j in 0..n {
                if frozen[j] {
                    prop_assert_eq!(sgd_p[j].to_bits(), init[j].to_bits(), "frozen {j}");
                    prop_assert_eq!(adam_p[j].to_bits(), init[j].to_bits(), "frozen {j}");
                }
            }
        }
    }

    // Bitwise thread-count invariance on vectors large enough to cross the
    // optimizer's serial cutoff: the chunked pool path at APF_PAR_THREADS
    // ∈ {2, 7} must reproduce the single-thread result exactly, fresh
    // optimizer instances per thread count.
    fn steps_thread_invariant_above_parallel_cutoff(
        word_seed in u64s(0..u64::MAX),
        lr_raw in u8s(1..100)
    ) {
        // 1 << 15 is the optimizer PAR_STEP_MIN; +517 leaves a ragged tail.
        let n = (1usize << 15) + 517;
        let frozen = mask_from_classes(&vec![3u8; n.div_ceil(64)], n % 64, word_seed);
        let mask = FreezeMask::from_bools(&frozen);
        let lr = lr_raw as f32 / 500.0;
        let init = data(n, word_seed ^ 0xbeef);
        let g1 = data(n, word_seed ^ 0x51);
        let g2 = data(n, word_seed ^ 0x52);

        let run = |t: usize| {
            apf_par::with_threads(t, || {
                let mut sp = init.clone();
                let mut sgd = Sgd::new(lr).with_momentum(0.9).with_weight_decay(0.01);
                sgd.step(&mut sp, &g1, &mask);
                sgd.step(&mut sp, &g2, &mask);
                let mut ap = init.clone();
                let mut adam = Adam::new(lr).with_weight_decay(0.01);
                adam.step(&mut ap, &g1, &mask);
                adam.step(&mut ap, &g2, &mask);
                (sp, ap)
            })
        };
        let (sgd_1, adam_1) = run(1);
        for t in [2usize, 7] {
            let (sgd_t, adam_t) = run(t);
            prop_assert_eq!(bits(&sgd_1), bits(&sgd_t), "sgd threads={t}");
            prop_assert_eq!(bits(&adam_1), bits(&adam_t), "adam threads={t}");
        }
    }
}

#[test]
fn all_frozen_and_none_frozen_edge_masks() {
    // The two degenerate masks at lengths straddling word boundaries: an
    // all-frozen step is a no-op, a none-frozen step equals the dense
    // reference on every scalar.
    for n in [1usize, 64, 65, 130] {
        let init = data(n, 3);
        let g = data(n, 4);
        let all = vec![true; n];
        let none = vec![false; n];
        for (frozen, label) in [(&all, "all"), (&none, "none")] {
            let mask = FreezeMask::from_bools(frozen);
            let mut p = init.clone();
            let mut sgd = Sgd::new(0.1).with_momentum(0.9);
            sgd.step(&mut p, &g, &mask);
            let mut expect = init.clone();
            let mut vel = vec![0.0f32; n];
            sgd_reference(0.1, 0.9, 0.0, &mut expect, &mut vel, &g, frozen);
            assert_eq!(bits(&p), bits(&expect), "sgd n={n} {label}-frozen");
            if *frozen == all {
                assert_eq!(bits(&p), bits(&init), "all-frozen must be a no-op");
            }
            let mut ap = init.clone();
            let mut adam = Adam::new(0.05);
            adam.step(&mut ap, &g, &mask);
            let mut aexpect = init.clone();
            let (mut m, mut v) = (vec![0.0f32; n], vec![0.0f32; n]);
            adam_reference(0.05, 0.0, 1, &mut aexpect, &mut m, &mut v, &g, frozen);
            assert_eq!(bits(&ap), bits(&aexpect), "adam n={n} {label}-frozen");
        }
    }
}
