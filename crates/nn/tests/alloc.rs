//! Steady-state allocation test: after a warm-up round, the GEMM/conv
//! training hot path must be served entirely from the thread-local scratch
//! pool — zero buffer allocations (`misses`) per further step.
//!
//! Runs under `with_threads(1)` so every kernel executes on the test thread
//! and the pool counters observed here cover all hot-path traffic.

use apf::FreezeMask;
use apf_nn::models::lenet5;
use apf_nn::{evaluate, train_batch, Sgd};
use apf_tensor::{scratch, seeded_rng, uniform_init, Tensor};

fn batch(n: usize) -> (Tensor, Vec<usize>) {
    let mut rng = seeded_rng(7);
    let x = uniform_init(&[n, 3, 16, 16], -1.0, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % 10).collect();
    (x, labels)
}

#[test]
fn training_steady_state_allocates_no_tensor_buffers() {
    apf_par::with_threads(1, || {
        scratch::clear();
        let mut model = lenet5(3);
        let mut opt = Sgd::new(0.01).with_momentum(0.9);
        let frozen = FreezeMask::all_unfrozen(model.param_count());
        let (x, labels) = batch(8);
        // Warm-up: populate layer caches, optimizer state, and the pool.
        for _ in 0..3 {
            train_batch(&mut model, &mut opt, &x, &labels, &frozen, None);
        }
        scratch::reset_stats();
        for _ in 0..5 {
            train_batch(&mut model, &mut opt, &x, &labels, &frozen, None);
        }
        let s = scratch::stats();
        assert!(s.takes > 0, "scratch pool unused — instrumentation broken?");
        assert_eq!(
            s.misses, 0,
            "steady-state training allocated tensor buffers: {s:?}"
        );
        scratch::clear();
    });
}

#[test]
fn evaluation_steady_state_allocates_no_tensor_buffers() {
    apf_par::with_threads(1, || {
        scratch::clear();
        let mut model = lenet5(4);
        let (x, labels) = batch(12);
        // Warm-up (layer caches are replace-and-recycled, so eval-only loops
        // reach a fixed point too).
        evaluate(&mut model, &x, &labels, 4);
        scratch::reset_stats();
        for _ in 0..3 {
            evaluate(&mut model, &x, &labels, 4);
        }
        let s = scratch::stats();
        assert!(s.takes > 0, "scratch pool unused — instrumentation broken?");
        assert_eq!(
            s.misses, 0,
            "steady-state evaluation allocated tensor buffers: {s:?}"
        );
        scratch::clear();
    });
}
