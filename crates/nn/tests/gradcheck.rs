//! Property-based gradient checks: every differentiable layer's backward
//! pass must agree with central finite differences on random shapes and
//! inputs. This is the strongest guarantee we can give that the manual
//! backprop substrate (on which every APF experiment rests) is correct.

use apf_nn::{
    Activation, ActivationKind, BatchNorm2d, Flatten, LastStep, Layer, Linear, LstmLayer, Mode,
    Sequential,
};
use apf_tensor::{seeded_rng, Tensor};
use apf_testkit::{prop_assert, property, u64s, u8s, usizes, TestCaseResult};

/// Central finite-difference check of `d(sum(output))/d(input)` against the
/// layer's analytic backward, at a handful of positions.
fn check_input_grad(build: &dyn Fn() -> Box<dyn Layer>, input: Tensor, tol: f32) -> TestCaseResult {
    let mut rng = seeded_rng(0);
    let mut layer = build();
    let y = layer.forward(input.clone(), Mode::Eval, &mut rng);
    let analytic = layer.backward(Tensor::ones(y.shape()));
    let eps = 1e-2;
    let stride = (input.numel() / 5).max(1);
    for idx in (0..input.numel()).step_by(stride) {
        let mut xp = input.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = input.clone();
        xm.data_mut()[idx] -= eps;
        let mut lp = build();
        let yp = lp.forward(xp, Mode::Eval, &mut rng).sum();
        let mut lm = build();
        let ym = lm.forward(xm, Mode::Eval, &mut rng).sum();
        let fd = (yp - ym) / (2.0 * eps);
        let an = analytic.data()[idx];
        prop_assert!(
            (fd - an).abs() <= tol * (1.0 + fd.abs()),
            "idx {}: fd={} analytic={}",
            idx,
            fd,
            an
        );
    }
    Ok(())
}

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        (0..n)
            .map(|i| {
                let h = apf_tensor::splitmix64(seed ^ i as u64);
                let v = ((h % 2000) as f32 / 1000.0) - 1.0;
                // Keep every value at least 0.05 from 0 so finite differences
                // never straddle the ReLU kink (eps = 1e-2 below).
                if v >= 0.0 {
                    v + 0.05
                } else {
                    v - 0.05
                }
            })
            .collect(),
        shape,
    )
}

property! {
    [16]
    fn linear_grad_random_shapes(
        inf in usizes(1..8),
        outf in usizes(1..8),
        n in usizes(1..4),
        seed in u64s(0..1000),
    ) {
        let build = move || -> Box<dyn Layer> {
            let mut rng = seeded_rng(seed);
            Box::new(Linear::new("l", inf, outf, &mut rng))
        };
        check_input_grad(&build, rand_tensor(&[n, inf], seed), 2e-2)?;
    }

    [16]
    fn activation_grads_random(
        n in usizes(1..6),
        d in usizes(1..8),
        seed in u64s(0..1000),
        kind in u8s(0..3),
    ) {
        let kind = match kind {
            0 => ActivationKind::Relu,
            1 => ActivationKind::Tanh,
            _ => ActivationKind::Sigmoid,
        };
        let build = move || -> Box<dyn Layer> { Box::new(Activation::new(kind)) };
        check_input_grad(&build, rand_tensor(&[n, d], seed), 2e-2)?;
    }

    [16]
    fn lstm_grad_random_shapes(
        d in usizes(1..4),
        h in usizes(1..4),
        t in usizes(1..4),
        seed in u64s(0..200),
    ) {
        let build = move || -> Box<dyn Layer> {
            let mut rng = seeded_rng(seed);
            Box::new(LstmLayer::new("l", d, h, &mut rng))
        };
        check_input_grad(&build, rand_tensor(&[2, t, d], seed), 3e-2)?;
    }

    [16]
    fn batchnorm_eval_grad(
        c in usizes(1..4),
        hw in usizes(1..4),
        seed in u64s(0..200),
    ) {
        // Eval mode: running stats are constants, so the gradient is exact.
        let build = move || -> Box<dyn Layer> { Box::new(BatchNorm2d::new("bn", c)) };
        check_input_grad(&build, rand_tensor(&[2, c, hw, hw], seed), 2e-2)?;
    }

    [16]
    fn shape_adapters_grads(
        n in usizes(1..4),
        c in usizes(1..4),
        hw in usizes(1..4),
        t in usizes(1..4),
        seed in u64s(0..200),
    ) {
        let build_f = || -> Box<dyn Layer> { Box::new(Flatten::new()) };
        check_input_grad(&build_f, rand_tensor(&[n, c, hw, hw], seed), 1e-3)?;
        let build_l = || -> Box<dyn Layer> { Box::new(LastStep::new()) };
        check_input_grad(&build_l, rand_tensor(&[n, t, c], seed), 1e-3)?;
    }

    [16]
    fn sequential_composition_grad(
        seed in u64s(0..200),
        hidden in usizes(1..6),
    ) {
        // A whole stack: gradient through composition must also match FD.
        let build_model = move || {
            let mut rng = seeded_rng(seed);
            Sequential::new("s", seed)
                .push(Linear::new("a", 3, hidden, &mut rng))
                .push(Activation::new(ActivationKind::Tanh))
                .push(Linear::new("b", hidden, 2, &mut rng))
        };
        let x = rand_tensor(&[2, 3], seed);
        let mut m = build_model();
        let y = m.forward(x.clone(), Mode::Eval);
        let analytic = m.backward(Tensor::ones(y.shape()));
        let eps = 1e-2;
        for idx in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp = build_model().forward(xp, Mode::Eval).sum();
            let ym = build_model().forward(xm, Mode::Eval).sum();
            let fd = (yp - ym) / (2.0 * eps);
            prop_assert!(
                (fd - analytic.data()[idx]).abs() <= 2e-2 * (1.0 + fd.abs()),
                "idx {}: fd={} analytic={}", idx, fd, analytic.data()[idx]
            );
        }
    }

    [16]
    fn parameter_grads_accumulate_linearly(seed in u64s(0..500)) {
        // Backward twice with the same upstream gradient must exactly double
        // every parameter gradient (accumulation contract of the Layer trait).
        let mut rng = seeded_rng(seed);
        let mut l = Linear::new("l", 4, 3, &mut rng);
        let x = rand_tensor(&[2, 4], seed);
        let y = l.forward(x.clone(), Mode::Eval, &mut rng);
        l.backward(Tensor::ones(y.shape()));
        let mut once = Vec::new();
        l.visit_params(&mut |_, _, _, g| once.extend_from_slice(g.data()));
        let y = l.forward(x, Mode::Eval, &mut rng);
        l.backward(Tensor::ones(y.shape()));
        let mut twice = Vec::new();
        l.visit_params(&mut |_, _, _, g| twice.extend_from_slice(g.data()));
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((2.0 * a - b).abs() < 1e-4);
        }
    }
}
