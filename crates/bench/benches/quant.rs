//! Criterion benchmarks for the quantization codecs used by APF+Q (§7.7).

use apf_quant::{f16_decode, f16_encode, qsgd_encode, ternary_encode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn payload(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37).sin() * 2.0).collect()
}

fn bench_f16(c: &mut Criterion) {
    let mut g = c.benchmark_group("f16_roundtrip");
    for &n in &[1_000usize, 20_000, 100_000] {
        let xs = payload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| f16_decode(&f16_encode(&xs)));
        });
    }
    g.finish();
}

fn bench_qsgd(c: &mut Criterion) {
    let mut g = c.benchmark_group("qsgd_encode");
    for &n in &[1_000usize, 20_000] {
        let xs = payload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qsgd_encode(&xs, 4, 0));
        });
    }
    g.finish();
}

fn bench_ternary(c: &mut Criterion) {
    let mut g = c.benchmark_group("ternary_encode");
    for &n in &[1_000usize, 20_000] {
        let xs = payload(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ternary_encode(&xs, 0));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_f16, bench_qsgd, bench_ternary);
criterion_main!(benches);
