//! Benchmarks for the quantization codecs used by APF+Q (§7.7).
//!
//! Plain harness (`apf_bench::harness`); run with
//! `cargo bench -p apf-bench --bench quant`.

use apf_bench::harness::{black_box, BenchGroup};
use apf_quant::{f16_decode, f16_encode, qsgd_encode, ternary_encode};

fn payload(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.37).sin() * 2.0).collect()
}

fn main() {
    let mut g = BenchGroup::new("f16_roundtrip");
    for &n in &[1_000usize, 20_000, 100_000] {
        let xs = payload(n);
        g.bench(&n.to_string(), || {
            black_box(f16_decode(&f16_encode(&xs)));
        });
    }

    let mut g = BenchGroup::new("qsgd_encode");
    for &n in &[1_000usize, 20_000] {
        let xs = payload(n);
        g.bench(&n.to_string(), || {
            black_box(qsgd_encode(&xs, 4, 0));
        });
    }

    let mut g = BenchGroup::new("ternary_encode");
    for &n in &[1_000usize, 20_000] {
        let xs = payload(n);
        g.bench(&n.to_string(), || {
            black_box(ternary_encode(&xs, 0));
        });
    }
}
