//! Criterion benchmarks for the numerical substrate: matmul, conv2d, and a
//! full training step of each paper model (the compute side of Table 3).

use apf_nn::{models, Mode, Sequential};
use apf_tensor::{conv2d_forward, normal_init, seeded_rng, ConvSpec, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = seeded_rng(0);
        let a = normal_init(&[n, n], 0.0, 1.0, &mut rng);
        let b = normal_init(&[n, n], 0.0, 1.0, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b));
        });
    }
    g.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d_forward");
    let mut rng = seeded_rng(0);
    let spec = ConvSpec { in_channels: 6, out_channels: 16, kernel: 5, stride: 1, padding: 0 };
    let input = normal_init(&[8, 6, 16, 16], 0.0, 1.0, &mut rng);
    let weight = normal_init(&[16, 6 * 25], 0.0, 0.1, &mut rng);
    let bias = Tensor::zeros(&[16]);
    g.bench_function("lenet_conv2_batch8", |b| {
        b.iter(|| conv2d_forward(&input, &weight, &bias, &spec));
    });
    g.finish();
}

fn forward_once(model: &mut Sequential, x: &Tensor) -> f32 {
    model.forward(x.clone(), Mode::Eval).sum()
}

fn bench_model_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_forward_batch16");
    g.sample_size(20);
    let mut rng = seeded_rng(0);
    let img = normal_init(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    let seq = normal_init(&[16, 20, 10], 0.0, 1.0, &mut rng);
    for name in ["lenet5", "resnet", "lstm"] {
        let mut model = models::by_name(name, 0);
        let x = if name == "lstm" { seq.clone() } else { img.clone() };
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| forward_once(&mut model, &x));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_model_forward);
criterion_main!(benches);
