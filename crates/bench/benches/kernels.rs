//! Benchmarks for the numerical substrate: matmul, conv2d, and a full
//! forward pass of each paper model (the compute side of Table 3).
//!
//! Plain harness (`apf_bench::harness`); run with
//! `cargo bench -p apf-bench --bench kernels`.

use apf_bench::harness::{black_box, BenchGroup};
use apf_nn::{models, Mode, Sequential};
use apf_tensor::{conv2d_forward, normal_init, seeded_rng, ConvSpec, Tensor};

fn forward_once(model: &mut Sequential, x: &Tensor) -> f32 {
    model.forward(x.clone(), Mode::Eval).sum()
}

fn main() {
    let mut g = BenchGroup::new("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = seeded_rng(0);
        let a = normal_init(&[n, n], 0.0, 1.0, &mut rng);
        let b = normal_init(&[n, n], 0.0, 1.0, &mut rng);
        g.bench(&n.to_string(), || {
            black_box(a.matmul(&b));
        });
    }

    // Thread sweep over the apf-par pool (results identical by contract;
    // only time should move, and only on multi-core hosts).
    let mut g = BenchGroup::new("matmul192_threads");
    let mut rng = seeded_rng(0);
    let a = normal_init(&[192, 192], 0.0, 1.0, &mut rng);
    let b = normal_init(&[192, 192], 0.0, 1.0, &mut rng);
    for t in [1usize, 2, 4] {
        apf_par::with_threads(t, || {
            g.bench(&format!("t{t}"), || {
                black_box(a.matmul(&b));
            });
        });
    }

    let mut g = BenchGroup::new("conv2d_forward");
    let mut rng = seeded_rng(0);
    let spec = ConvSpec {
        in_channels: 6,
        out_channels: 16,
        kernel: 5,
        stride: 1,
        padding: 0,
    };
    let input = normal_init(&[8, 6, 16, 16], 0.0, 1.0, &mut rng);
    let weight = normal_init(&[16, 6 * 25], 0.0, 0.1, &mut rng);
    let bias = Tensor::zeros(&[16]);
    g.bench("lenet_conv2_batch8", || {
        black_box(conv2d_forward(&input, &weight, &bias, &spec));
    });

    let mut g = BenchGroup::new("model_forward_batch16");
    let mut rng = seeded_rng(0);
    let img = normal_init(&[16, 3, 16, 16], 0.0, 1.0, &mut rng);
    let seq = normal_init(&[16, 20, 10], 0.0, 1.0, &mut rng);
    for name in ["lenet5", "resnet", "lstm"] {
        let mut model = models::by_name(name, 0).unwrap();
        let x = if name == "lstm" {
            seq.clone()
        } else {
            img.clone()
        };
        g.bench(name, || {
            black_box(forward_once(&mut model, &x));
        });
    }
}
