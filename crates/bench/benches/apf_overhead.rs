//! Micro-benchmarks of the APF manager's per-round operations — the
//! measured basis of Table 4 (§7.9): rollback, masked select, aggregate
//! scatter, and the stability check, across the three model sizes.
//!
//! Plain harness (`apf_bench::harness`); run with
//! `cargo bench -p apf-bench --bench apf_overhead`.

use apf::{Aimd, ApfConfig, ApfManager};
use apf_bench::harness::{black_box, BenchGroup};
use apf_nn::models;

fn model_sizes() -> Vec<(&'static str, usize)> {
    vec![
        ("lenet5", models::lenet5(0).num_params()),
        ("resnet", models::resnet(0).num_params()),
        ("lstm", models::lstm_classifier(0).num_params()),
    ]
}

/// A manager mid-training: roughly half the scalars frozen, EMA state warm.
fn warmed_manager(n: usize) -> (ApfManager, Vec<f32>) {
    let init = vec![0.0f32; n];
    let cfg = ApfConfig {
        check_every_rounds: 1,
        threshold_decay: None,
        ..ApfConfig::default()
    };
    let mut mgr = ApfManager::new(&init, cfg, Box::new(Aimd::default())).unwrap();
    let mut params = init;
    for r in 0..20u64 {
        for (j, p) in params.iter_mut().enumerate() {
            if !mgr.is_frozen(j, r) {
                // Half the scalars oscillate (will freeze), half drift.
                *p += if j % 2 == 0 {
                    if r % 2 == 0 {
                        0.1
                    } else {
                        -0.1
                    }
                } else {
                    0.05
                };
            }
        }
        mgr.sync(&mut params, r, |up| up.to_vec());
    }
    (mgr, params)
}

fn main() {
    let mut g = BenchGroup::new("apf_rollback");
    for (name, n) in model_sizes() {
        let (mgr, params) = warmed_manager(n);
        let mut p = params.clone();
        g.bench(name, || {
            mgr.rollback(&mut p, 25);
        });
    }

    let mut g = BenchGroup::new("apf_select_unfrozen");
    for (name, n) in model_sizes() {
        let (mgr, params) = warmed_manager(n);
        g.bench(name, || {
            black_box(mgr.select_unfrozen(&params, 25));
        });
    }

    let mut g = BenchGroup::new("apf_full_round");
    for (name, n) in model_sizes() {
        let (mut mgr, params) = warmed_manager(n);
        let mut p = params.clone();
        let mut r = 25u64;
        g.bench(name, || {
            mgr.sync(&mut p, r, |up| up.to_vec());
            r += 1;
        });
    }

    let mut g = BenchGroup::new("apf_stability_check_via_finish");
    for (name, n) in model_sizes() {
        let (mut mgr, params) = warmed_manager(n);
        let mut r = 25u64;
        g.bench(name, || {
            mgr.finish_round(&params, r);
            r += 1;
        });
    }
}
