//! Criterion micro-benchmarks of the APF manager's per-round operations —
//! the measured basis of Table 4 (§7.9): rollback, masked select, aggregate
//! scatter, and the stability check, across the three model sizes.

use apf::{Aimd, ApfConfig, ApfManager};
use apf_nn::models;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn model_sizes() -> Vec<(&'static str, usize)> {
    vec![
        ("lenet5", models::lenet5(0).num_params()),
        ("resnet", models::resnet(0).num_params()),
        ("lstm", models::lstm_classifier(0).num_params()),
    ]
}

/// A manager mid-training: roughly half the scalars frozen, EMA state warm.
fn warmed_manager(n: usize) -> (ApfManager, Vec<f32>) {
    let init = vec![0.0f32; n];
    let cfg = ApfConfig { check_every_rounds: 1, threshold_decay: None, ..ApfConfig::default() };
    let mut mgr = ApfManager::new(&init, cfg, Box::new(Aimd::default()));
    let mut params = init;
    for r in 0..20u64 {
        for (j, p) in params.iter_mut().enumerate() {
            if !mgr.is_frozen(j, r) {
                // Half the scalars oscillate (will freeze), half drift.
                *p += if j % 2 == 0 {
                    if r % 2 == 0 { 0.1 } else { -0.1 }
                } else {
                    0.05
                };
            }
        }
        mgr.sync(&mut params, r, |up| up.to_vec());
    }
    (mgr, params)
}

fn bench_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("apf_rollback");
    for (name, n) in model_sizes() {
        let (mgr, params) = warmed_manager(n);
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, _| {
            let mut p = params.clone();
            b.iter(|| mgr.rollback(&mut p, 25));
        });
    }
    g.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("apf_select_unfrozen");
    for (name, n) in model_sizes() {
        let (mgr, params) = warmed_manager(n);
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, _| {
            b.iter(|| mgr.select_unfrozen(&params, 25));
        });
    }
    g.finish();
}

fn bench_full_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("apf_full_round");
    g.sample_size(20);
    for (name, n) in model_sizes() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            let (mut mgr, params) = warmed_manager(n);
            let mut p = params.clone();
            let mut r = 25u64;
            b.iter(|| {
                mgr.sync(&mut p, r, |up| up.to_vec());
                r += 1;
            });
        });
    }
    g.finish();
}

fn bench_stability_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("apf_stability_check_via_finish");
    g.sample_size(20);
    for (name, n) in model_sizes() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, &n| {
            let (mut mgr, params) = warmed_manager(n);
            let mut r = 25u64;
            b.iter(|| {
                mgr.finish_round(&params, r);
                r += 1;
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rollback,
    bench_select,
    bench_full_round,
    bench_stability_check
);
criterion_main!(benches);
