//! End-to-end regression-gate test: drive the `ledger-report check` logic
//! (the same functions the bin calls) over a real ledger file — a clean
//! re-run must pass, a synthetically regressed record must fail.

use apf_bench::regress::{any_failure, check_records, find_baseline, Tolerances};
use apf_fedsim::{load_ledger, LedgerRecord};

fn record(digest: &str, accuracy: f64, bytes: u64, wall: f64) -> LedgerRecord {
    LedgerRecord {
        name: "mlp/fedavg".to_owned(),
        model: "mlp".to_owned(),
        strategy: "fedavg".to_owned(),
        config_digest: digest.to_owned(),
        rounds: 2,
        final_accuracy: accuracy,
        total_bytes: bytes,
        wall_secs: wall,
        sim_secs: wall,
        threads: 2,
        host_parallelism: 4,
        ..LedgerRecord::default()
    }
}

/// The check the bin performs: newest record vs its digest-matched
/// baseline; 0 = ok, 1 = regression (mirrors the process exit code).
fn check_exit_code(records: &[LedgerRecord]) -> i32 {
    if records.is_empty() {
        return 0;
    }
    let cand = records.len() - 1;
    let Some(base) = find_baseline(records, cand) else {
        return 0;
    };
    let findings = check_records(&records[base], &records[cand], &Tolerances::default());
    i32::from(any_failure(&findings))
}

#[test]
fn identical_rerun_passes_through_a_real_ledger_file() {
    let path = std::env::temp_dir().join("apf_bench_test_ledger_ok.jsonl");
    let _ = std::fs::remove_file(&path);
    let r = record("aaaa", 0.8, 1000, 5.0);
    r.append_to(&path).unwrap();
    r.append_to(&path).unwrap();
    let records = load_ledger(&path).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(check_exit_code(&records), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn synthetic_regression_fails_each_axis() {
    let base = record("bbbb", 0.8, 1000, 5.0);
    for bad in [
        record("bbbb", 0.7, 1000, 5.0),  // accuracy collapse
        record("bbbb", 0.8, 2000, 5.0),  // bytes blow-up
        record("bbbb", 0.8, 1000, 50.0), // wall-time blow-up (same host)
    ] {
        let path = std::env::temp_dir().join("apf_bench_test_ledger_bad.jsonl");
        let _ = std::fs::remove_file(&path);
        base.append_to(&path).unwrap();
        bad.append_to(&path).unwrap();
        let records = load_ledger(&path).unwrap();
        assert_eq!(check_exit_code(&records), 1, "{bad:?} should regress");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn first_run_and_unrelated_digests_pass() {
    // No earlier record shares the digest: nothing to compare, check is ok.
    let records = vec![
        record("cccc", 0.8, 1000, 5.0),
        record("dddd", 0.1, 99_999, 500.0),
    ];
    assert_eq!(check_exit_code(&records), 0);
}

#[test]
fn baseline_skips_interleaved_other_experiments() {
    // A kernels record lands between two runs of the same experiment; the
    // check must still pair the candidate with its digest twin.
    let records = vec![
        record("eeee", 0.8, 1000, 5.0),
        record("ffff", 0.0, 0, 1.0),
        record("eeee", 0.5, 1000, 5.0),
    ];
    assert_eq!(find_baseline(&records, 2), Some(0));
    assert_eq!(check_exit_code(&records), 1);
}
