//! End-to-end CLI test for `trace-report flame`: merge the per-process
//! folded profiles of one distributed run (server + clients, matching run
//! ids), render the merged document, honor `--assert-contains` with a
//! non-zero exit, refuse mixed runs, and emit parseable `--json`.

use std::path::PathBuf;
use std::process::Command;

use apf_fedsim::json;

const SERVER: &str =
    "# apf-prof run=00000000deadbeef role=server pid=10 passes=100 interval_us=1000\n\
    # alloc aggregate 3 4096\n\
    serve;round;aggregate 40\n\
    serve 60\n";
const CLIENT0: &str =
    "# apf-prof run=00000000deadbeef role=client:0 pid=11 passes=90 interval_us=1000\n\
    round;local_train 80\n";
const CLIENT1: &str =
    "# apf-prof run=00000000deadbeef role=client:1 pid=12 passes=90 interval_us=1000\n\
    round;local_train 75\n\
    round;push 5\n";

fn write_profiles(dir: &PathBuf) -> Vec<String> {
    std::fs::create_dir_all(dir).unwrap();
    let files = [
        ("server.folded", SERVER),
        ("client0.folded", CLIENT0),
        ("client1.folded", CLIENT1),
    ];
    files
        .iter()
        .map(|(name, text)| {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            path.to_str().unwrap().to_owned()
        })
        .collect()
}

fn flame(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_trace-report"))
        .arg("flame")
        .args(args)
        .output()
        .expect("run trace-report")
}

#[test]
fn merges_matching_runs_and_asserts_frames() {
    let dir = std::env::temp_dir().join("apf_flame_cli_ok");
    let paths = write_profiles(&dir);
    let path_refs: Vec<&str> = paths.iter().map(String::as_str).collect();

    let mut args = path_refs.clone();
    args.extend([
        "--assert-contains",
        "local_train",
        "--assert-contains",
        "aggregate",
    ]);
    let out = flame(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Role-prefixed merged stacks in folded format on stdout.
    assert!(
        stdout.contains("server;serve;round;aggregate 40"),
        "{stdout}"
    );
    assert!(stdout.contains("client:0;round;local_train 80"), "{stdout}");
    assert!(stdout.contains("client:1;round;local_train 75"), "{stdout}");
    assert!(
        stdout.contains("# alloc server;aggregate 3 4096"),
        "{stdout}"
    );
    // The self-time table goes to stderr so stdout stays flamegraph.pl-clean.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("local_train"), "{stderr}");

    // A frame nobody sampled fails the assertion with a non-zero exit.
    let mut args = path_refs.clone();
    args.extend(["--assert-contains", "no_such_frame"]);
    let out = flame(&args);
    assert!(!out.status.success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_mode_emits_parseable_merge() {
    let dir = std::env::temp_dir().join("apf_flame_cli_json");
    let paths = write_profiles(&dir);
    let mut args: Vec<&str> = paths.iter().map(String::as_str).collect();
    args.push("--json");
    let out = flame(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("run").and_then(json::Value::as_str),
        Some("00000000deadbeef")
    );
    assert_eq!(doc.get("files").and_then(json::Value::as_u64), Some(3));
    assert_eq!(
        doc.get("total_samples").and_then(json::Value::as_u64),
        Some(260)
    );
    let top = doc
        .get("self_time")
        .and_then(json::Value::as_arr)
        .and_then(|a| a.first())
        .expect("self_time rows");
    assert_eq!(
        top.get("frame").and_then(json::Value::as_str),
        Some("local_train")
    );
    assert_eq!(top.get("samples").and_then(json::Value::as_u64), Some(155));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_run_ids_are_refused() {
    let dir = std::env::temp_dir().join("apf_flame_cli_mixed");
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.folded");
    let b = dir.join("b.folded");
    std::fs::write(&a, SERVER).unwrap();
    std::fs::write(&b, SERVER.replace("deadbeef", "0badf00d")).unwrap();
    let out = flame(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("run id mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
